//! The data directory: snapshots + one WAL, opened as a [`Store`].
//!
//! Layout of `--data-dir`:
//!
//! ```text
//! data/
//!   snapshot-00000000000000000042.gks   point-in-time snapshots
//!   snapshot-00000000000000000107.gks   (newest valid one wins)
//!   wal.log                             accepted updates since *some* snapshot
//! ```
//!
//! Invariants the store maintains:
//!
//! * every WAL record carries the index version (`seq`) it produced, so a
//!   snapshot at version `V` makes all records with `seq <= V` redundant;
//! * recovery = newest **valid** snapshot + the WAL suffix with
//!   `seq > V`, in append order (a corrupt newest snapshot falls back to
//!   the previous one — the WAL still carries the difference);
//! * [`Store::compact`] writes a snapshot first and truncates the WAL
//!   only after that snapshot is durably renamed into place, then deletes
//!   the now-shadowed older snapshot files. A crash between those steps
//!   only leaves redundant data, never a gap.

use crate::snapshot::{
    list_snapshots, load_snapshot, write_snapshot, LoadedSnapshot, SnapshotData,
};
use crate::wal::{scan_wal, FsyncMode, WalRecord, WalWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel for "no snapshot on disk yet" in the atomic seq cell.
const NO_SNAPSHOT: u64 = u64::MAX;

/// Durability configuration, as selected on the command line.
#[derive(Clone, Debug)]
pub struct Durability {
    /// The data directory (created if missing).
    pub dir: PathBuf,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncMode,
}

impl Durability {
    /// Durability in `dir` with the default batched fsync.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        Durability {
            dir: dir.into(),
            fsync: FsyncMode::default(),
        }
    }

    /// Overrides the fsync mode.
    pub fn with_fsync(mut self, fsync: FsyncMode) -> Self {
        self.fsync = fsync;
        self
    }
}

/// Everything recovery found in a data directory.
pub struct Recovered {
    /// The newest valid snapshot.
    pub snapshot: LoadedSnapshot,
    /// WAL records newer than the snapshot, in append order.
    pub wal: Vec<WalRecord>,
    /// Whether a torn or corrupt WAL tail was discarded.
    pub wal_torn: bool,
    /// Snapshot files that failed validation and were skipped.
    pub skipped_snapshots: usize,
}

/// Report of a [`Store::compact`] call.
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    /// Version of the snapshot the compaction cut.
    pub snapshot_seq: u64,
    /// Bytes of that snapshot.
    pub snapshot_bytes: u64,
    /// Older snapshot files deleted.
    pub removed_snapshots: usize,
    /// WAL records dropped by the truncation.
    pub truncated_records: u64,
}

/// An open data directory. Reads are lock-free counters; the WAL writer
/// is internally serialized (callers additionally serialize whole updates
/// through the index's ingest lock).
pub struct Store {
    dir: PathBuf,
    fsync: FsyncMode,
    wal: Mutex<WalWriter>,
    wal_records: AtomicU64,
    snapshot_seq: AtomicU64,
    /// Whether opening discarded a torn/corrupt WAL tail — remembered so
    /// [`Store::recover`] can report it (the file itself is clean by
    /// then).
    wal_was_torn: bool,
    /// The records scanned at open, handed to the first [`Store::recover`]
    /// so startup decodes the log once, not twice.
    open_records: Mutex<Option<Vec<WalRecord>>>,
    /// Exclusive advisory lock on `LOCK`, held for the store's lifetime
    /// so two processes can never truncate/append the same WAL.
    _lock: std::fs::File,
}

impl Store {
    /// Opens (creating if needed) the data directory, scanning the WAL
    /// and truncating any torn tail so the writer starts on a clean
    /// prefix. The scan results are *not* discarded — call
    /// [`Store::recover`] before applying new updates to get them.
    ///
    /// The directory is guarded by an exclusive advisory lock (`LOCK`):
    /// a second process — another `serve`, or `graphkeys recover` against
    /// a live server — fails here instead of truncating the WAL under
    /// the owner's feet.
    pub fn open(cfg: &Durability) -> std::io::Result<Store> {
        std::fs::create_dir_all(&cfg.dir)?;
        let lock = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(cfg.dir.join("LOCK"))?;
        lock.try_lock().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                format!(
                    "data dir {} is locked by another process ({e})",
                    cfg.dir.display()
                ),
            )
        })?;
        // A crash mid-snapshot can strand `snapshot-*.gks.tmp` files (the
        // rename never happened); they are invisible to recovery but
        // would leak a full graph each. Sweep them here, under the lock.
        for entry in std::fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".gks.tmp") {
                std::fs::remove_file(entry.path())?;
            }
        }
        let wal_path = cfg.dir.join("wal.log");
        let scan = scan_wal(&wal_path)?;
        let writer = WalWriter::open(&wal_path, cfg.fsync, &scan)?;
        let records = writer.records();
        let newest = list_snapshots(&cfg.dir)?
            .into_iter()
            .next_back()
            .map(|(seq, _)| seq);
        Ok(Store {
            dir: cfg.dir.clone(),
            fsync: cfg.fsync,
            wal: Mutex::new(writer),
            wal_records: AtomicU64::new(records),
            snapshot_seq: AtomicU64::new(newest.unwrap_or(NO_SNAPSHOT)),
            wal_was_torn: scan.torn,
            open_records: Mutex::new(Some(scan.records)),
            _lock: lock,
        })
    }

    /// The data directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync mode.
    pub fn fsync_mode(&self) -> FsyncMode {
        self.fsync
    }

    /// Number of records currently in the WAL.
    pub fn wal_records(&self) -> u64 {
        self.wal_records.load(Ordering::Relaxed)
    }

    /// Version of the newest snapshot on disk, if any.
    pub fn snapshot_seq(&self) -> Option<u64> {
        match self.snapshot_seq.load(Ordering::Relaxed) {
            NO_SNAPSHOT => None,
            v => Some(v),
        }
    }

    /// Loads the newest valid snapshot plus the WAL suffix past it.
    ///
    /// Returns `Ok(None)` only for a genuinely fresh directory (no
    /// snapshot files at all and an empty WAL). A directory with WAL
    /// records or corrupt snapshot files but *no* loadable snapshot is an
    /// error: treating it as fresh would silently discard persisted state.
    pub fn recover(&self) -> std::io::Result<Option<Recovered>> {
        // Startup reuses the records decoded at open (the file was
        // truncated to exactly that prefix); a later call — after appends
        // have invalidated them — re-scans.
        let records = match self.open_records.lock().expect("open records").take() {
            Some(records) if records.len() as u64 == self.wal_records() => records,
            _ => scan_wal(&self.dir.join("wal.log"))?.records,
        };
        let mut skipped = 0usize;
        let mut snapshots = list_snapshots(&self.dir)?;
        while let Some((_, path)) = snapshots.pop() {
            match load_snapshot(&path) {
                Ok(snapshot) => {
                    // The filename-derived seq seeded at open is only a
                    // hint; report the snapshot that actually validated.
                    self.snapshot_seq.store(snapshot.seq, Ordering::Relaxed);
                    let wal: Vec<WalRecord> = records
                        .iter()
                        .filter(|r| r.seq > snapshot.seq)
                        .cloned()
                        .collect();
                    return Ok(Some(Recovered {
                        snapshot,
                        wal,
                        wal_torn: self.wal_was_torn,
                        skipped_snapshots: skipped,
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // Fall back to the previous snapshot; the WAL suffix
                    // past it still carries the difference.
                    skipped += 1;
                }
                Err(e) => return Err(e),
            }
        }
        if records.is_empty() && skipped == 0 {
            return Ok(None);
        }
        let reason = if skipped > 0 {
            format!("all {skipped} snapshot file(s) failed validation")
        } else {
            "the WAL has no snapshot to replay onto".to_string()
        };
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: {reason} ({} WAL record(s) present); refusing to treat \
                 the directory as fresh — restore a snapshot or clear it",
                self.dir.display(),
                records.len()
            ),
        ))
    }

    /// Appends one accepted update batch, honoring the fsync policy.
    /// Returns the framed size in bytes written to the WAL.
    pub fn append(&self, record: &WalRecord) -> std::io::Result<u64> {
        let bytes = self.wal.lock().expect("wal writer lock").append(record)?;
        self.wal_records.fetch_add(1, Ordering::Relaxed);
        Ok(bytes)
    }

    /// Cuts a snapshot of `snap` without touching the WAL. The WAL is
    /// fsynced first so snapshot + log never regress behind an
    /// acknowledged update. Returns the snapshot size in bytes.
    pub fn snapshot(&self, snap: &SnapshotData<'_>) -> std::io::Result<u64> {
        self.wal.lock().expect("wal writer lock").sync()?;
        let bytes = write_snapshot(&self.dir, snap)?;
        self.snapshot_seq.store(snap.seq, Ordering::Relaxed);
        Ok(bytes)
    }

    /// Cuts a snapshot, truncates the WAL (all records are `<= snap.seq`
    /// under the caller's ingest lock), and deletes older snapshot files.
    pub fn compact(&self, snap: &SnapshotData<'_>) -> std::io::Result<CompactReport> {
        let snapshot_bytes = self.snapshot(snap)?;
        // The WAL truncation below makes the new snapshot the *only*
        // copy of its records — unlike a plain SNAPSHOT, the rename must
        // be durably in the directory before they go. (write_snapshot's
        // own directory sync is best-effort; here a failure must abort.)
        sync_dir(&self.dir)?;
        let truncated_records = {
            let mut wal = self.wal.lock().expect("wal writer lock");
            let n = wal.records();
            wal.truncate_all()?;
            n
        };
        self.wal_records.store(0, Ordering::Relaxed);
        let mut removed = 0usize;
        for (seq, path) in list_snapshots(&self.dir)? {
            if seq < snap.seq {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(CompactReport {
            snapshot_seq: snap.seq,
            snapshot_bytes,
            removed_snapshots: removed,
            truncated_records,
        })
    }

    /// Flushes any batched WAL tail to stable storage.
    pub fn sync(&self) -> std::io::Result<()> {
        self.wal.lock().expect("wal writer lock").sync()
    }
}

/// Fsyncs a directory handle. Platforms that cannot open a directory for
/// syncing (e.g. Windows) are skipped; an actual sync failure propagates.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match std::fs::File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalOp;
    use gk_core::ChaseStep;
    use gk_graph::{parse_graph, parse_triple_specs, EntityId, Graph};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gk-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fixture() -> (Graph, Vec<ChaseStep>) {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a2:album name_of "X"
            "#,
        )
        .unwrap();
        (
            g,
            vec![ChaseStep {
                pair: (EntityId(0), EntityId(1)),
                key: 0,
            }],
        )
    }

    const DSL: &str = "key \"Q\" album(x) { x -name_of-> n*; }\n";

    fn rec(seq: u64, text: &str) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Insert(parse_triple_specs(text).unwrap()),
        }
    }

    #[test]
    fn fresh_dir_recovers_to_none() {
        let store = Store::open(&Durability::in_dir(tmpdir("fresh"))).unwrap();
        assert!(store.recover().unwrap().is_none());
        assert_eq!(store.wal_records(), 0);
        assert_eq!(store.snapshot_seq(), None);
    }

    #[test]
    fn snapshot_plus_wal_suffix_recovers() {
        let dir = tmpdir("suffix");
        let (g, steps) = fixture();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        store
            .snapshot(&SnapshotData {
                seq: 0,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            })
            .unwrap();
        store.append(&rec(1, "a3:album name_of \"Y\"")).unwrap();
        store.append(&rec(2, "a4:album name_of \"Z\"")).unwrap();
        drop(store);

        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        assert_eq!(store.wal_records(), 2);
        assert_eq!(store.snapshot_seq(), Some(0));
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.snapshot.seq, 0);
        assert_eq!(rec.wal.len(), 2);
        match &rec.wal[0].op {
            WalOp::Insert(specs) => assert_eq!(specs[0].subject, "a3"),
            other => panic!("expected an insert record, got {other:?}"),
        }
        assert!(!rec.wal_torn);
        assert_eq!(rec.skipped_snapshots, 0);
    }

    #[test]
    fn newer_snapshot_shadows_wal_prefix() {
        let dir = tmpdir("shadow");
        let (g, steps) = fixture();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        store
            .snapshot(&SnapshotData {
                seq: 0,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            })
            .unwrap();
        store.append(&rec(1, "a3:album name_of \"Y\"")).unwrap();
        store.append(&rec(2, "a4:album name_of \"Z\"")).unwrap();
        // Snapshot at version 1: record 1 becomes redundant.
        store
            .snapshot(&SnapshotData {
                seq: 1,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            })
            .unwrap();
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.snapshot.seq, 1);
        assert_eq!(rec.wal.len(), 1, "only the suffix past the snapshot");
        assert_eq!(rec.wal[0].seq, 2);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back() {
        let dir = tmpdir("fallback");
        let (g, steps) = fixture();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        for seq in [0u64, 5] {
            store
                .snapshot(&SnapshotData {
                    seq,
                    key_epoch: 0,
                    keys_dsl: DSL,
                    graph: &g,
                    steps: &steps,
                })
                .unwrap();
        }
        store.append(&rec(6, "a3:album name_of \"Y\"")).unwrap();
        drop(store);
        // Corrupt the newest snapshot.
        let newest = dir.join(crate::snapshot::snapshot_file_name(5));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xAA;
        std::fs::write(&newest, &bytes).unwrap();

        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.snapshot.seq, 0, "fell back to the older snapshot");
        assert_eq!(rec.skipped_snapshots, 1);
        assert_eq!(rec.wal.len(), 1, "wal suffix past seq 0");
    }

    #[test]
    fn wal_without_snapshot_is_an_error() {
        let dir = tmpdir("orphan-wal");
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        store.append(&rec(1, "a3:album name_of \"Y\"")).unwrap();
        assert!(store.recover().is_err());
    }

    #[test]
    fn all_snapshots_corrupt_is_an_error_not_a_fresh_dir() {
        // Compacted dir (one snapshot, empty WAL) whose lone snapshot
        // rots: recovery must refuse, not silently re-bootstrap and
        // discard every update since the original bootstrap.
        let dir = tmpdir("all-corrupt");
        let (g, steps) = fixture();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        store
            .snapshot(&SnapshotData {
                seq: 3,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            })
            .unwrap();
        drop(store);
        let path = dir.join(crate::snapshot::snapshot_file_name(3));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xAA;
        std::fs::write(&path, &bytes).unwrap();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        let err = match store.recover() {
            Err(e) => e,
            Ok(_) => panic!("corrupt-only directory must not recover"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("failed validation"), "{err}");
    }

    #[test]
    fn second_open_of_a_live_dir_is_refused() {
        let dir = tmpdir("locked");
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        let err = match Store::open(&Durability::in_dir(&dir)) {
            Err(e) => e,
            Ok(_) => panic!("second open must be refused while the first is live"),
        };
        assert!(err.to_string().contains("locked"), "{err}");
        // Releasing the first store releases the lock.
        drop(store);
        assert!(Store::open(&Durability::in_dir(&dir)).is_ok());
    }

    #[test]
    fn torn_tail_is_reported_through_reopen() {
        let dir = tmpdir("torn-report");
        let (g, steps) = fixture();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        store
            .snapshot(&SnapshotData {
                seq: 0,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            })
            .unwrap();
        store.append(&rec(1, "a3:album name_of \"Y\"")).unwrap();
        store.append(&rec(2, "a4:album name_of \"Z\"")).unwrap();
        drop(store);
        // Cut the last record in half: reopening truncates the file, but
        // recover() must still report that a tail was discarded.
        let wal = dir.join("wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        let rec = store.recover().unwrap().unwrap();
        assert!(rec.wal_torn, "the discarded tail must be surfaced");
        assert_eq!(rec.wal.len(), 1);
    }

    #[test]
    fn recover_corrects_the_filename_seeded_snapshot_seq() {
        let dir = tmpdir("seq-correct");
        let (g, steps) = fixture();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        for seq in [2u64, 9] {
            store
                .snapshot(&SnapshotData {
                    seq,
                    key_epoch: 0,
                    keys_dsl: DSL,
                    graph: &g,
                    steps: &steps,
                })
                .unwrap();
        }
        drop(store);
        // Corrupt the newest: STATS must not keep claiming coverage
        // through version 9 when only 2 is loadable.
        let newest = dir.join(crate::snapshot::snapshot_file_name(9));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x11;
        std::fs::write(&newest, &bytes).unwrap();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        assert_eq!(
            store.snapshot_seq(),
            Some(9),
            "filename hint before recovery"
        );
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.snapshot.seq, 2);
        assert_eq!(
            store.snapshot_seq(),
            Some(2),
            "validated seq after recovery"
        );
    }

    #[test]
    fn compact_truncates_and_prunes() {
        let dir = tmpdir("compact");
        let (g, steps) = fixture();
        let store = Store::open(&Durability::in_dir(&dir)).unwrap();
        store
            .snapshot(&SnapshotData {
                seq: 0,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            })
            .unwrap();
        store.append(&rec(1, "a3:album name_of \"Y\"")).unwrap();
        store.append(&rec(2, "a4:album name_of \"Z\"")).unwrap();
        let report = store
            .compact(&SnapshotData {
                seq: 2,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            })
            .unwrap();
        assert_eq!(report.snapshot_seq, 2);
        assert_eq!(report.truncated_records, 2);
        assert_eq!(report.removed_snapshots, 1);
        assert_eq!(store.wal_records(), 0);
        assert_eq!(store.snapshot_seq(), Some(2));
        // Only the compaction snapshot remains; recovery uses it alone.
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.snapshot.seq, 2);
        assert!(rec.wal.is_empty());
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
    }
}
