//! The hand-rolled binary codec shared by snapshots and the WAL.
//!
//! The build environment has no registry access, so — like the dependency
//! shims under `vendor/` — the on-disk format is written by hand rather
//! than through a serialization framework. The format is deliberately
//! boring:
//!
//! * all integers are **fixed-width little-endian** (`u8`/`u32`/`u64`);
//! * strings are length-prefixed UTF-8 (`u32` byte count + bytes);
//! * every independently readable unit (a snapshot section, a WAL record)
//!   is a length-prefixed, CRC-checked **frame**: `u32` payload length,
//!   `u32` CRC-32 of the payload, payload bytes;
//! * files open with a magic string plus a **version byte**, so a future
//!   format revision can be detected instead of misread.
//!
//! Decoding never panics on foreign bytes: every read is bounds-checked
//! and returns [`CodecError`], which recovery treats as "stop here" (WAL
//! torn tail) or "try the previous file" (snapshot).

use gk_core::ChaseStep;
use gk_graph::{EntityId, Graph, GraphBuilder, Obj, ObjSpec, PredId, TripleSpec, TypeId, ValueId};

/// A malformed or truncated byte sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

/// The byte-at-a-time CRC-32 lookup table, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 checksum of `bytes` (IEEE, as used by gzip/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Appends primitives to a byte buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Reads primitives off a byte slice, bounds-checked.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return err(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => err("invalid UTF-8 in string"),
        }
    }
}

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

/// Object tag bytes in the triple and spec encodings.
const OBJ_ENTITY: u8 = 0;
const OBJ_VALUE: u8 = 1;

/// Encodes a frozen graph: the three interner tables in id order, the
/// entity table (type + optional external name), and the triple list.
/// Decoding with [`decode_graph`] reproduces the graph **id-for-id** —
/// entity, value, predicate and type ids are all preserved, which is what
/// keeps a persisted `EqRel` meaningful after restart.
pub fn encode_graph(g: &Graph, out: &mut Enc) {
    out.u32(g.num_types() as u32);
    for t in 0..g.num_types() as u32 {
        out.str(g.type_str(TypeId(t)));
    }
    out.u32(g.num_preds() as u32);
    for p in 0..g.num_preds() as u32 {
        out.str(g.pred_str(PredId(p)));
    }
    out.u32(g.num_values() as u32);
    for v in 0..g.num_values() as u32 {
        out.str(g.value_str(ValueId(v)));
    }
    out.u32(g.num_entities() as u32);
    for e in g.entities() {
        out.u32(g.entity_type(e).0);
        // `entity_label` answers `e<id>` for anonymous entities; only a
        // registered name resolves back to the entity.
        let label = g.entity_label(e);
        if g.entity_named(&label) == Some(e) {
            out.u8(1);
            out.str(&label);
        } else {
            out.u8(0);
        }
    }
    out.u64(g.num_triples() as u64);
    for t in g.triples() {
        out.u32(t.s.0);
        out.u32(t.p.0);
        match t.o {
            Obj::Entity(o) => {
                out.u8(OBJ_ENTITY);
                out.u32(o.0);
            }
            Obj::Value(v) => {
                out.u8(OBJ_VALUE);
                out.u32(v.0);
            }
        }
    }
}

/// Decodes a graph encoded by [`encode_graph`], rebuilding every interner
/// in id order so all ids round-trip.
pub fn decode_graph(d: &mut Dec<'_>) -> Result<Graph, CodecError> {
    let mut b = GraphBuilder::new();
    let ntypes = d.u32()?;
    for want in 0..ntypes {
        let got = b.intern_type(&d.str()?);
        if got.0 != want {
            return err("duplicate type string breaks id order");
        }
    }
    let npreds = d.u32()?;
    for want in 0..npreds {
        let got = b.intern_pred(&d.str()?);
        if got.0 != want {
            return err("duplicate predicate string breaks id order");
        }
    }
    let nvalues = d.u32()?;
    for want in 0..nvalues {
        let got = b.intern_value(&d.str()?);
        if got.0 != want {
            return err("duplicate value string breaks id order");
        }
    }
    let nentities = d.u32()?;
    for _ in 0..nentities {
        let ty = d.u32()?;
        if ty >= ntypes {
            return err(format!("entity type id {ty} out of range"));
        }
        let e = b.fresh_entity(TypeId(ty));
        if d.u8()? == 1 {
            b.set_entity_name(e, &d.str()?);
        }
    }
    let ntriples = d.u64()?;
    for _ in 0..ntriples {
        let s = d.u32()?;
        let p = d.u32()?;
        if s >= nentities || p >= npreds {
            return err("triple subject/predicate id out of range");
        }
        let tag = d.u8()?;
        let o = d.u32()?;
        match tag {
            OBJ_ENTITY if o < nentities => b.link_ids(EntityId(s), PredId(p), EntityId(o)),
            OBJ_VALUE if o < nvalues => b.attr_ids(EntityId(s), PredId(p), ValueId(o)),
            OBJ_ENTITY | OBJ_VALUE => return err("triple object id out of range"),
            other => return err(format!("unknown object tag {other}")),
        }
    }
    Ok(b.freeze())
}

// ---------------------------------------------------------------------------
// Chase steps (the step → key attribution)
// ---------------------------------------------------------------------------

/// Encodes the accumulated chase steps: each identified pair with the
/// index of the certifying compiled key.
pub fn encode_steps(steps: &[ChaseStep], out: &mut Enc) {
    out.u64(steps.len() as u64);
    for s in steps {
        out.u32(s.pair.0 .0);
        out.u32(s.pair.1 .0);
        out.u32(s.key as u32);
    }
}

/// Decodes a step list encoded by [`encode_steps`].
pub fn decode_steps(d: &mut Dec<'_>) -> Result<Vec<ChaseStep>, CodecError> {
    let n = d.u64()? as usize;
    let mut steps = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let a = d.u32()?;
        let b = d.u32()?;
        let key = d.u32()? as usize;
        steps.push(ChaseStep {
            pair: (EntityId(a), EntityId(b)),
            key,
        });
    }
    Ok(steps)
}

// ---------------------------------------------------------------------------
// Triple specs (the WAL payload unit)
// ---------------------------------------------------------------------------

/// Encodes one streamed triple exactly as the server accepted it.
pub fn encode_spec(s: &TripleSpec, out: &mut Enc) {
    out.str(&s.subject);
    out.str(&s.subject_type);
    out.str(&s.pred);
    match &s.object {
        ObjSpec::Entity { name, ty } => {
            out.u8(OBJ_ENTITY);
            out.str(name);
            out.str(ty);
        }
        ObjSpec::Value(v) => {
            out.u8(OBJ_VALUE);
            out.str(v);
        }
    }
}

/// Decodes a spec encoded by [`encode_spec`].
pub fn decode_spec(d: &mut Dec<'_>) -> Result<TripleSpec, CodecError> {
    let subject = d.str()?;
    let subject_type = d.str()?;
    let pred = d.str()?;
    let object = match d.u8()? {
        OBJ_ENTITY => ObjSpec::Entity {
            name: d.str()?,
            ty: d.str()?,
        },
        OBJ_VALUE => ObjSpec::Value(d.str()?),
        other => return err(format!("unknown object tag {other}")),
    };
    Ok(TripleSpec {
        subject,
        subject_type,
        pred,
        object,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_graph::parse_graph;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.str("héllo\nworld");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.str().unwrap(), "héllo\nworld");
        assert!(d.is_done());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut e = Enc::new();
        e.str("abcdef");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.str().is_err(), "cut at {cut} must error");
        }
        // A length prefix pointing past the end must not over-read.
        let mut d = Dec::new(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(d.str().is_err());
    }

    fn fixture() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            alb2:album  name_of       "Anthology 2"
            "#,
        )
        .unwrap()
    }

    #[test]
    fn graph_roundtrips_id_for_id() {
        let g = fixture();
        let mut e = Enc::new();
        encode_graph(&g, &mut e);
        let bytes = e.into_bytes();
        let g2 = decode_graph(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(g2.num_entities(), g.num_entities());
        assert_eq!(g2.num_triples(), g.num_triples());
        assert_eq!(g2.num_values(), g.num_values());
        assert_eq!(g2.num_preds(), g.num_preds());
        assert_eq!(g2.num_types(), g.num_types());
        // Ids are preserved, not just counts.
        for e in g.entities() {
            assert_eq!(g2.entity_type(e), g.entity_type(e));
            assert_eq!(g2.entity_label(e), g.entity_label(e));
        }
        assert_eq!(
            g2.triples().collect::<Vec<_>>(),
            g.triples().collect::<Vec<_>>()
        );
        assert_eq!(g2.entity_named("alb2"), g.entity_named("alb2"));
        assert_eq!(g2.value("Anthology 2"), g.value("Anthology 2"));
    }

    #[test]
    fn graph_with_anonymous_entities_roundtrips() {
        let mut b = GraphBuilder::new();
        let t = b.intern_type("thing");
        let named = b.entity("n1", "thing");
        let anon = b.fresh_entity(t);
        b.link(named, "sees", anon);
        let g = b.freeze();
        let mut e = Enc::new();
        encode_graph(&g, &mut e);
        let bytes = e.into_bytes();
        let g2 = decode_graph(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(g2.entity_named("n1"), Some(named));
        assert_eq!(g2.entity_label(anon), g.entity_label(anon));
        assert_eq!(g2.num_triples(), 1);
    }

    #[test]
    fn graph_decode_rejects_out_of_range_ids() {
        let g = fixture();
        let mut e = Enc::new();
        encode_graph(&g, &mut e);
        let bytes = e.into_bytes();
        // Every truncation errors instead of panicking.
        for cut in [1usize, 5, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_graph(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn steps_roundtrip() {
        let steps = vec![
            ChaseStep {
                pair: (EntityId(0), EntityId(3)),
                key: 1,
            },
            ChaseStep {
                pair: (EntityId(2), EntityId(7)),
                key: 0,
            },
        ];
        let mut e = Enc::new();
        encode_steps(&steps, &mut e);
        let bytes = e.into_bytes();
        assert_eq!(decode_steps(&mut Dec::new(&bytes)).unwrap(), steps);
    }

    #[test]
    fn specs_roundtrip() {
        let specs = gk_graph::parse_triple_specs(
            r#"
            alb3:album name_of "Antho\"logy; 2"
            alb3:album recorded_by art9:artist
            "#,
        )
        .unwrap();
        for s in &specs {
            let mut e = Enc::new();
            encode_spec(s, &mut e);
            let bytes = e.into_bytes();
            assert_eq!(&decode_spec(&mut Dec::new(&bytes)).unwrap(), s);
        }
    }
}
