//! The append-only write-ahead log.
//!
//! One file per data directory (`wal.log`): a header (`GKWAL` magic + a
//! version byte) followed by frames, one per **accepted** update:
//!
//! ```text
//! [u32 payload_len] [u32 crc32(payload)] [payload]
//! payload = u8 kind · u64 seq · body
//!   kind 1 = INSERT  body = u32 n · n triple specs
//!   kind 2 = DELETE  body = u32 n · n triple specs
//!   kind 3 = ADDKEY  body = str (key DSL text)
//!   kind 4 = DROPKEY body = str (key name)
//! ```
//!
//! Kinds 3/4 are the runtime key-management records: Σ changes made
//! through `ADDKEY`/`DROPKEY` are logged exactly like triple batches, so
//! a crash after an acknowledged key change replays it on recovery.
//!
//! The seq is the index version the batch produced, so replay can skip
//! records a snapshot already covers. Appends go to the OS immediately;
//! *durability* is governed by the [`FsyncMode`]: `Always` fsyncs every
//! record, `Batch` fsyncs every [`BATCH_SYNC_EVERY`] records (and whenever
//! a snapshot is cut), `Never` leaves flushing to the OS.
//!
//! **Torn-tail tolerance.** A crash mid-append leaves a final frame whose
//! length prefix, payload, or CRC is incomplete or wrong. [`scan_wal`]
//! reads frames until the first one that fails any check and reports the
//! byte offset where the valid prefix ends; [`WalWriter::open`] truncates
//! the file to that offset before appending, so a recovered log never
//! carries garbage in the middle.

use crate::codec::{crc32, decode_spec, encode_spec, CodecError, Dec, Enc};
use gk_graph::TripleSpec;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic of a WAL, followed by the format version byte.
pub const WAL_MAGIC: &[u8; 5] = b"GKWAL";
/// Current WAL format version.
pub const WAL_VERSION: u8 = 1;
/// Header length in bytes (magic + version).
pub const WAL_HEADER_LEN: u64 = 6;
/// Upper bound on a single record payload; longer length prefixes are
/// treated as corruption.
const MAX_RECORD_LEN: u32 = 1 << 30;
/// `FsyncMode::Batch` syncs after this many unsynced appends.
pub const BATCH_SYNC_EVERY: u32 = 32;

/// When appends reach the platters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// Fsync after every record: no accepted update is ever lost.
    Always,
    /// Fsync every [`BATCH_SYNC_EVERY`] records and at every snapshot:
    /// bounded loss, amortized cost. The default.
    #[default]
    Batch,
    /// Never fsync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncMode {
    /// Parses the CLI spelling (`always` | `batch` | `never`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "always" => Ok(FsyncMode::Always),
            "batch" => Ok(FsyncMode::Batch),
            "never" => Ok(FsyncMode::Never),
            other => Err(format!(
                "unknown fsync mode {other:?} (expected always|batch|never)"
            )),
        }
    }

    /// The CLI / `STATS` spelling.
    pub fn name(self) -> &'static str {
        match self {
            FsyncMode::Always => "always",
            FsyncMode::Batch => "batch",
            FsyncMode::Never => "never",
        }
    }
}

impl std::fmt::Display for FsyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an accepted update did — the typed payload of a WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// An accepted insert-only triple batch.
    Insert(Vec<TripleSpec>),
    /// An accepted deletion batch.
    Delete(Vec<TripleSpec>),
    /// A key installed at runtime, as DSL text (`gk_core::write_keys`
    /// form, so replay re-parses it losslessly).
    AddKey(String),
    /// A key removed at runtime, by name.
    DropKey(String),
}

impl WalOp {
    /// True for the runtime key-management records (`ADDKEY`/`DROPKEY`).
    pub fn is_key_change(&self) -> bool {
        matches!(self, WalOp::AddKey(_) | WalOp::DropKey(_))
    }

    /// The record-kind byte written to disk.
    fn kind_byte(&self) -> u8 {
        match self {
            WalOp::Insert(_) => 1,
            WalOp::Delete(_) => 2,
            WalOp::AddKey(_) => 3,
            WalOp::DropKey(_) => 4,
        }
    }
}

/// One accepted update, as logged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The index version this update produced.
    pub seq: u64,
    /// What the update did.
    pub op: WalOp,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(self.op.kind_byte());
        e.u64(self.seq);
        match &self.op {
            WalOp::Insert(specs) | WalOp::Delete(specs) => {
                e.u32(specs.len() as u32);
                for s in specs {
                    encode_spec(s, &mut e);
                }
            }
            WalOp::AddKey(text) | WalOp::DropKey(text) => e.str(text),
        }
        e.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut d = Dec::new(payload);
        let kind = d.u8()?;
        let seq = d.u64()?;
        let op = match kind {
            1 | 2 => {
                let n = d.u32()? as usize;
                let mut specs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    specs.push(decode_spec(&mut d)?);
                }
                if kind == 1 {
                    WalOp::Insert(specs)
                } else {
                    WalOp::Delete(specs)
                }
            }
            3 => WalOp::AddKey(d.str()?),
            4 => WalOp::DropKey(d.str()?),
            other => return Err(CodecError(format!("unknown WAL record kind {other}"))),
        };
        if !d.is_done() {
            return Err(CodecError("trailing bytes inside WAL record".into()));
        }
        Ok(WalRecord { seq, op })
    }
}

/// The outcome of reading a WAL file front to back.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every record of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset where the valid prefix ends (the safe truncation
    /// point). Equal to the file length when the whole log is clean.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` were discarded (torn tail or
    /// corruption).
    pub torn: bool,
}

/// Reads `path` front to back, stopping at the first torn or corrupt
/// frame. A missing file scans as empty. Returns an error only for I/O
/// failures or a foreign header — never for a damaged tail.
pub fn scan_wal(path: &Path) -> std::io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    };
    if bytes.len() < WAL_HEADER_LEN as usize {
        // A header torn mid-write: nothing recoverable, rewrite from zero.
        return Ok(WalScan {
            torn: !bytes.is_empty(),
            ..WalScan::default()
        });
    }
    if &bytes[..5] != WAL_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{} is not a graphkeys WAL (bad magic)", path.display()),
        ));
    }
    if bytes[5] != WAL_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: unsupported WAL version {} (this build reads {})",
                path.display(),
                bytes[5],
                WAL_VERSION
            ),
        ));
    }
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN as usize;
    while let Some(frame) = read_frame(&bytes, at) {
        let Ok(record) = WalRecord::decode(frame.payload) else {
            break;
        };
        records.push(record);
        at = frame.end;
    }
    Ok(WalScan {
        records,
        valid_len: at as u64,
        torn: at < bytes.len(),
    })
}

struct Frame<'a> {
    payload: &'a [u8],
    end: usize,
}

/// Reads the frame starting at `at`, or `None` when truncated / corrupt.
fn read_frame(bytes: &[u8], at: usize) -> Option<Frame<'_>> {
    let header = bytes.get(at..at + 8)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let want_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return None;
    }
    let payload = bytes.get(at + 8..at + 8 + len as usize)?;
    if crc32(payload) != want_crc {
        return None;
    }
    Some(Frame {
        payload,
        end: at + 8 + len as usize,
    })
}

/// The appending half of the log. One writer per data directory, guarded
/// by the store's ingest serialization.
pub struct WalWriter {
    path: PathBuf,
    file: File,
    fsync: FsyncMode,
    unsynced: u32,
    records: u64,
}

impl WalWriter {
    /// Opens (or creates) the log at `path` for appending, truncating a
    /// torn tail first. `valid` is the scan of the current file contents.
    pub fn open(path: &Path, fsync: FsyncMode, scan: &WalScan) -> std::io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let fresh = file.metadata()?.len() < WAL_HEADER_LEN;
        if fresh {
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&[WAL_VERSION])?;
        } else if scan.torn {
            file.set_len(scan.valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        if fresh || scan.torn {
            file.sync_all()?;
        }
        Ok(WalWriter {
            path: path.to_path_buf(),
            file,
            fsync,
            unsynced: 0,
            records: scan.records.len() as u64,
        })
    }

    /// Appends one record frame and applies the fsync policy. The record
    /// is on disk (or at least with the OS) before this returns. Returns
    /// the framed size in bytes (payload plus length/CRC header).
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<u64> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let start = self.file.stream_position()?;
        if let Err(e) = self.file.write_all(&frame) {
            // Roll back to the last whole frame: a partial frame left
            // mid-file (e.g. ENOSPC) would make every *later* acknowledged
            // append unreadable — the scan stops at the first bad frame.
            let _ = self.file.set_len(start);
            let _ = self.file.seek(SeekFrom::Start(start));
            return Err(e);
        }
        self.records += 1;
        self.unsynced += 1;
        match self.fsync {
            FsyncMode::Always => self.sync()?,
            FsyncMode::Batch if self.unsynced >= BATCH_SYNC_EVERY => self.sync()?,
            FsyncMode::Batch | FsyncMode::Never => {}
        }
        Ok(frame.len() as u64)
    }

    /// Flushes everything appended so far to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Drops every record (after a compacting snapshot made them
    /// redundant): the file shrinks back to its header.
    pub fn truncate_all(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file.sync_all()?;
        self.records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Number of records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path (exposed for crash tests that cut the file).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-reads the file length (used by tests to map records to byte
    /// offsets).
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best effort: batch mode flushes its pending tail on shutdown.
        let _ = self.sync();
        let _ = self.file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_graph::parse_triple_specs;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gk-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("wal.log")
    }

    fn rec(seq: u64, op: fn(Vec<TripleSpec>) -> WalOp, text: &str) -> WalRecord {
        WalRecord {
            seq,
            op: op(parse_triple_specs(text).unwrap()),
        }
    }

    #[test]
    fn append_then_scan_roundtrips() {
        let path = tmp("roundtrip");
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open(&path, FsyncMode::Always, &scan).unwrap();
        let r1 = rec(1, WalOp::Insert, "a:t p \"v\"\na:t q b:t");
        let r2 = rec(2, WalOp::Delete, "a:t p \"v\"");
        w.append(&r1).unwrap();
        w.append(&r2).unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records, vec![r1, r2]);
    }

    #[test]
    fn key_management_records_roundtrip() {
        let path = tmp("key-records");
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open(&path, FsyncMode::Always, &scan).unwrap();
        let add = WalRecord {
            seq: 1,
            op: WalOp::AddKey("key \"Q9\" album(x) { x -name_of-> n*; }\n".into()),
        };
        let drop_rec = WalRecord {
            seq: 2,
            op: WalOp::DropKey("Q9".into()),
        };
        assert!(add.op.is_key_change());
        assert!(drop_rec.op.is_key_change());
        assert!(!rec(3, WalOp::Insert, "a:t p \"v\"").op.is_key_change());
        w.append(&add).unwrap();
        w.append(&drop_rec).unwrap();
        w.append(&rec(3, WalOp::Insert, "a:t p \"v\"")).unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0], add);
        assert_eq!(scan.records[1], drop_rec);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let path = tmp("torn");
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open(&path, FsyncMode::Never, &scan).unwrap();
        let mut ends = vec![WAL_HEADER_LEN];
        for i in 0..4u64 {
            w.append(&rec(i + 1, WalOp::Insert, &format!("e{i}:t p \"v{i}\"")))
                .unwrap();
            ends.push(w.len().unwrap());
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() as u64 {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let scan = scan_wal(&path).unwrap();
            if cut < WAL_HEADER_LEN {
                // Header itself torn: nothing recoverable.
                assert_eq!(scan.records.len(), 0, "cut at byte {cut}");
                assert_eq!(scan.valid_len, 0, "cut at byte {cut}");
                continue;
            }
            // Exactly the records whose frames are fully inside the cut.
            let want = ends[1..].iter().filter(|&&e| e <= cut).count();
            assert_eq!(scan.records.len(), want, "cut at byte {cut}");
            assert_eq!(scan.valid_len, ends[want], "cut at byte {cut}");
        }
    }

    #[test]
    fn corrupt_byte_invalidates_record_and_suffix() {
        let path = tmp("corrupt");
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open(&path, FsyncMode::Never, &scan).unwrap();
        let mut ends = vec![WAL_HEADER_LEN];
        for i in 0..3u64 {
            w.append(&rec(i + 1, WalOp::Insert, &format!("e{i}:t p \"v{i}\"")))
                .unwrap();
            ends.push(w.len().unwrap());
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record: CRC rejects it and
        // everything after it (scan cannot resynchronize).
        let mid = (ends[1] + 9) as usize;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, ends[1]);
        assert!(scan.torn);
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let path = tmp("reopen");
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open(&path, FsyncMode::Batch, &scan).unwrap();
        w.append(&rec(1, WalOp::Insert, "a:t p \"v\"")).unwrap();
        let clean = w.len().unwrap();
        w.append(&rec(2, WalOp::Insert, "b:t p \"v\"")).unwrap();
        drop(w);
        // Cut the second record in half, then reopen and append a third.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..(clean as usize + 5)]).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.torn);
        let mut w = WalWriter::open(&path, FsyncMode::Batch, &scan).unwrap();
        assert_eq!(w.records(), 1);
        w.append(&rec(2, WalOp::Insert, "c:t p \"v\"")).unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert!(!scan.torn, "tail was truncated before the new append");
        assert_eq!(scan.records.len(), 2);
        match &scan.records[1].op {
            WalOp::Insert(specs) => assert_eq!(specs[0].subject, "c"),
            other => panic!("expected an insert record, got {other:?}"),
        }
    }

    #[test]
    fn truncate_all_empties_the_log() {
        let path = tmp("truncate");
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open(&path, FsyncMode::Always, &scan).unwrap();
        w.append(&rec(1, WalOp::Insert, "a:t p \"v\"")).unwrap();
        w.truncate_all().unwrap();
        assert!(w.is_empty());
        w.append(&rec(2, WalOp::Insert, "b:t p \"v\"")).unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 2);
    }

    #[test]
    fn foreign_file_is_an_error_not_a_scan() {
        let path = tmp("foreign");
        std::fs::write(&path, b"not a wal at all").unwrap();
        assert!(scan_wal(&path).is_err());
    }

    #[test]
    fn fsync_mode_parses() {
        assert_eq!(FsyncMode::parse("always").unwrap(), FsyncMode::Always);
        assert_eq!(FsyncMode::parse("batch").unwrap(), FsyncMode::Batch);
        assert_eq!(FsyncMode::parse("never").unwrap(), FsyncMode::Never);
        assert!(FsyncMode::parse("sometimes").is_err());
        assert_eq!(FsyncMode::default().name(), "batch");
    }
}
