//! Point-in-time snapshot files.
//!
//! A snapshot freezes one index version `V` into a single file
//! `snapshot-<V>.gks`:
//!
//! ```text
//! "GKSNAP" magic · u8 version · u64 seq · u64 key_epoch · u32 crc   (v2)
//! section 1: key set   — the Σ DSL text (UTF-8)
//! section 2: graph     — interner tables, entity table, triples
//! section 3: steps     — the chase's step → key attribution
//! ```
//!
//! The header CRC covers `seq` and `key_epoch` (v1 left them bare — a
//! bit-flip in the version word went undetected until replay filtering
//! misbehaved).
//!
//! Version 1 files (written before runtime key management) lack the
//! `key_epoch` word and load with `key_epoch = 0`; version 2 is what this
//! build writes. The epoch counts `ADDKEY`/`DROPKEY` operations applied
//! since bootstrap, so recovery can tell a Σ that evolved at runtime from
//! one frozen at startup.
//!
//! Each section is a length-prefixed CRC-checked frame (same framing as a
//! WAL record), so a half-written or bit-rotted snapshot is *detected* and
//! skipped rather than loaded — recovery falls back to the next-newest
//! valid file. Snapshots are written to a temporary name and atomically
//! renamed into place, so a crash mid-snapshot leaves no
//! `snapshot-*.gks` that could shadow the previous good one.
//!
//! The terminal `EqRel` is not stored as a parent array: the step list is
//! its generating merge log (every non-trivial union with the key that
//! certified it), and replaying the log reproduces the closure exactly.
//! Derived structures — compiled keys, canonical representatives,
//! duplicate clusters — are likewise rebuilt from the graph and Σ at load
//! time; the file stores generators, not caches.

use crate::codec::{crc32, decode_graph, decode_steps, encode_graph, encode_steps, Dec, Enc};
use gk_core::ChaseStep;
use gk_graph::Graph;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File magic of a snapshot, followed by the format version byte.
pub const SNAPSHOT_MAGIC: &[u8; 6] = b"GKSNAP";
/// Current snapshot format version (v2 added `key_epoch`).
pub const SNAPSHOT_VERSION: u8 = 2;
/// Oldest snapshot format version this build still reads.
pub const SNAPSHOT_MIN_VERSION: u8 = 1;

/// Everything a snapshot persists, borrowed from the live index state.
pub struct SnapshotData<'a> {
    /// The index version being frozen.
    pub seq: u64,
    /// Runtime key-management operations applied since bootstrap.
    pub key_epoch: u64,
    /// Σ in its DSL text form (`gk_core::write_keys`); parsing it back
    /// and recompiling against the decoded graph reproduces the compiled
    /// key set, including key indices.
    pub keys_dsl: &'a str,
    /// The graph at version `seq`.
    pub graph: &'a Graph,
    /// Accumulated chase steps: the `EqRel` merge log with key
    /// attribution.
    pub steps: &'a [ChaseStep],
}

/// A snapshot loaded back from disk.
pub struct LoadedSnapshot {
    /// The persisted index version.
    pub seq: u64,
    /// Runtime key-management operations applied since bootstrap (0 for
    /// version-1 files).
    pub key_epoch: u64,
    /// Σ DSL text.
    pub keys_dsl: String,
    /// The decoded graph (ids preserved).
    pub graph: Graph,
    /// The chase step log.
    pub steps: Vec<ChaseStep>,
}

fn frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn read_framed<'a>(bytes: &'a [u8], at: &mut usize) -> std::io::Result<&'a [u8]> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let header = bytes
        .get(*at..*at + 8)
        .ok_or_else(|| bad("truncated section header"))?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    let payload = bytes
        .get(*at + 8..*at + 8 + len)
        .ok_or_else(|| bad("truncated section payload"))?;
    if crc32(payload) != want_crc {
        return Err(bad("section CRC mismatch"));
    }
    *at += 8 + len;
    Ok(payload)
}

/// The file name of the snapshot for version `seq`. Zero-padded so
/// lexicographic directory order equals version order.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snapshot-{seq:020}.gks")
}

/// Parses a snapshot file name back to its version.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snapshot-")?.strip_suffix(".gks")?;
    digits.parse().ok()
}

/// Serializes `snap` and writes it atomically into `dir`, fsyncing the
/// file before the rename. Returns the byte size of the snapshot.
pub fn write_snapshot(dir: &Path, snap: &SnapshotData<'_>) -> std::io::Result<u64> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.push(SNAPSHOT_VERSION);
    bytes.extend_from_slice(&snap.seq.to_le_bytes());
    bytes.extend_from_slice(&snap.key_epoch.to_le_bytes());
    let header_crc = crc32(&bytes[7..23]);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    frame(snap.keys_dsl.as_bytes(), &mut bytes);
    let mut graph = Enc::new();
    encode_graph(snap.graph, &mut graph);
    frame(&graph.into_bytes(), &mut bytes);
    let mut steps = Enc::new();
    encode_steps(snap.steps, &mut steps);
    frame(&steps.into_bytes(), &mut bytes);

    let size = bytes.len() as u64;
    let tmp = dir.join(format!("{}.tmp", snapshot_file_name(snap.seq)));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(snapshot_file_name(snap.seq)))?;
    // Persist the rename itself where the platform allows syncing a
    // directory handle; a failure here only weakens the crash window.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(size)
}

/// Loads and fully validates the snapshot at `path`.
pub fn load_snapshot(path: &Path) -> std::io::Result<LoadedSnapshot> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let bytes = std::fs::read(path)?;
    if bytes.len() < 15 || &bytes[..6] != SNAPSHOT_MAGIC {
        return Err(bad(format!(
            "{} is not a graphkeys snapshot (bad magic)",
            path.display()
        )));
    }
    let version = bytes[6];
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(bad(format!(
            "{}: unsupported snapshot version {} (this build reads {}..={})",
            path.display(),
            version,
            SNAPSHOT_MIN_VERSION,
            SNAPSHOT_VERSION
        )));
    }
    let seq = u64::from_le_bytes(bytes[7..15].try_into().unwrap());
    let mut at = 15usize;
    // v2 adds the key epoch and a CRC over the seq + epoch words between
    // the header and the first section.
    let key_epoch = if version >= 2 {
        let raw = bytes
            .get(15..27)
            .ok_or_else(|| bad("truncated snapshot header".into()))?;
        let epoch = u64::from_le_bytes(raw[..8].try_into().unwrap());
        let want_crc = u32::from_le_bytes(raw[8..].try_into().unwrap());
        if crc32(&bytes[7..23]) != want_crc {
            return Err(bad("snapshot header CRC mismatch".into()));
        }
        at = 27;
        epoch
    } else {
        0
    };
    let keys_section = read_framed(&bytes, &mut at)?;
    let keys_dsl = std::str::from_utf8(keys_section)
        .map_err(|_| bad("key section is not UTF-8".into()))?
        .to_owned();
    let graph_section = read_framed(&bytes, &mut at)?;
    let graph = decode_graph(&mut Dec::new(graph_section))
        .map_err(|e| bad(format!("graph section: {e}")))?;
    let steps_section = read_framed(&bytes, &mut at)?;
    let steps = decode_steps(&mut Dec::new(steps_section))
        .map_err(|e| bad(format!("steps section: {e}")))?;
    if at != bytes.len() {
        return Err(bad("trailing bytes after the last section".into()));
    }
    // Cross-section consistency: a CRC-valid file whose step log points
    // outside the entity table must be *skipped as invalid*, not let
    // through to panic in the union–find during recovery.
    let n = graph.num_entities() as u32;
    for s in &steps {
        if s.pair.0 .0 >= n || s.pair.1 .0 >= n {
            return Err(bad(format!(
                "steps section references entity {:?} outside the graph's {n} entities",
                s.pair
            )));
        }
    }
    Ok(LoadedSnapshot {
        seq,
        key_epoch,
        keys_dsl,
        graph,
        steps,
    })
}

/// All snapshot files in `dir`, sorted oldest → newest by version.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_graph::{parse_graph, EntityId};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gk-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fixture() -> (Graph, Vec<ChaseStep>) {
        let g = parse_graph(
            r#"
            a1:album name_of "X"
            a1:album release_year "2000"
            a2:album name_of "X"
            a2:album release_year "2000"
            "#,
        )
        .unwrap();
        let steps = vec![ChaseStep {
            pair: (EntityId(0), EntityId(1)),
            key: 0,
        }];
        (g, steps)
    }

    const DSL: &str = "key \"Q2\" album(x) { x -name_of-> n*; x -release_year-> y*; }\n";

    #[test]
    fn snapshot_roundtrips() {
        let dir = tmpdir("roundtrip");
        let (g, steps) = fixture();
        let bytes = write_snapshot(
            &dir,
            &SnapshotData {
                seq: 7,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            },
        )
        .unwrap();
        assert!(bytes > 0);
        let loaded = load_snapshot(&dir.join(snapshot_file_name(7))).unwrap();
        assert_eq!(loaded.seq, 7);
        assert_eq!(loaded.keys_dsl, DSL);
        assert_eq!(loaded.steps, steps);
        assert_eq!(loaded.graph.num_triples(), g.num_triples());
        assert_eq!(
            loaded.graph.triples().collect::<Vec<_>>(),
            g.triples().collect::<Vec<_>>()
        );
        // No .tmp file left behind.
        assert_eq!(
            list_snapshots(&dir).unwrap(),
            vec![(7, dir.join(snapshot_file_name(7)))]
        );
    }

    #[test]
    fn key_epoch_roundtrips_and_v1_files_still_load() {
        let dir = tmpdir("epoch");
        let (g, steps) = fixture();
        write_snapshot(
            &dir,
            &SnapshotData {
                seq: 3,
                key_epoch: 5,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            },
        )
        .unwrap();
        let loaded = load_snapshot(&dir.join(snapshot_file_name(3))).unwrap();
        assert_eq!(loaded.key_epoch, 5);

        // Hand-assemble a version-1 file (no key-epoch word): it must load
        // with key_epoch = 0 rather than being rejected.
        let mut v1 = Vec::new();
        v1.extend_from_slice(SNAPSHOT_MAGIC);
        v1.push(1u8);
        v1.extend_from_slice(&9u64.to_le_bytes());
        frame(DSL.as_bytes(), &mut v1);
        let mut graph = Enc::new();
        encode_graph(&g, &mut graph);
        frame(&graph.into_bytes(), &mut v1);
        let mut st = Enc::new();
        encode_steps(&steps, &mut st);
        frame(&st.into_bytes(), &mut v1);
        let path = dir.join(snapshot_file_name(9));
        std::fs::write(&path, &v1).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.seq, 9);
        assert_eq!(loaded.key_epoch, 0);
        assert_eq!(loaded.keys_dsl, DSL);

        // A future version is refused, not misread.
        let mut v9 = v1.clone();
        v9[6] = 9;
        std::fs::write(&path, &v9).unwrap();
        assert!(load_snapshot(&path).is_err());
    }

    #[test]
    fn any_corrupt_byte_is_detected() {
        let dir = tmpdir("corrupt");
        let (g, steps) = fixture();
        write_snapshot(
            &dir,
            &SnapshotData {
                seq: 1,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &steps,
            },
        )
        .unwrap();
        let path = dir.join(snapshot_file_name(1));
        let clean = std::fs::read(&path).unwrap();
        // Flip a byte in each region: header, keys, graph, steps.
        for at in [2usize, 20, clean.len() / 2, clean.len() - 2] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x55;
            std::fs::write(&path, &bytes).unwrap();
            assert!(load_snapshot(&path).is_err(), "corruption at {at} missed");
        }
        // Truncations too.
        for cut in [0usize, 10, clean.len() / 3, clean.len() - 1] {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(load_snapshot(&path).is_err(), "truncation at {cut} missed");
        }
    }

    #[test]
    fn steps_outside_the_entity_table_invalidate_the_snapshot() {
        // CRC-consistent but cross-section-inconsistent: the step log
        // references an entity the graph does not have. Loading must fail
        // (so recovery falls back) instead of panicking later in the
        // union–find.
        let dir = tmpdir("oob-steps");
        let (g, _) = fixture();
        let bogus = vec![ChaseStep {
            pair: (EntityId(0), EntityId(999)),
            key: 0,
        }];
        write_snapshot(
            &dir,
            &SnapshotData {
                seq: 1,
                key_epoch: 0,
                keys_dsl: DSL,
                graph: &g,
                steps: &bogus,
            },
        )
        .unwrap();
        let err = match load_snapshot(&dir.join(snapshot_file_name(1))) {
            Err(e) => e,
            Ok(_) => panic!("out-of-range steps must invalidate the snapshot"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("outside the graph"), "{err}");
    }

    #[test]
    fn names_sort_by_version() {
        let dir = tmpdir("names");
        let (g, steps) = fixture();
        for seq in [3u64, 11, 7] {
            write_snapshot(
                &dir,
                &SnapshotData {
                    seq,
                    key_epoch: 0,
                    keys_dsl: DSL,
                    graph: &g,
                    steps: &steps,
                },
            )
            .unwrap();
        }
        let seqs: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(seqs, vec![3, 7, 11]);
        assert_eq!(parse_snapshot_name(&snapshot_file_name(42)), Some(42));
        assert_eq!(parse_snapshot_name("snapshot-x.gks"), None);
        assert_eq!(parse_snapshot_name("wal.log"), None);
    }
}
