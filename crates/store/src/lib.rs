//! # gk-store — durable persistence for the resident resolver
//!
//! PR 1/2 made the terminal `Eq(G, Σ)` resident and parallel; this crate
//! makes it **durable**. The resident server's state — graph, key set,
//! terminal equivalence relation with its step → key attribution — is
//! persisted as point-in-time snapshot files plus an append-only
//! write-ahead log of accepted update batches, so a restart costs
//! *load + WAL replay* instead of *reload + full re-chase*, and discovered
//! keys plus their consequences become reusable on-disk artifacts.
//!
//! Three layers, each testable alone:
//!
//! | module | role |
//! |--------|------|
//! | [`codec`] | hand-rolled binary encoding (length-prefixed, CRC-32-checked frames; fixed-width LE integers) for graphs, key sets, chase steps and triple specs |
//! | [`wal`] | the append-only log: fsync policies ([`FsyncMode`]), torn-tail detection and truncation on reopen |
//! | [`store`] | the data directory: snapshot selection, WAL-suffix recovery, compaction |
//!
//! No serialization framework is involved — the build environment has no
//! registry access (the same constraint that produced the `vendor/`
//! shims), so the format is written by hand and documented in DESIGN.md.
//!
//! The crate stores **generators, not caches**: a snapshot holds the
//! graph, the Σ DSL text and the chase's merge log; compiled keys,
//! canonical representatives and duplicate clusters are rebuilt at load.
//! Applying the log through the incremental chase is the server's job
//! (`gk-server`), keeping this crate free of matching logic.

#![warn(missing_docs)]

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use snapshot::{LoadedSnapshot, SnapshotData};
pub use store::{CompactReport, Durability, Recovered, Store};
pub use wal::{scan_wal, FsyncMode, WalOp, WalRecord, WalScan, WAL_HEADER_LEN};
