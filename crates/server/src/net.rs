//! TCP framing of the line protocol.
//!
//! Connections are persistent: each request line gets one response
//! *paragraph* — the response text followed by a blank line — so clients
//! can read multi-line answers (`EXPLAIN`, `HELP`) without length
//! prefixes.
//!
//! Two front-ends speak this framing:
//!
//! * [`NetModel::Epoll`] (the default) — a nonblocking edge-triggered
//!   epoll reactor ([`crate::event_loop`]): one I/O thread owns every
//!   socket, complete request lines are executed on a small worker
//!   pool, and concurrency is bounded by `--max-conns`, not by thread
//!   count. Thousands of idle or slow connections cost buffers, not
//!   threads.
//! * [`NetModel::Threaded`] — the original blocking model: a fixed pool
//!   of worker threads pulls accepted connections from a shared queue,
//!   one thread pinned per open connection. Kept as a fallback
//!   (`--net-model threaded`) and as the differential baseline for the
//!   `concurrent_connections` benchmark; deprecated for production use.

use crate::event_loop;
use crate::http::{serve_metrics_http, MetricsHandle};
use crate::protocol::Server;
use gk_metrics::Gauge;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest accepted request line, in bytes (terminator excluded). A
/// client that exceeds it gets `ERR request too long` and is
/// disconnected; the overrun also counts into
/// `gk_conn_read_errors_total`. Bounds per-connection memory against
/// newline-free byte floods.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// Which TCP front-end serves the line protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NetModel {
    /// Nonblocking epoll reactor + worker pool (the default).
    #[default]
    Epoll,
    /// Blocking thread-per-connection pool (deprecated fallback).
    Threaded,
}

impl std::str::FromStr for NetModel {
    type Err = String;

    fn from_str(s: &str) -> Result<NetModel, String> {
        match s.to_ascii_lowercase().as_str() {
            "epoll" | "event-loop" | "eventloop" => Ok(NetModel::Epoll),
            "threaded" | "threads" | "blocking" => Ok(NetModel::Threaded),
            other => Err(format!(
                "unknown net model {other:?} (expected `epoll` or `threaded`)"
            )),
        }
    }
}

impl std::fmt::Display for NetModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NetModel::Epoll => "epoll",
            NetModel::Threaded => "threaded",
        })
    }
}

/// Configuration for [`serve_with`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads executing requests (both models).
    pub threads: usize,
    /// Which front-end accepts and frames connections.
    pub model: NetModel,
    /// Admission bound on simultaneous line-protocol connections; `0`
    /// means unlimited. Beyond it, new connections are answered
    /// `ERR busy` and closed (`gk_conns_rejected_total`). Epoll only:
    /// the threaded model's own pool size is its (much smaller) bound.
    pub max_conns: usize,
    /// Optional `host:port` for the HTTP scrape endpoint
    /// (`/metrics`, `/healthz`, `/traces`). Under [`NetModel::Epoll`]
    /// it rides the reactor; under [`NetModel::Threaded`] it keeps its
    /// dedicated sidecar thread.
    pub metrics_addr: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 4,
            model: NetModel::Epoll,
            max_conns: 0,
            metrics_addr: None,
        }
    }
}

/// The model-specific half of [`ServeHandle`].
enum HandleInner {
    Epoll(event_loop::EpollServer),
    Threaded {
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
        metrics: Option<MetricsHandle>,
    },
}

/// A running TCP front-end. Dropping the handle without calling
/// [`stop`](ServeHandle::stop) leaves the daemon threads running.
pub struct ServeHandle {
    addr: SocketAddr,
    inner: HandleInner,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound scrape-endpoint address, when one was requested via
    /// [`ServeOptions::metrics_addr`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        match &self.inner {
            HandleInner::Epoll(ep) => ep.metrics_addr,
            HandleInner::Threaded { metrics, .. } => metrics.as_ref().map(|m| m.addr()),
        }
    }

    /// Stops accepting, drains the workers, and joins all threads.
    /// In-flight connections are closed after their current request.
    pub fn stop(self) {
        match self.inner {
            HandleInner::Epoll(mut ep) => {
                ep.stop.store(true, Ordering::SeqCst);
                // The eventfd write wakes the reactor out of epoll_wait;
                // no connect-to-self needed.
                event_loop::wake_eventfd(ep.wake_fd);
                if let Some(t) = ep.reactor.take() {
                    let _ = t.join();
                }
                for w in ep.workers.drain(..) {
                    let _ = w.join();
                }
                // SAFETY: every thread that touches the eventfd has
                // joined; this handle owns the descriptor.
                unsafe {
                    let _ = libc::close(ep.wake_fd);
                }
            }
            HandleInner::Threaded {
                stop,
                mut accept_thread,
                mut workers,
                metrics,
            } => {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
                for w in workers.drain(..) {
                    let _ = w.join();
                }
                if let Some(m) = metrics {
                    m.stop();
                }
            }
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
/// serves `server` with `threads` request workers on the default
/// front-end until [`ServeHandle::stop`]. Shorthand for [`serve_with`]
/// with default [`ServeOptions`].
pub fn serve(server: Arc<Server>, addr: &str, threads: usize) -> std::io::Result<ServeHandle> {
    serve_with(
        server,
        addr,
        &ServeOptions {
            threads,
            ..ServeOptions::default()
        },
    )
}

/// Binds `addr` and serves `server` per `opts` until
/// [`ServeHandle::stop`].
pub fn serve_with(
    server: Arc<Server>,
    addr: &str,
    opts: &ServeOptions,
) -> std::io::Result<ServeHandle> {
    server.note_net_config(opts.model, opts.max_conns);
    match opts.model {
        NetModel::Epoll => {
            let ep = event_loop::spawn(server, addr, opts)?;
            Ok(ServeHandle {
                addr: ep.addr,
                inner: HandleInner::Epoll(ep),
            })
        }
        NetModel::Threaded => serve_threaded(server, addr, opts),
    }
}

/// The blocking thread-per-connection front-end ([`NetModel::Threaded`]).
fn serve_threaded(
    server: Arc<Server>,
    addr: &str,
    opts: &ServeOptions,
) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let metrics = match &opts.metrics_addr {
        Some(a) => Some(serve_metrics_http(Arc::clone(&server), a)?),
        None => None,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..opts.threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                // Take the next connection; queue closed means shutdown.
                let conn = match rx.lock().expect("queue lock").recv() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                serve_connection(&server, conn, &stop);
            })
        })
        .collect();

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break; // the stop() wake-up connection lands here
            }
            let Ok(conn) = conn else { continue };
            if tx.send(conn).is_err() {
                break;
            }
        }
        // Dropping `tx` closes the queue and releases the workers.
    });

    Ok(ServeHandle {
        addr: bound,
        inner: HandleInner::Threaded {
            stop,
            accept_thread: Some(accept_thread),
            workers,
            metrics,
        },
    })
}

/// How often a worker blocked on an idle connection re-checks the stop
/// flag. Bounds [`ServeHandle::stop`]'s worst-case join time.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Decrements the active-connections gauge on every exit path from
/// [`serve_connection`], including handler panics.
struct ActiveGuard(Gauge);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// What one bounded line read produced.
enum LineRead {
    /// A complete request line (terminator stripped by the caller).
    Line,
    /// Clean EOF with nothing buffered.
    Closed,
    /// The line exceeded [`MAX_REQUEST_LINE`].
    TooLong,
    /// Stop flag or read error: tear the connection down.
    Abort,
}

/// Reads one request line into `line`, never buffering more than
/// [`MAX_REQUEST_LINE`] content bytes (+ terminator slack).
fn read_bounded_line(
    server: &Server,
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    stop: &AtomicBool,
) -> LineRead {
    loop {
        // Cap each append so a newline-free flood cannot grow `line`
        // without bound; +2 leaves room to see the `\r\n` terminator of
        // a maximum-length line before declaring an overrun.
        let cap = (MAX_REQUEST_LINE + 2).saturating_sub(line.len());
        if cap == 0 {
            return LineRead::TooLong;
        }
        // A timeout mid-line leaves the bytes read so far in `line`
        // (the read_line contract), so retrying just keeps appending.
        match (&mut *reader).take(cap as u64).read_line(line) {
            Ok(0) if line.is_empty() => return LineRead::Closed,
            // EOF mid-line: serve what arrived (legacy behavior for
            // `printf 'PING' | nc`-style clients without a newline).
            Ok(0) => return LineRead::Line,
            Ok(_) if line.ends_with('\n') => {
                if line.trim_end_matches(['\r', '\n']).len() > MAX_REQUEST_LINE {
                    return LineRead::TooLong;
                }
                return LineRead::Line;
            }
            // The `take` limit cut the read mid-line: loop to extend.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return LineRead::Abort;
                }
            }
            Err(e) => {
                server.net.read_errors.inc();
                gk_metrics::warn!("conn_read_error", error = e);
                return LineRead::Abort;
            }
        }
    }
}

/// Serves one connection: request line in, response paragraph out.
fn serve_connection(server: &Server, conn: TcpStream, stop: &AtomicBool) {
    server.net.connections_total.inc();
    server.net.connections_active.inc();
    let _active = ActiveGuard(server.net.connections_active);
    // Without a read timeout a worker would block forever on an idle
    // persistent connection and stop() could never join it.
    let _ = conn.set_read_timeout(Some(IDLE_POLL));
    // Answers are small and latency-bound; Nagle coalescing would stall a
    // pipelining client (many un-ACKed small response writes) for a
    // delayed-ACK window per batch.
    let _ = conn.set_nodelay(true);
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut line = String::new();
    'requests: loop {
        line.clear();
        match read_bounded_line(server, &mut reader, &mut line, stop) {
            LineRead::Line => {}
            LineRead::Closed | LineRead::Abort => break 'requests,
            LineRead::TooLong => {
                server.net.read_errors.inc();
                let _ = writer.write_all(b"ERR request too long\n\n");
                break 'requests;
            }
        }
        let request = line.trim();
        // A blank line is not a request: piped input commonly ends with a
        // trailing newline pair, and answering `ERR` here would both
        // inflate `gk_request_errors_total` and desynchronize pipelined
        // clients that count response paragraphs.
        if request.is_empty() {
            continue 'requests;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            if let Err(e) = writer.write_all(b"BYE\n\n") {
                server.net.write_errors.inc();
                gk_metrics::warn!("conn_write_error", error = e);
            }
            break;
        }
        // A panicking handler must not take the pool thread down with it:
        // answer ERR and keep serving. (Index updates swap fully-built
        // state at the end, so a mid-update panic leaves the old state.)
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.handle(request)))
                .unwrap_or_else(|_| "ERR internal error (request handler panicked)".into());
        if let Err(e) = writer.write_all(format!("{response}\n\n").as_bytes()) {
            server.net.write_errors.inc();
            gk_metrics::warn!("conn_write_error", error = e);
            break;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = writer.shutdown(Shutdown::Both);
}

/// Timeout for the one-shot client: the whole call — connect, write,
/// and the complete paragraph read — must finish within it. Mirrors the
/// scrape endpoint's guard so `graphkeys query` against a wedged or
/// blackholed server fails fast instead of hanging forever.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// Connects to a running server, sends one request, and returns the
/// response paragraph (without the terminating blank line). This is the
/// client half used by `graphkeys query`.
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    request_with_timeout(addr, line, REQUEST_TIMEOUT)
}

/// [`request`] with an explicit **overall deadline**: connect, write,
/// and every read together must finish within `timeout`. (Per-syscall
/// timeouts alone would let a slow-drip server extend the call
/// arbitrarily — each byte resets a per-read timer, the deadline
/// doesn't.)
pub fn request_with_timeout(addr: &str, line: &str, timeout: Duration) -> std::io::Result<String> {
    use std::net::ToSocketAddrs;
    let deadline = Instant::now() + timeout;
    let remaining = |deadline: Instant| -> std::io::Result<Duration> {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        Ok(left)
    };
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut conn = TcpStream::connect_timeout(&sock, remaining(deadline)?)?;
    conn.set_write_timeout(Some(remaining(deadline)?))?;
    conn.write_all(format!("{line}\n").as_bytes())?;
    // Read raw chunks under the deadline rather than lines: a line read
    // loops internally until its terminator, so a server dripping one
    // byte per timeout window would keep it alive forever. Re-arming the
    // socket timeout with what's LEFT of the deadline before each chunk
    // makes the loop as a whole respect it.
    let mut raw: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let end = loop {
        conn.set_read_timeout(Some(remaining(deadline)?))?;
        let n = match conn.read(&mut chunk) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            break raw.len(); // EOF before the terminator: take what came
        }
        raw.extend_from_slice(&chunk[..n]);
        // Paragraph terminator: an empty line (`\r` tolerated).
        if let Some(pos) = raw
            .windows(2)
            .position(|w| w == b"\n\n")
            .or_else(|| raw.windows(3).position(|w| w == b"\n\r\n"))
        {
            break pos;
        }
        if raw.starts_with(b"\n") || raw.starts_with(b"\r\n") {
            break 0; // an immediately-empty paragraph
        }
    };
    Ok(String::from_utf8_lossy(&raw[..end]).trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::KeySet;
    use gk_graph::parse_graph;

    fn test_server() -> Arc<Server> {
        let g = parse_graph(
            r#"
            a1:album name_of "Anthology 2"
            a1:album release_year "1996"
            a2:album name_of "Anthology 2"
            a2:album release_year "1996"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
            .unwrap();
        Arc::new(Server::new(g, keys))
    }

    fn opts(model: NetModel) -> ServeOptions {
        ServeOptions {
            threads: 2,
            model,
            ..ServeOptions::default()
        }
    }

    /// Reads one response paragraph (text up to the blank line).
    fn read_paragraph(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
        let mut out = String::new();
        let mut buf = String::new();
        loop {
            buf.clear();
            if reader.read_line(&mut buf)? == 0 {
                if out.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof before paragraph",
                    ));
                }
                break;
            }
            if buf.trim_end_matches(['\r', '\n']).is_empty() {
                break;
            }
            out.push_str(&buf);
        }
        Ok(out.trim_end().to_string())
    }

    #[test]
    fn both_models_answer_pipelined_requests_in_order() {
        for model in [NetModel::Epoll, NetModel::Threaded] {
            let h = serve_with(test_server(), "127.0.0.1:0", &opts(model)).unwrap();
            let conn = TcpStream::connect(h.addr()).unwrap();
            let mut writer = conn.try_clone().unwrap();
            let mut reader = BufReader::new(conn);
            // One burst of pipelined requests: answers must come back in
            // request order, ending with BYE and EOF after QUIT.
            writer.write_all(b"PING\nSAME a1 a2\nPING\nQUIT\n").unwrap();
            assert_eq!(read_paragraph(&mut reader).unwrap(), "PONG", "{model}");
            assert!(
                read_paragraph(&mut reader).unwrap().starts_with("YES"),
                "{model}"
            );
            assert_eq!(read_paragraph(&mut reader).unwrap(), "PONG", "{model}");
            assert_eq!(read_paragraph(&mut reader).unwrap(), "BYE", "{model}");
            let mut rest = String::new();
            BufRead::read_line(&mut reader, &mut rest).unwrap();
            assert!(rest.is_empty(), "{model}: got {rest:?} after BYE");
            h.stop();
        }
    }

    #[test]
    fn oversized_request_line_is_rejected_by_both_models() {
        for model in [NetModel::Epoll, NetModel::Threaded] {
            let server = test_server();
            let before = server.net.read_errors.get();
            let h = serve_with(Arc::clone(&server), "127.0.0.1:0", &opts(model)).unwrap();

            // A complete-but-over-long line.
            let conn = TcpStream::connect(h.addr()).unwrap();
            let mut writer = conn.try_clone().unwrap();
            let mut reader = BufReader::new(conn);
            let mut big = vec![b'A'; MAX_REQUEST_LINE + 1];
            big.push(b'\n');
            writer.write_all(&big).unwrap();
            assert_eq!(
                read_paragraph(&mut reader).unwrap(),
                "ERR request too long",
                "{model}"
            );
            let mut rest = String::new();
            BufRead::read_line(&mut reader, &mut rest).unwrap();
            assert!(rest.is_empty(), "{model}: connection must close");

            // A newline-free flood: rejected without buffering it all.
            let conn = TcpStream::connect(h.addr()).unwrap();
            let mut writer = conn.try_clone().unwrap();
            let mut reader = BufReader::new(conn);
            let flood = vec![b'B'; MAX_REQUEST_LINE + 4096];
            // The server may cut the connection mid-write; that reset is
            // exactly the behavior under test, not a test failure.
            let _ = writer.write_all(&flood);
            let _ = writer.flush();
            let got = read_paragraph(&mut reader).unwrap_or_default();
            assert!(
                got.is_empty() || got == "ERR request too long",
                "{model}: got {got:?}"
            );

            h.stop();
            assert!(
                server.net.read_errors.get() >= before + 2,
                "{model}: oversized requests must count into gk_conn_read_errors_total"
            );
        }
    }

    #[test]
    fn epoll_rejects_beyond_max_conns_with_err_busy() {
        let server = test_server();
        let h = serve_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            &ServeOptions {
                threads: 2,
                model: NetModel::Epoll,
                max_conns: 1,
                metrics_addr: None,
            },
        )
        .unwrap();

        // First connection occupies the only admission slot.
        let held = TcpStream::connect(h.addr()).unwrap();
        let mut writer = held.try_clone().unwrap();
        let mut reader = BufReader::new(held);
        writer.write_all(b"PING\n").unwrap();
        assert_eq!(read_paragraph(&mut reader).unwrap(), "PONG");

        // The second is turned away at the door.
        let conn = TcpStream::connect(h.addr()).unwrap();
        let mut busy = BufReader::new(conn);
        assert_eq!(read_paragraph(&mut busy).unwrap(), "ERR busy");
        assert!(server.net.rejected.get() >= 1);

        // Releasing the slot readmits: the reactor frees it before the
        // socket shutdown, but a fresh connect can still race the
        // teardown, so retry briefly.
        drop(writer);
        drop(reader);
        let mut readmitted = false;
        for _ in 0..50 {
            let conn = TcpStream::connect(h.addr()).unwrap();
            let mut w = conn.try_clone().unwrap();
            let mut r = BufReader::new(conn);
            if w.write_all(b"PING\n").is_ok() && read_paragraph(&mut r).is_ok_and(|p| p == "PONG") {
                readmitted = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            readmitted,
            "slot must free after the held connection closes"
        );
        h.stop();
    }

    #[test]
    fn slow_loris_does_not_stall_other_connections() {
        // One worker thread: if a half-written request occupied it (as it
        // would a threaded-model worker), the probe below could not be
        // answered until the loris completed.
        let h = serve_with(
            test_server(),
            "127.0.0.1:0",
            &ServeOptions {
                threads: 1,
                model: NetModel::Epoll,
                ..ServeOptions::default()
            },
        )
        .unwrap();

        // The loris: half a request line, then silence.
        let loris = TcpStream::connect(h.addr()).unwrap();
        let mut loris_writer = loris.try_clone().unwrap();
        let mut loris_reader = BufReader::new(loris);
        loris_writer.write_all(b"PI").unwrap();
        loris_writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // A well-behaved probe right behind it is answered immediately —
        // the timestamps are the proof of no cross-connection stall.
        let probe_start = Instant::now();
        let probe = TcpStream::connect(h.addr()).unwrap();
        let mut probe_writer = probe.try_clone().unwrap();
        let mut probe_reader = BufReader::new(probe);
        probe_writer.write_all(b"PING\n").unwrap();
        assert_eq!(read_paragraph(&mut probe_reader).unwrap(), "PONG");
        let probe_elapsed = probe_start.elapsed();
        assert!(
            probe_elapsed < Duration::from_millis(500),
            "probe stalled behind the loris: {probe_elapsed:?}"
        );

        // The loris completes its line and still gets the right answer.
        loris_writer.write_all(b"NG\n").unwrap();
        assert_eq!(read_paragraph(&mut loris_reader).unwrap(), "PONG");
        h.stop();
    }

    #[test]
    fn epoll_hosts_the_metrics_endpoint_on_the_reactor() {
        let h = serve_with(
            test_server(),
            "127.0.0.1:0",
            &ServeOptions {
                threads: 2,
                model: NetModel::Epoll,
                max_conns: 0,
                metrics_addr: Some("127.0.0.1:0".to_string()),
            },
        )
        .unwrap();
        let maddr = h.metrics_addr().expect("metrics endpoint requested");
        let mut conn = TcpStream::connect(maddr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("gk_eventloop_wakeups_total"), "{resp}");
        assert!(resp.contains("gk_conns_rejected_total"), "{resp}");
        h.stop();
    }

    #[test]
    fn stats_reports_net_model_and_max_conns() {
        let server = test_server();
        assert!(server.handle("STATS").contains("net_model=none"));
        let h = serve_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            &ServeOptions {
                threads: 1,
                model: NetModel::Epoll,
                max_conns: 7,
                metrics_addr: None,
            },
        )
        .unwrap();
        let stats = request(&h.addr().to_string(), "STATS").unwrap();
        assert!(stats.contains("net_model=epoll"), "{stats}");
        assert!(stats.contains("max_conns=7"), "{stats}");
        h.stop();

        let h = serve_with(
            Arc::clone(&server),
            "127.0.0.1:0",
            &opts(NetModel::Threaded),
        )
        .unwrap();
        let stats = request(&h.addr().to_string(), "STATS").unwrap();
        assert!(stats.contains("net_model=threaded"), "{stats}");
        h.stop();
    }

    #[test]
    fn request_with_timeout_enforces_an_overall_deadline() {
        // A mock server that drips one byte per 50ms forever: each drip
        // resets a per-read timer, so only a true overall deadline can
        // end the call.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let drip_stop = Arc::clone(&stop);
        let dripper = std::thread::spawn(move || {
            let Ok((mut conn, _)) = listener.accept() else {
                return;
            };
            while !drip_stop.load(Ordering::SeqCst) {
                if conn.write_all(b"x").is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });

        let start = Instant::now();
        let err = request_with_timeout(&addr.to_string(), "PING", Duration::from_millis(300))
            .expect_err("a dripping paragraph must hit the deadline");
        let elapsed = start.elapsed();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
        assert!(
            elapsed < Duration::from_secs(2),
            "deadline must bound the whole call, took {elapsed:?}"
        );
        stop.store(true, Ordering::SeqCst);
        let _ = dripper.join();
    }

    #[test]
    fn deep_pipelining_is_answered_completely_and_in_order() {
        // 4x the per-connection pending bound, written in one burst:
        // exercises the pause/resume backpressure path end to end.
        let h = serve_with(test_server(), "127.0.0.1:0", &opts(NetModel::Epoll)).unwrap();
        let conn = TcpStream::connect(h.addr()).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        let n = 1024;
        let burst = "PING\n".repeat(n);
        let writer_thread = std::thread::spawn(move || {
            let _ = writer.write_all(burst.as_bytes());
        });
        for i in 0..n {
            assert_eq!(read_paragraph(&mut reader).unwrap(), "PONG", "response {i}");
        }
        writer_thread.join().unwrap();
        h.stop();
    }
}
