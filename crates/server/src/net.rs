//! TCP framing of the line protocol.
//!
//! Connections are persistent: each request line gets one response
//! *paragraph* — the response text followed by a blank line — so clients
//! can read multi-line answers (`EXPLAIN`, `HELP`) without length
//! prefixes. A fixed pool of worker threads pulls accepted connections
//! from a shared queue (`std::net` + blocking I/O: no async runtime is
//! available in this build environment, and the protocol is trivially
//! request-sized).

use crate::protocol::Server;
use gk_metrics::Gauge;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A running TCP front-end. Dropping the handle without calling
/// [`stop`](ServeHandle::stop) leaves the daemon threads running.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins all threads.
    /// In-flight connections are closed after their current request.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and serves
/// `server` on `threads` worker threads until [`ServeHandle::stop`].
pub fn serve(server: Arc<Server>, addr: &str, threads: usize) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                // Take the next connection; queue closed means shutdown.
                let conn = match rx.lock().expect("queue lock").recv() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                serve_connection(&server, conn, &stop);
            })
        })
        .collect();

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break; // the stop() wake-up connection lands here
            }
            let Ok(conn) = conn else { continue };
            if tx.send(conn).is_err() {
                break;
            }
        }
        // Dropping `tx` closes the queue and releases the workers.
    });

    Ok(ServeHandle {
        addr: bound,
        stop,
        accept_thread: Some(accept_thread),
        workers,
    })
}

/// How often a worker blocked on an idle connection re-checks the stop
/// flag. Bounds [`ServeHandle::stop`]'s worst-case join time.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(200);

/// Decrements the active-connections gauge on every exit path from
/// [`serve_connection`], including handler panics.
struct ActiveGuard(Gauge);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Serves one connection: request line in, response paragraph out.
fn serve_connection(server: &Server, conn: TcpStream, stop: &AtomicBool) {
    server.net.connections_total.inc();
    server.net.connections_active.inc();
    let _active = ActiveGuard(server.net.connections_active);
    // Without a read timeout a worker would block forever on an idle
    // persistent connection and stop() could never join it.
    let _ = conn.set_read_timeout(Some(IDLE_POLL));
    // Answers are small and latency-bound; Nagle coalescing would stall a
    // pipelining client (many un-ACKed small response writes) for a
    // delayed-ACK window per batch.
    let _ = conn.set_nodelay(true);
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut line = String::new();
    'requests: loop {
        line.clear();
        // A timeout mid-line leaves the bytes read so far in `line`
        // (the read_until contract), so retrying just keeps appending.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break 'requests, // client closed
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        break 'requests;
                    }
                }
                Err(e) => {
                    server.net.read_errors.inc();
                    gk_metrics::warn!("conn_read_error", error = e);
                    break 'requests;
                }
            }
        }
        let request = line.trim();
        // A blank line is not a request: piped input commonly ends with a
        // trailing newline pair, and answering `ERR` here would both
        // inflate `gk_request_errors_total` and desynchronize pipelined
        // clients that count response paragraphs.
        if request.is_empty() {
            continue 'requests;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            if let Err(e) = writer.write_all(b"BYE\n\n") {
                server.net.write_errors.inc();
                gk_metrics::warn!("conn_write_error", error = e);
            }
            break;
        }
        // A panicking handler must not take the pool thread down with it:
        // answer ERR and keep serving. (Index updates swap fully-built
        // state at the end, so a mid-update panic leaves the old state.)
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.handle(request)))
                .unwrap_or_else(|_| "ERR internal error (request handler panicked)".into());
        if let Err(e) = writer.write_all(format!("{response}\n\n").as_bytes()) {
            server.net.write_errors.inc();
            gk_metrics::warn!("conn_write_error", error = e);
            break;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = writer.shutdown(Shutdown::Both);
}

/// Timeout for the one-shot client: connect, each read, and the write.
/// Mirrors the scrape endpoint's guard so `graphkeys query` against a
/// wedged or blackholed server fails fast instead of hanging forever.
const REQUEST_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);

/// Connects to a running server, sends one request, and returns the
/// response paragraph (without the terminating blank line). This is the
/// client half used by `graphkeys query`.
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    request_with_timeout(addr, line, REQUEST_TIMEOUT)
}

/// [`request`] with an explicit timeout (covering connect and every
/// subsequent read/write individually, not the call as a whole).
pub fn request_with_timeout(
    addr: &str,
    line: &str,
    timeout: std::time::Duration,
) -> std::io::Result<String> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut conn = TcpStream::connect_timeout(&sock, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(format!("{line}\n").as_bytes())?;
    let mut reader = BufReader::new(conn);
    let mut out = String::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        if buf.trim_end_matches(['\r', '\n']).is_empty() {
            break; // paragraph terminator
        }
        out.push_str(&buf);
    }
    Ok(out.trim_end().to_string())
}
