//! The typed request/response surface of the protocol.
//!
//! [`Request`] and [`Response`] are the primary API: every verb the
//! server understands is a `Request` variant, every answer it can give is
//! a `Response` variant, and the textual line protocol is nothing but
//! [`Request::parse`] → [`Server::execute`](crate::Server::execute) →
//! [`Response::render`]. Both directions are **lossless**:
//!
//! * `Request::parse(req.render()) == Ok(req)` for every `Request`;
//! * `Response::parse(resp.render()) == Ok(resp)` for every `Response`;
//!
//! so a typed client ([`gk-client`](https://docs.rs) or any embedder) can
//! round-trip values over the wire without string surgery, while scripted
//! sessions and golden transcripts keep their exact byte-level shape.
//!
//! Malformed requests fail to parse with a [`RequestError`] whose display
//! form is the protocol's `ERR …` payload — arity mistakes and trailing
//! tokens all answer a uniform `ERR usage: <verb signature>` line.

use crate::index::{AdvanceMode, AdvanceReport, KeyChange};
use gk_metrics::{MetricSnapshot, TraceNode};
use std::fmt::Write as _;

/// One request, as understood by [`crate::Server::execute`].
///
/// String payloads hold exactly what travels on the wire: entity *names*
/// (not ids — the server resolves them against its current snapshot),
/// triple batches in the `;`-separated text form, and key DSL text.
/// `Hash` lets a request serve as part of an answer-cache key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Request {
    /// `SAME <a> <b>` — are the two entities identified?
    Same {
        /// First entity name.
        a: String,
        /// Second entity name.
        b: String,
    },
    /// `DUPS <e>` — the duplicate cluster of an entity.
    Dups {
        /// Entity name.
        entity: String,
    },
    /// `REP <e>` — the canonical representative of an entity.
    Rep {
        /// Entity name.
        entity: String,
    },
    /// `EXPLAIN <a> <b>` — a verified key-application proof.
    Explain {
        /// First entity name.
        a: String,
        /// Second entity name.
        b: String,
    },
    /// `INSERT <batch>` — insert triples (`;` separates several).
    Insert {
        /// The raw batch text after the verb.
        batch: String,
    },
    /// `DELETE <batch>` — delete triples (`;` separates several).
    Delete {
        /// The raw batch text after the verb.
        batch: String,
    },
    /// `ADDKEY <dsl>` — install one key into the live Σ.
    AddKey {
        /// The key definition in the DSL (one `key … { … }` block).
        dsl: String,
    },
    /// `DROPKEY <name>` — remove a key from the live Σ by name.
    DropKey {
        /// The declared key name.
        name: String,
    },
    /// `KEYS` — list the declared keys and the key epoch.
    Keys,
    /// `SNAPSHOT` — persist a point-in-time snapshot.
    Snapshot,
    /// `COMPACT` — snapshot + truncate the WAL + fold the delta overlay.
    Compact,
    /// `STATS` — index and traffic counters.
    Stats,
    /// `METRICS` — the full metrics exposition.
    Metrics,
    /// `TRACE <verb ...>` — execute the wrapped request with per-request
    /// span tracing on, answering its result plus the recorded span tree.
    Trace {
        /// The wrapped request (itself neither `TRACE` nor `TRACES`).
        inner: Box<Request>,
    },
    /// `TRACES [n]` — dump the flight recorder's retained traces.
    Traces {
        /// Max traces returned; `None` means the recorder's capacity.
        n: Option<usize>,
    },
    /// `SHARDCHASE <cursor>` — (cluster-internal) chase this shard's
    /// slice to a local fixpoint and answer the merge log from `cursor`.
    ShardChase {
        /// First step-log position the caller has not yet seen.
        cursor: u64,
    },
    /// `MERGES <cursor> <a> <b> "<key>" [; …]` — (cluster-internal)
    /// absorb external merges from other shards, re-chase the slice, and
    /// answer the merge log from `cursor`.
    Merges {
        /// First step-log position the caller has not yet seen.
        cursor: u64,
        /// The external identifications to absorb, in coordinator order.
        merges: Vec<MergeEntry>,
    },
    /// `PING` — liveness check.
    Ping,
    /// `HELP` — the usage table.
    Help,
}

/// Usage signatures, one per verb — the payload of the uniform
/// `ERR usage:` answer for malformed requests.
pub mod usage {
    /// `SAME` signature.
    pub const SAME: &str = "SAME <a> <b>";
    /// `DUPS` signature.
    pub const DUPS: &str = "DUPS <e>";
    /// `REP` signature.
    pub const REP: &str = "REP <e>";
    /// `EXPLAIN` signature.
    pub const EXPLAIN: &str = "EXPLAIN <a> <b>";
    /// `INSERT` signature.
    pub const INSERT: &str = "INSERT <s:T> <p> <o> [; <s:T> <p> <o> ...]";
    /// `DELETE` signature.
    pub const DELETE: &str = "DELETE <s:T> <p> <o> [; <s:T> <p> <o> ...]";
    /// `ADDKEY` signature.
    pub const ADDKEY: &str = "ADDKEY key \"<name>\" <type>(x) { ... }";
    /// `DROPKEY` signature.
    pub const DROPKEY: &str = "DROPKEY <name>";
    /// `KEYS` signature.
    pub const KEYS: &str = "KEYS";
    /// `SNAPSHOT` signature.
    pub const SNAPSHOT: &str = "SNAPSHOT";
    /// `COMPACT` signature.
    pub const COMPACT: &str = "COMPACT";
    /// `STATS` signature.
    pub const STATS: &str = "STATS";
    /// `METRICS` signature.
    pub const METRICS: &str = "METRICS";
    /// `TRACE` signature.
    pub const TRACE: &str = "TRACE <verb ...>";
    /// `TRACES` signature.
    pub const TRACES: &str = "TRACES [n]";
    /// `SHARDCHASE` signature.
    pub const SHARDCHASE: &str = "SHARDCHASE <cursor>";
    /// `MERGES` signature.
    pub const MERGES: &str = "MERGES <cursor> [<a> <b> \"<key>\" ; ...]";
    /// `PING` signature.
    pub const PING: &str = "PING";
    /// `HELP` signature.
    pub const HELP: &str = "HELP";
}

/// Why a request line failed to parse. `Display` renders the exact `ERR`
/// payload the protocol answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The line was empty.
    Empty,
    /// The verb is not part of the protocol.
    UnknownVerb(String),
    /// Wrong arity or trailing tokens; carries the verb's usage signature.
    Usage(&'static str),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Empty => write!(f, "empty request (try HELP)"),
            RequestError::UnknownVerb(v) => write!(f, "unknown verb {v:?} (try HELP)"),
            RequestError::Usage(u) => write!(f, "usage: {u}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl Request {
    /// Parses one request line. Verbs are case-insensitive; arguments are
    /// taken verbatim. Arity mistakes — missing arguments, extra tokens,
    /// trailing garbage on a zero-argument verb — uniformly fail with
    /// [`RequestError::Usage`].
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let line = line.trim();
        if line.is_empty() {
            return Err(RequestError::Empty);
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let exactly = |n: usize, u: &'static str| -> Result<Vec<String>, RequestError> {
            let parts: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
            if parts.len() == n {
                Ok(parts)
            } else {
                Err(RequestError::Usage(u))
            }
        };
        let bare = |u: &'static str| -> Result<(), RequestError> {
            if rest.is_empty() {
                Ok(())
            } else {
                Err(RequestError::Usage(u))
            }
        };
        let text = |u: &'static str| -> Result<String, RequestError> {
            if rest.is_empty() {
                Err(RequestError::Usage(u))
            } else {
                Ok(rest.to_string())
            }
        };
        match verb.to_ascii_uppercase().as_str() {
            "SAME" => {
                let mut p = exactly(2, usage::SAME)?;
                let b = p.pop().expect("two parts");
                let a = p.pop().expect("two parts");
                Ok(Request::Same { a, b })
            }
            "DUPS" => Ok(Request::Dups {
                entity: exactly(1, usage::DUPS)?.pop().expect("one part"),
            }),
            "REP" => Ok(Request::Rep {
                entity: exactly(1, usage::REP)?.pop().expect("one part"),
            }),
            "EXPLAIN" => {
                let mut p = exactly(2, usage::EXPLAIN)?;
                let b = p.pop().expect("two parts");
                let a = p.pop().expect("two parts");
                Ok(Request::Explain { a, b })
            }
            "INSERT" => Ok(Request::Insert {
                batch: text(usage::INSERT)?,
            }),
            "DELETE" => Ok(Request::Delete {
                batch: text(usage::DELETE)?,
            }),
            "ADDKEY" => Ok(Request::AddKey {
                dsl: text(usage::ADDKEY)?,
            }),
            "DROPKEY" => Ok(Request::DropKey {
                name: text(usage::DROPKEY)?,
            }),
            "KEYS" => bare(usage::KEYS).map(|()| Request::Keys),
            "SNAPSHOT" => bare(usage::SNAPSHOT).map(|()| Request::Snapshot),
            "COMPACT" => bare(usage::COMPACT).map(|()| Request::Compact),
            "STATS" => bare(usage::STATS).map(|()| Request::Stats),
            "METRICS" => bare(usage::METRICS).map(|()| Request::Metrics),
            "TRACE" => {
                let inner = match Request::parse(rest) {
                    Ok(inner) => inner,
                    // An empty wrapped request is a TRACE arity mistake;
                    // a malformed inner verb keeps its own diagnosis.
                    Err(RequestError::Empty) => return Err(RequestError::Usage(usage::TRACE)),
                    Err(e) => return Err(e),
                };
                if matches!(inner, Request::Trace { .. } | Request::Traces { .. }) {
                    return Err(RequestError::Usage(usage::TRACE));
                }
                Ok(Request::Trace {
                    inner: Box::new(inner),
                })
            }
            "TRACES" => {
                if rest.is_empty() {
                    Ok(Request::Traces { n: None })
                } else {
                    let n = exactly(1, usage::TRACES)?.pop().expect("one part");
                    n.parse()
                        .map(|n| Request::Traces { n: Some(n) })
                        .map_err(|_| RequestError::Usage(usage::TRACES))
                }
            }
            "SHARDCHASE" => {
                let cursor = exactly(1, usage::SHARDCHASE)?.pop().expect("one part");
                cursor
                    .parse()
                    .map(|cursor| Request::ShardChase { cursor })
                    .map_err(|_| RequestError::Usage(usage::SHARDCHASE))
            }
            "MERGES" => {
                let (cursor, entries) = match rest.split_once(char::is_whitespace) {
                    Some((c, r)) => (c, r.trim()),
                    None => (rest, ""),
                };
                let cursor = cursor
                    .parse()
                    .map_err(|_| RequestError::Usage(usage::MERGES))?;
                let merges =
                    parse_merge_entries(entries).ok_or(RequestError::Usage(usage::MERGES))?;
                Ok(Request::Merges { cursor, merges })
            }
            "PING" => bare(usage::PING).map(|()| Request::Ping),
            "HELP" => bare(usage::HELP).map(|()| Request::Help),
            other => Err(RequestError::UnknownVerb(other.to_string())),
        }
    }

    /// Renders the canonical request line (no trailing newline). For every
    /// value, `Request::parse(req.render()) == Ok(req)` — provided string
    /// payloads carry no embedded newline and names no whitespace, which
    /// the wire format cannot express in the first place.
    pub fn render(&self) -> String {
        match self {
            Request::Same { a, b } => format!("SAME {a} {b}"),
            Request::Dups { entity } => format!("DUPS {entity}"),
            Request::Rep { entity } => format!("REP {entity}"),
            Request::Explain { a, b } => format!("EXPLAIN {a} {b}"),
            Request::Insert { batch } => format!("INSERT {batch}"),
            Request::Delete { batch } => format!("DELETE {batch}"),
            Request::AddKey { dsl } => format!("ADDKEY {dsl}"),
            Request::DropKey { name } => format!("DROPKEY {name}"),
            Request::Keys => "KEYS".into(),
            Request::Snapshot => "SNAPSHOT".into(),
            Request::Compact => "COMPACT".into(),
            Request::Stats => "STATS".into(),
            Request::Metrics => "METRICS".into(),
            Request::Trace { inner } => format!("TRACE {}", inner.render()),
            Request::Traces { n: None } => "TRACES".into(),
            Request::Traces { n: Some(n) } => format!("TRACES {n}"),
            Request::ShardChase { cursor } => format!("SHARDCHASE {cursor}"),
            Request::Merges { cursor, merges } if merges.is_empty() => {
                format!("MERGES {cursor}")
            }
            Request::Merges { cursor, merges } => {
                format!("MERGES {cursor} {}", render_merge_entries(merges))
            }
            Request::Ping => "PING".into(),
            Request::Help => "HELP".into(),
        }
    }

    /// True for the verbs that mutate the index (triples or Σ). A `TRACE`
    /// mutates exactly when its wrapped request does.
    pub fn is_update(&self) -> bool {
        match self {
            Request::Insert { .. }
            | Request::Delete { .. }
            | Request::AddKey { .. }
            | Request::DropKey { .. }
            | Request::Merges { .. } => true,
            Request::Trace { inner } => inner.is_update(),
            _ => false,
        }
    }

    /// Every verb name, lowercase — the namespace of the per-verb request
    /// metrics (`gk_requests_<verb>_total`, `gk_request_micros_<verb>`).
    pub const VERBS: [&'static str; 19] = [
        "same",
        "dups",
        "rep",
        "explain",
        "insert",
        "delete",
        "addkey",
        "dropkey",
        "shardchase",
        "merges",
        "keys",
        "snapshot",
        "compact",
        "stats",
        "metrics",
        "trace",
        "traces",
        "ping",
        "help",
    ];

    /// The lowercase verb name of this request (an element of
    /// [`Request::VERBS`]).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Same { .. } => "same",
            Request::Dups { .. } => "dups",
            Request::Rep { .. } => "rep",
            Request::Explain { .. } => "explain",
            Request::Insert { .. } => "insert",
            Request::Delete { .. } => "delete",
            Request::AddKey { .. } => "addkey",
            Request::DropKey { .. } => "dropkey",
            Request::Keys => "keys",
            Request::Snapshot => "snapshot",
            Request::Compact => "compact",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Trace { .. } => "trace",
            Request::Traces { .. } => "traces",
            Request::ShardChase { .. } => "shardchase",
            Request::Merges { .. } => "merges",
            Request::Ping => "ping",
            Request::Help => "help",
        }
    }
}

impl std::fmt::Display for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// One identification of a shipped merge log: the pair plus the name of
/// the certifying key. Travels in `MERGES` requests and `MERGELOG`
/// responses as `<a> <b> "<key>"` (the key name DSL-quoted).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MergeEntry {
    /// First entity name of the identified pair.
    pub a: String,
    /// Second entity name.
    pub b: String,
    /// Name of the certifying key.
    pub key: String,
}

impl MergeEntry {
    /// Renders the wire form `<a> <b> "<key>"`.
    fn render(&self) -> String {
        format!("{} {} {}", self.a, self.b, quote(&self.key))
    }

    /// Reads one entry off the front of `s`, returning it and the rest.
    fn read(s: &str) -> Option<(MergeEntry, &str)> {
        let (a, r) = s.split_once(char::is_whitespace)?;
        let (b, r) = r.trim_start().split_once(char::is_whitespace)?;
        let (key, r) = unquote(r.trim_start()).ok()?;
        Some((
            MergeEntry {
                a: a.to_string(),
                b: b.to_string(),
                key,
            },
            r.trim_start(),
        ))
    }
}

/// Parses a `;`-separated merge-entry list (the `MERGES` payload after
/// the cursor). Empty input is an empty list.
fn parse_merge_entries(s: &str) -> Option<Vec<MergeEntry>> {
    let mut rest = s.trim();
    let mut out = Vec::new();
    while !rest.is_empty() {
        let (entry, r) = MergeEntry::read(rest)?;
        out.push(entry);
        rest = r;
        if let Some(r) = rest.strip_prefix(';') {
            rest = r.trim_start();
            if rest.is_empty() {
                return None; // trailing separator
            }
        } else if !rest.is_empty() {
            return None; // junk between entries
        }
    }
    Some(out)
}

/// Renders a merge-entry list in the `MERGES` payload form.
fn render_merge_entries(merges: &[MergeEntry]) -> String {
    merges
        .iter()
        .map(MergeEntry::render)
        .collect::<Vec<_>>()
        .join(" ; ")
}

/// One `  a <=> b by key` line of a rendered proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofLine {
    /// First entity name of the identified pair.
    pub a: String,
    /// Second entity name.
    pub b: String,
    /// Name of the certifying key.
    pub key: String,
}

/// One trace retained by the flight recorder, as answered by `TRACES`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedTrace {
    /// The server-assigned, monotonically increasing request id.
    pub id: u64,
    /// The traced request's verb (lowercase, an element of
    /// [`Request::VERBS`]).
    pub verb: String,
    /// Whether the request crossed the slow-query threshold.
    pub slow: bool,
    /// The recorded span tree.
    pub root: TraceNode,
}

/// One response, as produced by [`crate::Server::execute`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// `PONG`.
    Pong,
    /// `BYE` (answered to `QUIT` by the TCP framing).
    Bye,
    /// `YES <a> <=> <b> rep=<rep>`.
    Same {
        /// First queried name.
        a: String,
        /// Second queried name.
        b: String,
        /// The cluster's canonical representative.
        rep: String,
    },
    /// `NO <a> =/= <b>`.
    NotSame {
        /// First queried name.
        a: String,
        /// Second queried name.
        b: String,
    },
    /// `DUPS <e>: <d1> <d2> …`.
    Dups {
        /// The queried name.
        entity: String,
        /// The other members of its cluster.
        others: Vec<String>,
    },
    /// `NONE <e> has no duplicates`.
    NoDups {
        /// The queried name.
        entity: String,
    },
    /// `REP <rep>`.
    Rep {
        /// The canonical representative.
        rep: String,
    },
    /// `PROOF <a> <=> <b> steps=<n> verified` + one line per step.
    Proof {
        /// First queried name.
        a: String,
        /// Second queried name.
        b: String,
        /// The verified key-application steps.
        steps: Vec<ProofLine>,
    },
    /// `NOPROOF <a> and <b> are not identified`.
    NoProof {
        /// First queried name.
        a: String,
        /// Second queried name.
        b: String,
    },
    /// `OK mode=… triples=… …` — an applied triple update.
    Updated(AdvanceReport),
    /// `OK snapshot_seq=<seq> bytes=<n>`.
    Snapshotted {
        /// Version of the snapshot cut.
        seq: u64,
        /// Size of the snapshot file.
        bytes: u64,
    },
    /// `OK snapshot_seq=… bytes=… truncated_records=… removed_snapshots=…`.
    Compacted {
        /// Version of the compaction snapshot.
        seq: u64,
        /// Size of the snapshot file.
        bytes: u64,
        /// WAL records dropped.
        truncated_records: u64,
        /// Older snapshot files deleted.
        removed_snapshots: usize,
    },
    /// `OK added key=… keys=… active_keys=… key_epoch=… …`.
    KeyAdded(KeyChange),
    /// `OK dropped key=… keys=… active_keys=… key_epoch=… …`.
    KeyDropped(KeyChange),
    /// `KEYS n=… active=… epoch=…` + one indented DSL line per key.
    KeyList {
        /// Active (compiled) keys.
        active: usize,
        /// The key epoch.
        epoch: u64,
        /// One single-line DSL rendering per declared key, in order.
        keys: Vec<String>,
    },
    /// `STATS k=v …` — ordered counter pairs.
    Stats(Vec<(String, String)>),
    /// `METRICS` + the full text exposition, one sample per line.
    Metrics(Vec<MetricSnapshot>),
    /// `TRACE id=… spans=…` + the span tree + `ANSWER` + the wrapped
    /// verb's response, byte-identical to the untraced answer.
    Trace {
        /// The server-assigned request id.
        id: u64,
        /// The recorded span tree (rooted at the wrapped verb's span).
        root: TraceNode,
        /// The wrapped verb's answer, unchanged.
        answer: Box<Response>,
    },
    /// `TRACES n=… captured=…` + one header and indented span tree per
    /// retained trace, newest first.
    Traces {
        /// Traces captured by the recorder since startup.
        captured: u64,
        /// The returned traces, newest first.
        traces: Vec<RecordedTrace>,
    },
    /// `MERGELOG n=… next=…` + one indented `<a> <b> "<key>"` line per
    /// merge — the shard's step log from the requested cursor.
    MergeLog {
        /// The cursor to resume from next time (the shard's log length).
        next: u64,
        /// The shipped identifications, in shard log order.
        merges: Vec<MergeEntry>,
    },
    /// The multi-line usage table.
    Help(String),
    /// `ERR <reason>`.
    Err(String),
}

/// A response that did not parse (foreign or truncated text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseError(pub String);

impl std::fmt::Display for ResponseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed response: {}", self.0)
    }
}

impl std::error::Error for ResponseError {}

/// Quotes a key name for a response line: DSL-style escapes, so the
/// payload stays on one line whatever the name contains.
fn quote(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Inverse of [`quote`]: reads a quoted name off the front of `s`,
/// returning the name and the rest.
fn unquote(s: &str) -> Result<(String, &str), ResponseError> {
    let inner = s
        .strip_prefix('"')
        .ok_or_else(|| ResponseError(format!("expected a quoted name at {s:?}")))?;
    let mut out = String::new();
    let mut chars = inner.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &inner[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                other => {
                    return Err(ResponseError(format!("bad escape {other:?} in {s:?}")));
                }
            },
            c => out.push(c),
        }
    }
    Err(ResponseError(format!("unterminated quoted name in {s:?}")))
}

impl Response {
    /// Renders the response text: possibly multi-line, never empty, no
    /// trailing newline — exactly what the line protocol answers.
    pub fn render(&self) -> String {
        match self {
            Response::Pong => "PONG".into(),
            Response::Bye => "BYE".into(),
            Response::Same { a, b, rep } => format!("YES {a} <=> {b} rep={rep}"),
            Response::NotSame { a, b } => format!("NO {a} =/= {b}"),
            Response::Dups { entity, others } if others.is_empty() => {
                // No trailing space: parse would read a phantom "" member.
                format!("DUPS {entity}:")
            }
            Response::Dups { entity, others } => {
                format!("DUPS {entity}: {}", others.join(" "))
            }
            Response::NoDups { entity } => format!("NONE {entity} has no duplicates"),
            Response::Rep { rep } => format!("REP {rep}"),
            Response::Proof { a, b, steps } => {
                let mut out = format!("PROOF {a} <=> {b} steps={} verified", steps.len());
                for s in steps {
                    let _ = write!(out, "\n  {} <=> {} by {}", s.a, s.b, s.key);
                }
                out
            }
            Response::NoProof { a, b } => format!("NOPROOF {a} and {b} are not identified"),
            Response::Updated(r) => format!(
                "OK mode={} triples={} touched={} new_entities={} new_pairs={} rounds={} iso={}",
                r.mode, r.triples, r.touched, r.new_entities, r.new_pairs, r.rounds, r.iso_checks
            ),
            Response::Snapshotted { seq, bytes } => {
                format!("OK snapshot_seq={seq} bytes={bytes}")
            }
            Response::Compacted {
                seq,
                bytes,
                truncated_records,
                removed_snapshots,
            } => format!(
                "OK snapshot_seq={seq} bytes={bytes} truncated_records={truncated_records} \
                 removed_snapshots={removed_snapshots}"
            ),
            Response::KeyAdded(c) => format!(
                "OK added key={} keys={} active_keys={} key_epoch={} identified_pairs={} \
                 rounds={} iso={}",
                quote(&c.name),
                c.keys,
                c.active_keys,
                c.key_epoch,
                c.identified_pairs,
                c.rounds,
                c.iso_checks
            ),
            Response::KeyDropped(c) => format!(
                "OK dropped key={} keys={} active_keys={} key_epoch={} identified_pairs={} \
                 rounds={} iso={}",
                quote(&c.name),
                c.keys,
                c.active_keys,
                c.key_epoch,
                c.identified_pairs,
                c.rounds,
                c.iso_checks
            ),
            Response::KeyList {
                active,
                epoch,
                keys,
            } => {
                let mut out = format!("KEYS n={} active={active} epoch={epoch}", keys.len());
                for k in keys {
                    let _ = write!(out, "\n  {k}");
                }
                out
            }
            Response::Stats(pairs) => {
                let mut out = String::from("STATS");
                for (k, v) in pairs {
                    let _ = write!(out, " {k}={v}");
                }
                out
            }
            Response::Metrics(snaps) => {
                let mut out = String::from("METRICS");
                for line in gk_metrics::render_exposition(snaps).lines() {
                    let _ = write!(out, "\n{line}");
                }
                out
            }
            Response::Trace { id, root, answer } => {
                // Span lines always start with indent + `span=`, so the
                // bare ANSWER line splits the tree from the wrapped
                // response unambiguously.
                let mut out = format!("TRACE id={id} spans={}", root.total_spans());
                for line in root.render().lines() {
                    let _ = write!(out, "\n{line}");
                }
                out.push_str("\nANSWER\n");
                out.push_str(&answer.render());
                out
            }
            Response::Traces { captured, traces } => {
                let mut out = format!("TRACES n={} captured={captured}", traces.len());
                for t in traces {
                    let _ = write!(out, "\ntrace id={} verb={} slow={}", t.id, t.verb, t.slow);
                    let mut tree = String::new();
                    t.root.render_into(1, &mut tree);
                    for line in tree.lines() {
                        let _ = write!(out, "\n{line}");
                    }
                }
                out
            }
            Response::MergeLog { next, merges } => {
                let mut out = format!("MERGELOG n={} next={next}", merges.len());
                for m in merges {
                    let _ = write!(out, "\n  {}", m.render());
                }
                out
            }
            Response::Help(text) => text.clone(),
            Response::Err(msg) => format!("ERR {msg}"),
        }
    }

    /// True for `ERR` responses.
    pub fn is_err(&self) -> bool {
        matches!(self, Response::Err(_))
    }

    /// Parses a response paragraph back into its typed form (inverse of
    /// [`Response::render`]).
    pub fn parse(text: &str) -> Result<Response, ResponseError> {
        let bad = |why: &str| ResponseError(format!("{why}: {text:?}"));
        let mut lines = text.lines();
        let first = lines.next().ok_or_else(|| bad("empty response"))?;
        let toks: Vec<&str> = first.split(' ').collect();
        match toks[0] {
            "PONG" if toks.len() == 1 => Ok(Response::Pong),
            "BYE" if toks.len() == 1 => Ok(Response::Bye),
            "YES" => match toks.as_slice() {
                ["YES", a, "<=>", b, rep] => Ok(Response::Same {
                    a: (*a).into(),
                    b: (*b).into(),
                    rep: rep
                        .strip_prefix("rep=")
                        .ok_or_else(|| bad("YES without rep="))?
                        .into(),
                }),
                _ => Err(bad("malformed YES")),
            },
            "NO" => match toks.as_slice() {
                ["NO", a, "=/=", b] => Ok(Response::NotSame {
                    a: (*a).into(),
                    b: (*b).into(),
                }),
                _ => Err(bad("malformed NO")),
            },
            "DUPS" if toks.len() >= 2 && toks[1].ends_with(':') => Ok(Response::Dups {
                entity: toks[1].trim_end_matches(':').into(),
                others: toks[2..].iter().map(|s| (*s).to_string()).collect(),
            }),
            "NONE" => {
                let entity = first
                    .strip_prefix("NONE ")
                    .and_then(|r| r.strip_suffix(" has no duplicates"))
                    .ok_or_else(|| bad("malformed NONE"))?;
                Ok(Response::NoDups {
                    entity: entity.into(),
                })
            }
            "REP" if toks.len() == 2 => Ok(Response::Rep {
                rep: toks[1].into(),
            }),
            "PROOF" => {
                let (a, b) = match toks.as_slice() {
                    ["PROOF", a, "<=>", b, _steps, "verified"] => (*a, *b),
                    _ => return Err(bad("malformed PROOF header")),
                };
                let mut steps = Vec::new();
                for line in lines {
                    let line = line
                        .strip_prefix("  ")
                        .ok_or_else(|| bad("unindented proof step"))?;
                    let (pair, key) = line
                        .split_once(" by ")
                        .ok_or_else(|| bad("proof step without key"))?;
                    let (sa, sb) = pair
                        .split_once(" <=> ")
                        .ok_or_else(|| bad("proof step without pair"))?;
                    steps.push(ProofLine {
                        a: sa.into(),
                        b: sb.into(),
                        key: key.into(),
                    });
                }
                Ok(Response::Proof {
                    a: a.into(),
                    b: b.into(),
                    steps,
                })
            }
            "NOPROOF" => {
                let rest = first
                    .strip_prefix("NOPROOF ")
                    .and_then(|r| r.strip_suffix(" are not identified"))
                    .ok_or_else(|| bad("malformed NOPROOF"))?;
                let (a, b) = rest
                    .split_once(" and ")
                    .ok_or_else(|| bad("NOPROOF pair"))?;
                Ok(Response::NoProof {
                    a: a.into(),
                    b: b.into(),
                })
            }
            "OK" => Self::parse_ok(first, &bad),
            "KEYS" => {
                let fields = kv_fields(&toks[1..])?;
                let active = field(&fields, "active")
                    .and_then(parse_usize)
                    .ok_or_else(|| bad("KEYS without active="))?;
                let epoch = field(&fields, "epoch")
                    .and_then(parse_u64)
                    .ok_or_else(|| bad("KEYS without epoch="))?;
                let n = field(&fields, "n")
                    .and_then(parse_usize)
                    .ok_or_else(|| bad("KEYS without n="))?;
                let keys: Vec<String> = lines
                    .map(|l| {
                        l.strip_prefix("  ")
                            .map(str::to_string)
                            .ok_or_else(|| bad("unindented key line"))
                    })
                    .collect::<Result<_, _>>()?;
                if keys.len() != n {
                    return Err(bad("KEYS count mismatch"));
                }
                Ok(Response::KeyList {
                    active,
                    epoch,
                    keys,
                })
            }
            "STATS" => {
                let pairs = toks[1..]
                    .iter()
                    .map(|t| {
                        t.split_once('=')
                            .map(|(k, v)| (k.to_string(), v.to_string()))
                            .ok_or_else(|| bad("STATS field without ="))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Stats(pairs))
            }
            "METRICS" if toks.len() == 1 => {
                let body: String = lines.map(|l| format!("{l}\n")).collect();
                let snaps = gk_metrics::parse_exposition(&body)
                    .map_err(|e| bad(&format!("bad exposition ({e})")))?;
                Ok(Response::Metrics(snaps))
            }
            "TRACE" => {
                let fields = kv_fields(&toks[1..])?;
                let id = field(&fields, "id")
                    .and_then(parse_u64)
                    .ok_or_else(|| bad("TRACE without id="))?;
                let spans = field(&fields, "spans")
                    .and_then(parse_usize)
                    .ok_or_else(|| bad("TRACE without spans="))?;
                let rest: Vec<&str> = lines.collect();
                let at = rest
                    .iter()
                    .position(|l| *l == "ANSWER")
                    .ok_or_else(|| bad("TRACE without ANSWER"))?;
                let (forest, used) = TraceNode::parse_forest(&rest[..at], 0)
                    .ok_or_else(|| bad("malformed span tree"))?;
                if used != at || forest.len() != 1 {
                    return Err(bad("TRACE must carry exactly one span tree"));
                }
                let root = forest.into_iter().next().expect("one tree");
                if root.total_spans() != spans {
                    return Err(bad("TRACE spans= mismatch"));
                }
                let answer = Response::parse(&rest[at + 1..].join("\n"))?;
                Ok(Response::Trace {
                    id,
                    root,
                    answer: Box::new(answer),
                })
            }
            "TRACES" => {
                let fields = kv_fields(&toks[1..])?;
                let n = field(&fields, "n")
                    .and_then(parse_usize)
                    .ok_or_else(|| bad("TRACES without n="))?;
                let captured = field(&fields, "captured")
                    .and_then(parse_u64)
                    .ok_or_else(|| bad("TRACES without captured="))?;
                let rest: Vec<&str> = lines.collect();
                let mut traces = Vec::new();
                let mut i = 0;
                while i < rest.len() {
                    let hdr = rest[i]
                        .strip_prefix("trace ")
                        .ok_or_else(|| bad("expected a trace header"))?;
                    let htoks: Vec<&str> = hdr.split(' ').collect();
                    let hfields = kv_fields(&htoks)?;
                    let id = field(&hfields, "id")
                        .and_then(parse_u64)
                        .ok_or_else(|| bad("trace header without id="))?;
                    let verb = field(&hfields, "verb")
                        .ok_or_else(|| bad("trace header without verb="))?
                        .to_string();
                    let slow = match field(&hfields, "slow") {
                        Some("true") => true,
                        Some("false") => false,
                        _ => return Err(bad("trace header without slow=")),
                    };
                    i += 1;
                    let (forest, used) = TraceNode::parse_forest(&rest[i..], 1)
                        .ok_or_else(|| bad("malformed span tree"))?;
                    if forest.len() != 1 {
                        return Err(bad("trace must carry exactly one span tree"));
                    }
                    i += used;
                    traces.push(RecordedTrace {
                        id,
                        verb,
                        slow,
                        root: forest.into_iter().next().expect("one tree"),
                    });
                }
                if traces.len() != n {
                    return Err(bad("TRACES count mismatch"));
                }
                Ok(Response::Traces { captured, traces })
            }
            "MERGELOG" => {
                let fields = kv_fields(&toks[1..])?;
                let n = field(&fields, "n")
                    .and_then(parse_usize)
                    .ok_or_else(|| bad("MERGELOG without n="))?;
                let next = field(&fields, "next")
                    .and_then(parse_u64)
                    .ok_or_else(|| bad("MERGELOG without next="))?;
                let merges: Vec<MergeEntry> = lines
                    .map(|l| {
                        let l = l
                            .strip_prefix("  ")
                            .ok_or_else(|| bad("unindented merge line"))?;
                        match MergeEntry::read(l) {
                            Some((m, "")) => Ok(m),
                            _ => Err(bad("malformed merge line")),
                        }
                    })
                    .collect::<Result<_, _>>()?;
                if merges.len() != n {
                    return Err(bad("MERGELOG count mismatch"));
                }
                Ok(Response::MergeLog { next, merges })
            }
            "commands:" => Ok(Response::Help(text.to_string())),
            "ERR" => Ok(Response::Err(
                first.strip_prefix("ERR ").unwrap_or("").to_string(),
            )),
            _ => Err(bad("unrecognized response")),
        }
    }

    /// Parses the `OK …` family, discriminated by its fields.
    fn parse_ok(
        first: &str,
        bad: &dyn Fn(&str) -> ResponseError,
    ) -> Result<Response, ResponseError> {
        let rest = first.strip_prefix("OK ").ok_or_else(|| bad("bare OK"))?;
        if let Some(keyed) = rest
            .strip_prefix("added key=")
            .or_else(|| rest.strip_prefix("dropped key="))
        {
            let added = rest.starts_with("added");
            let (name, tail) = unquote(keyed)?;
            let toks: Vec<&str> = tail.split_whitespace().collect();
            let fields = kv_fields(&toks)?;
            let get = |k: &str| field(&fields, k).ok_or_else(|| bad("missing key-change field"));
            let change = KeyChange {
                name,
                keys: parse_usize(get("keys")?).ok_or_else(|| bad("keys="))?,
                active_keys: parse_usize(get("active_keys")?).ok_or_else(|| bad("active_keys="))?,
                key_epoch: parse_u64(get("key_epoch")?).ok_or_else(|| bad("key_epoch="))?,
                identified_pairs: parse_usize(get("identified_pairs")?)
                    .ok_or_else(|| bad("identified_pairs="))?,
                rounds: parse_usize(get("rounds")?).ok_or_else(|| bad("rounds="))?,
                iso_checks: parse_u64(get("iso")?).ok_or_else(|| bad("iso="))?,
            };
            return Ok(if added {
                Response::KeyAdded(change)
            } else {
                Response::KeyDropped(change)
            });
        }
        let toks: Vec<&str> = rest.split_whitespace().collect();
        let fields = kv_fields(&toks)?;
        if let Some(mode) = field(&fields, "mode") {
            let get = |k: &str| {
                field(&fields, k)
                    .and_then(parse_usize)
                    .ok_or_else(|| bad("missing update field"))
            };
            return Ok(Response::Updated(AdvanceReport {
                mode: AdvanceMode::parse(mode).map_err(|e| bad(&e))?,
                triples: get("triples")?,
                touched: get("touched")?,
                new_entities: get("new_entities")?,
                new_pairs: get("new_pairs")?,
                rounds: get("rounds")?,
                iso_checks: field(&fields, "iso")
                    .and_then(parse_u64)
                    .ok_or_else(|| bad("iso="))?,
            }));
        }
        let seq = field(&fields, "snapshot_seq")
            .and_then(parse_u64)
            .ok_or_else(|| bad("OK without snapshot_seq="))?;
        let bytes = field(&fields, "bytes")
            .and_then(parse_u64)
            .ok_or_else(|| bad("OK without bytes="))?;
        if let Some(truncated) = field(&fields, "truncated_records") {
            Ok(Response::Compacted {
                seq,
                bytes,
                truncated_records: parse_u64(truncated).ok_or_else(|| bad("truncated_records="))?,
                removed_snapshots: field(&fields, "removed_snapshots")
                    .and_then(parse_usize)
                    .ok_or_else(|| bad("removed_snapshots="))?,
            })
        } else {
            Ok(Response::Snapshotted { seq, bytes })
        }
    }
}

impl std::fmt::Display for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

fn kv_fields<'a>(toks: &[&'a str]) -> Result<Vec<(&'a str, &'a str)>, ResponseError> {
    toks.iter()
        .map(|t| {
            t.split_once('=')
                .ok_or_else(|| ResponseError(format!("field without '=': {t:?}")))
        })
        .collect()
}

fn field<'a>(fields: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

fn parse_usize(v: &str) -> Option<usize> {
    v.parse().ok()
}

fn parse_u64(v: &str) -> Option<u64> {
    v.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_roundtrip(line: &str) -> Request {
        let req = Request::parse(line).unwrap();
        assert_eq!(req.render(), line, "canonical line must round-trip");
        assert_eq!(Request::parse(&req.render()), Ok(req.clone()));
        req
    }

    #[test]
    fn canonical_requests_roundtrip() {
        req_roundtrip("SAME a b");
        req_roundtrip("DUPS e1");
        req_roundtrip("REP e1");
        req_roundtrip("EXPLAIN a b");
        req_roundtrip(r#"INSERT a:t p "v" ; b:t q c:t"#);
        req_roundtrip(r#"DELETE a:t p "v""#);
        req_roundtrip(r#"ADDKEY key "Q" t(x) { x -p-> v*; }"#);
        req_roundtrip("DROPKEY Q");
        req_roundtrip("TRACE DUPS e1");
        req_roundtrip(r#"TRACE INSERT a:t p "v""#);
        req_roundtrip("TRACES");
        req_roundtrip("TRACES 5");
        req_roundtrip("SHARDCHASE 0");
        req_roundtrip("SHARDCHASE 42");
        req_roundtrip("MERGES 7");
        req_roundtrip(r#"MERGES 3 a1 a2 "Q2""#);
        req_roundtrip(r#"MERGES 3 a1 a2 "Q2" ; art1 art2 "Q with ; spaces""#);
        for bare in [
            "KEYS", "SNAPSHOT", "COMPACT", "STATS", "METRICS", "PING", "HELP",
        ] {
            req_roundtrip(bare);
        }
    }

    #[test]
    fn trace_wraps_any_verb_but_not_itself() {
        assert_eq!(
            Request::parse("trace same a b"),
            Ok(Request::Trace {
                inner: Box::new(Request::Same {
                    a: "a".into(),
                    b: "b".into()
                })
            })
        );
        assert!(!Request::parse("TRACE SAME a b").unwrap().is_update());
        assert!(Request::parse(r#"TRACE DELETE a:t p "v""#)
            .unwrap()
            .is_update());
        // Nesting is rejected, and so is an empty wrap.
        assert_eq!(
            Request::parse("TRACE TRACE SAME a b"),
            Err(RequestError::Usage(usage::TRACE))
        );
        assert_eq!(
            Request::parse("TRACE TRACES"),
            Err(RequestError::Usage(usage::TRACE))
        );
        assert_eq!(
            Request::parse("TRACE"),
            Err(RequestError::Usage(usage::TRACE))
        );
        // A malformed inner verb keeps its own usage diagnosis.
        assert_eq!(
            Request::parse("TRACE SAME a"),
            Err(RequestError::Usage(usage::SAME))
        );
        assert_eq!(
            Request::parse("TRACES five"),
            Err(RequestError::Usage(usage::TRACES))
        );
        assert_eq!(
            Request::parse("TRACES 5 6"),
            Err(RequestError::Usage(usage::TRACES))
        );
    }

    #[test]
    fn verbs_are_case_insensitive_and_whitespace_tolerant() {
        assert_eq!(
            Request::parse("  same a   b "),
            Ok(Request::Same {
                a: "a".into(),
                b: "b".into()
            })
        );
        assert_eq!(Request::parse("ping"), Ok(Request::Ping));
    }

    #[test]
    fn arity_mistakes_fail_with_uniform_usage() {
        for (line, usage) in [
            ("SAME a", usage::SAME),
            ("SAME a b c", usage::SAME),
            ("DUPS", usage::DUPS),
            ("DUPS a b", usage::DUPS),
            ("REP a b", usage::REP),
            ("EXPLAIN a", usage::EXPLAIN),
            ("EXPLAIN a b c", usage::EXPLAIN),
            ("INSERT", usage::INSERT),
            ("DELETE", usage::DELETE),
            ("ADDKEY", usage::ADDKEY),
            ("DROPKEY", usage::DROPKEY),
            ("KEYS now", usage::KEYS),
            ("SNAPSHOT now", usage::SNAPSHOT),
            ("COMPACT hard", usage::COMPACT),
            ("STATS all", usage::STATS),
            ("METRICS now", usage::METRICS),
            ("PING twice", usage::PING),
            ("HELP me", usage::HELP),
            ("SHARDCHASE", usage::SHARDCHASE),
            ("SHARDCHASE x", usage::SHARDCHASE),
            ("SHARDCHASE 1 2", usage::SHARDCHASE),
            ("MERGES", usage::MERGES),
            ("MERGES x", usage::MERGES),
            ("MERGES 1 a", usage::MERGES),
            ("MERGES 1 a b key", usage::MERGES),
            (r#"MERGES 1 a b "k" ;"#, usage::MERGES),
            (r#"MERGES 1 a b "k" junk"#, usage::MERGES),
        ] {
            assert_eq!(
                Request::parse(line),
                Err(RequestError::Usage(usage)),
                "{line:?}"
            );
        }
        assert_eq!(Request::parse(""), Err(RequestError::Empty));
        assert_eq!(
            Request::parse("FROB x"),
            Err(RequestError::UnknownVerb("FROB".into()))
        );
        assert_eq!(
            RequestError::Usage(usage::SAME).to_string(),
            "usage: SAME <a> <b>"
        );
    }

    fn resp_roundtrip(resp: Response) {
        let text = resp.render();
        assert_eq!(Response::parse(&text), Ok(resp.clone()), "{text}");
    }

    #[test]
    fn responses_roundtrip() {
        resp_roundtrip(Response::Pong);
        resp_roundtrip(Response::Bye);
        resp_roundtrip(Response::Same {
            a: "a".into(),
            b: "b".into(),
            rep: "a".into(),
        });
        resp_roundtrip(Response::NotSame {
            a: "a".into(),
            b: "b".into(),
        });
        resp_roundtrip(Response::Dups {
            entity: "e".into(),
            others: vec!["f".into(), "g".into()],
        });
        // The server never emits an empty cluster, but the lossless
        // contract covers every value a typed embedder can build.
        resp_roundtrip(Response::Dups {
            entity: "e".into(),
            others: Vec::new(),
        });
        resp_roundtrip(Response::NoDups { entity: "e".into() });
        resp_roundtrip(Response::Rep { rep: "e".into() });
        resp_roundtrip(Response::Proof {
            a: "a".into(),
            b: "b".into(),
            steps: vec![
                ProofLine {
                    a: "a".into(),
                    b: "b".into(),
                    key: "Q with spaces".into(),
                },
                ProofLine {
                    a: "c".into(),
                    b: "d".into(),
                    key: "Q2".into(),
                },
            ],
        });
        resp_roundtrip(Response::NoProof {
            a: "a".into(),
            b: "b".into(),
        });
        resp_roundtrip(Response::Updated(AdvanceReport {
            mode: AdvanceMode::Incremental,
            triples: 2,
            touched: 1,
            new_entities: 0,
            new_pairs: 4,
            rounds: 2,
            iso_checks: 7,
        }));
        resp_roundtrip(Response::Snapshotted { seq: 3, bytes: 999 });
        resp_roundtrip(Response::Compacted {
            seq: 4,
            bytes: 1000,
            truncated_records: 7,
            removed_snapshots: 2,
        });
        resp_roundtrip(Response::KeyAdded(KeyChange {
            name: "Q \"odd\" name".into(),
            keys: 3,
            active_keys: 2,
            key_epoch: 1,
            identified_pairs: 9,
            rounds: 2,
            iso_checks: 41,
        }));
        resp_roundtrip(Response::KeyDropped(KeyChange {
            name: "Q2".into(),
            keys: 2,
            active_keys: 2,
            key_epoch: 2,
            identified_pairs: 5,
            rounds: 1,
            iso_checks: 3,
        }));
        resp_roundtrip(Response::KeyList {
            active: 1,
            epoch: 3,
            keys: vec![r#"key "Q2" album(x) { x -name_of-> n*; }"#.into()],
        });
        resp_roundtrip(Response::Stats(vec![
            ("engine".into(), "incremental".into()),
            ("entities".into(), "6".into()),
        ]));
        let reg = gk_metrics::Registry::new();
        reg.counter("gk_demo_total", "Demo counter.").add(7);
        reg.histogram("gk_demo_micros", "Demo latency.").observe(12);
        resp_roundtrip(Response::Metrics(reg.snapshot()));
        resp_roundtrip(Response::Metrics(Vec::new()));
        resp_roundtrip(Response::Help(
            "commands:\n  SAME <a> <b>          are <a> and <b> identified?".into(),
        ));
        resp_roundtrip(Response::Err("unknown entity \"ghost\"".into()));
        let tree = TraceNode {
            name: "dups".into(),
            micros: 120,
            counters: vec![("candidates".into(), 3)],
            children: vec![TraceNode {
                name: "analyze".into(),
                micros: 100,
                counters: vec![("iso_checks".into(), 1)],
                children: vec![],
            }],
        };
        resp_roundtrip(Response::Trace {
            id: 7,
            root: tree.clone(),
            answer: Box::new(Response::Dups {
                entity: "a1".into(),
                others: vec!["a2".into()],
            }),
        });
        // A traced multi-line answer survives the ANSWER split too.
        resp_roundtrip(Response::Trace {
            id: 8,
            root: tree.clone(),
            answer: Box::new(Response::Proof {
                a: "a".into(),
                b: "b".into(),
                steps: vec![ProofLine {
                    a: "a".into(),
                    b: "b".into(),
                    key: "Q2".into(),
                }],
            }),
        });
        resp_roundtrip(Response::Traces {
            captured: 9,
            traces: vec![
                RecordedTrace {
                    id: 8,
                    verb: "trace".into(),
                    slow: true,
                    root: tree.clone(),
                },
                RecordedTrace {
                    id: 7,
                    verb: "ping".into(),
                    slow: false,
                    root: TraceNode {
                        name: "ping".into(),
                        micros: 1,
                        counters: vec![],
                        children: vec![],
                    },
                },
            ],
        });
        resp_roundtrip(Response::Traces {
            captured: 0,
            traces: Vec::new(),
        });
        resp_roundtrip(Response::MergeLog {
            next: 0,
            merges: Vec::new(),
        });
        resp_roundtrip(Response::MergeLog {
            next: 9,
            merges: vec![
                MergeEntry {
                    a: "alb1".into(),
                    b: "alb2".into(),
                    key: "Q2".into(),
                },
                MergeEntry {
                    a: "art1".into(),
                    b: "art2".into(),
                    key: "Q \"odd\" ; name".into(),
                },
            ],
        });
    }

    #[test]
    fn merges_is_an_update_and_shardchase_is_not() {
        assert!(Request::parse(r#"MERGES 0 a b "k""#).unwrap().is_update());
        assert!(Request::parse("MERGES 4").unwrap().is_update());
        assert!(!Request::parse("SHARDCHASE 0").unwrap().is_update());
        assert_eq!(
            Request::parse(r#"MERGES 2 a b "k" ; c d "k2""#),
            Ok(Request::Merges {
                cursor: 2,
                merges: vec![
                    MergeEntry {
                        a: "a".into(),
                        b: "b".into(),
                        key: "k".into()
                    },
                    MergeEntry {
                        a: "c".into(),
                        b: "d".into(),
                        key: "k2".into()
                    },
                ],
            })
        );
    }

    #[test]
    fn malformed_trace_responses_do_not_parse() {
        assert!(Response::parse("TRACE id=1 spans=1").is_err(), "no tree");
        assert!(
            Response::parse("TRACE id=1 spans=1\nspan=x micros=1\nANSWER").is_err(),
            "empty answer"
        );
        assert!(
            Response::parse("TRACE id=1 spans=2\nspan=x micros=1\nANSWER\nPONG").is_err(),
            "span count mismatch"
        );
        assert!(
            Response::parse("TRACES n=1 captured=1").is_err(),
            "count mismatch"
        );
        assert!(
            Response::parse(
                "TRACES n=1 captured=1\ntrace id=1 verb=ping slow=maybe\n  span=x micros=1"
            )
            .is_err(),
            "bad slow flag"
        );
    }

    #[test]
    fn foreign_text_does_not_parse_as_a_response() {
        assert!(Response::parse("HELLO world").is_err());
        assert!(Response::parse("").is_err());
        assert!(Response::parse("YES a b").is_err());
    }
}
