//! # gk-server — a resident entity-resolution service
//!
//! The batch algorithms of *Keys for Graphs* compute `chase(G, Σ)` once and
//! exit. This crate keeps the terminal `Eq` **resident**: load a graph and a
//! key set, chase at startup, then answer identity queries in microseconds
//! while accepting streaming triple inserts.
//!
//! The serving layer leans on two properties the core crates already
//! establish:
//!
//! * **monotonicity** — keys are positive patterns, so insert-only updates
//!   can only grow `Eq`; [`gk_core::chase_incremental`] advances the
//!   previous terminal relation by waking only entities within radius `d`
//!   of the touched nodes. Deletions are not monotone and fall back to a
//!   documented full re-chase.
//! * **stable entity ids** — the delta overlay
//!   ([`gk_graph::OverlayGraph`]) appends entities with fresh, larger ids
//!   and never moves existing ones (compaction preserves them too), so
//!   the previous `Eq` remains meaningful on the extended graph — and the
//!   write path is O(batch), not O(|G|).
//!
//! Four layers, separable for embedding:
//!
//! | layer | type | role |
//! |-------|------|------|
//! | [`EmIndex`] | `index` | snapshot-swapped `OverlayGraph` (shared base CSR + O(batch) delta) + a versioned Σ ([`EmIndex::add_keys`] / [`EmIndex::drop_key`] evolve it at runtime) + `EqRel` with rep map and duplicate clusters; threshold-compacted; optional write-through durability (`gk-store` WAL + snapshots, crash recovery) |
//! | [`Request`] / [`Response`] | `proto` | the typed request/response surface with a lossless `parse`/`render` pair |
//! | [`Server`] | `protocol` | [`Server::execute`] maps requests (`SAME`, `DUPS`, `EXPLAIN`, `INSERT`, `DELETE`, `ADDKEY`, `DROPKEY`, `KEYS`, `SNAPSHOT`, `COMPACT`, `STATS`, `TRACE`, `TRACES`) to responses; [`Server::handle`] is the line-protocol shim |
//! | [`serve`] / [`serve_with`] | `net` + `event_loop` | TCP framing: a nonblocking epoll reactor + worker pool by default ([`NetModel::Epoll`]), or the legacy blocking thread-per-connection pool ([`NetModel::Threaded`]) |
//!
//! ## In-process use
//!
//! ```
//! use gk_core::KeySet;
//! use gk_graph::parse_graph;
//! use gk_server::Server;
//!
//! let g = parse_graph(r#"
//!     alb1:album name_of "Anthology 2"
//!     alb1:album release_year "1996"
//!     alb2:album name_of "Anthology 2"
//!     alb2:album release_year "1996"
//!     alb3:album name_of "Let It Be"
//! "#).unwrap();
//! let keys = KeySet::parse(
//!     r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#,
//! ).unwrap();
//!
//! let server = Server::new(g, keys);
//! assert!(server.handle("SAME alb1 alb2").starts_with("YES"));
//! assert!(server.handle("SAME alb1 alb3").starts_with("NO"));
//!
//! // A streamed insert turns alb3 into a duplicate of the pair.
//! let r = server.handle(r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#);
//! assert!(r.contains("mode=incremental"), "{r}");
//! assert!(server.handle("SAME alb1 alb3").starts_with("YES"));
//! ```

#![warn(missing_docs)]

mod event_loop;
mod http;
mod index;
mod net;
mod proto;
mod protocol;

pub use http::{serve_metrics_http, MetricsHandle};
pub use index::{
    AdvanceMode, AdvanceReport, EmIndex, IndexState, IndexStats, KeyChange, RecoveryReport,
    StepLog, DEFAULT_COMPACT_THRESHOLD,
};
pub use net::{
    request, request_with_timeout, serve, serve_with, NetModel, ServeHandle, ServeOptions,
    MAX_REQUEST_LINE,
};
pub use proto::{
    usage, MergeEntry, ProofLine, RecordedTrace, Request, RequestError, Response, ResponseError,
};
pub use protocol::{Server, PROTOCOL_HELP};
// Metrics types, re-exported so embedders can build a disabled registry
// (zero-cost baseline) or walk a `Response::Metrics` payload — or a
// `Response::Trace` span tree — without depending on gk-metrics directly.
pub use gk_metrics::{render_exposition, MetricSnapshot, MetricValue, Registry, TraceNode};
// Durability configuration, re-exported so embedders and the CLI need not
// depend on gk-store directly.
pub use gk_store::{Durability, FsyncMode};

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::KeySet;
    use gk_graph::{parse_graph, parse_triple_specs, GraphView};
    use std::sync::Arc;

    const KEYS: &str = r#"
        key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
        key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
    "#;

    const G: &str = r#"
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb1:album  recorded_by   art1:artist
        art1:artist name_of       "The Beatles"
        alb2:album  name_of       "Anthology 2"
        alb2:album  release_year  "1996"
        alb2:album  recorded_by   art2:artist
        art2:artist name_of       "The Beatles"
        alb3:album  name_of       "Abbey Road"
        alb3:album  recorded_by   art3:artist
        art3:artist name_of       "The Beatles"
    "#;

    fn server() -> Server {
        Server::new(parse_graph(G).unwrap(), KeySet::parse(KEYS).unwrap())
    }

    #[test]
    fn startup_chase_resolves_planted_duplicates() {
        let s = server();
        // Q2 identifies the albums; Q3 cascades to their artists.
        assert!(s.handle("SAME alb1 alb2").starts_with("YES"));
        assert!(s.handle("SAME art1 art2").starts_with("YES"));
        assert!(s.handle("SAME alb1 alb3").starts_with("NO"));
        assert!(s.handle("SAME art1 art3").starts_with("NO"));
    }

    #[test]
    fn dups_and_rep_use_canonical_representative() {
        let s = server();
        assert_eq!(s.handle("DUPS alb1"), "DUPS alb1: alb2");
        assert_eq!(s.handle("DUPS alb2"), "DUPS alb2: alb1");
        assert!(s.handle("DUPS alb3").starts_with("NONE"));
        // alb1 has the smaller id: it is the canonical rep of both.
        assert_eq!(s.handle("REP alb2"), "REP alb1");
        assert_eq!(s.handle("REP alb1"), "REP alb1");
    }

    #[test]
    fn explain_returns_verified_proof() {
        let s = server();
        let p = s.handle("EXPLAIN art1 art2");
        assert!(p.starts_with("PROOF art1 <=> art2"), "{p}");
        assert!(p.contains("verified"));
        assert!(p.contains("by Q3"), "artist merge must cite Q3: {p}");
        assert!(s.handle("EXPLAIN alb1 alb3").starts_with("NOPROOF"));
    }

    #[test]
    fn insert_advances_incrementally_and_cascades() {
        let s = server();
        // Give alb3 the duplicate name+year: Q2 merges the albums, and the
        // recursive Q3 must then merge art3 into the artist cluster.
        let r =
            s.handle(r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#);
        assert!(r.starts_with("OK mode=incremental"), "{r}");
        assert!(s.handle("SAME alb1 alb3").starts_with("YES"));
        assert!(s.handle("SAME art1 art3").starts_with("YES"), "Q3 cascade");
        let stats = s.handle("STATS");
        assert!(stats.contains("incremental_advances=1"), "{stats}");
        assert!(stats.contains("full_rechases=0"), "{stats}");
    }

    #[test]
    fn insert_of_new_entity_is_queryable() {
        let s = server();
        let r =
            s.handle(r#"INSERT alb9:album name_of "Anthology 2" ; alb9:album release_year "1996""#);
        assert!(r.contains("new_entities=1"), "{r}");
        assert!(s.handle("SAME alb9 alb1").starts_with("YES"));
        assert_eq!(s.handle("REP alb9"), "REP alb1");
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let s = server();
        let r = s.handle(r#"INSERT alb1:album name_of "Anthology 2""#);
        assert!(r.contains("mode=noop"), "{r}");
        let stats = s.handle("STATS");
        assert!(stats.contains("noops=1"), "{stats}");
        assert!(
            stats.contains("version=0"),
            "noop must not bump the version: {stats}"
        );
    }

    #[test]
    fn type_clash_is_rejected_without_state_change() {
        let s = server();
        let r = s.handle(r#"INSERT alb1:person name_of "X""#);
        assert!(r.starts_with("ERR"), "{r}");
        assert!(r.contains("type"), "{r}");
        // Batch-internal clash, including against a new entity.
        let r2 = s.handle(r#"INSERT n1:album name_of "X" ; n1:person name_of "Y""#);
        assert!(r2.starts_with("ERR"), "{r2}");
        let stats = s.handle("STATS");
        assert!(stats.contains("version=0"), "{stats}");
        assert!(
            s.handle("SAME alb1 alb2").starts_with("YES"),
            "old state intact"
        );
    }

    #[test]
    fn delete_falls_back_to_full_rechase() {
        let s = server();
        let r = s.handle(r#"DELETE alb2:album release_year "1996""#);
        assert!(r.starts_with("OK mode=full-rechase"), "{r}");
        // The Q2 witness is gone; the albums (and hence artists) split.
        assert!(
            s.handle("SAME alb1 alb2").starts_with("NO"),
            "merge must be retracted"
        );
        assert!(s.handle("SAME art1 art2").starts_with("NO"));
        let stats = s.handle("STATS");
        assert!(stats.contains("full_rechases=1"), "{stats}");
    }

    #[test]
    fn delete_of_missing_triple_errors() {
        let s = server();
        assert!(s
            .handle(r#"DELETE alb1:album name_of "Nope""#)
            .starts_with("ERR"));
        assert!(s
            .handle(r#"DELETE ghost:album name_of "X""#)
            .starts_with("ERR"));
    }

    #[test]
    fn delete_validates_type_annotations_like_insert() {
        let s = server();
        let r = s.handle(r#"DELETE alb1:person name_of "Anthology 2""#);
        assert!(r.starts_with("ERR"), "{r}");
        assert!(r.contains("type"), "{r}");
        let stats = s.handle("STATS");
        assert!(
            stats.contains("full_rechases=0"),
            "mis-typed delete must not re-chase: {stats}"
        );
    }

    #[test]
    fn semicolons_inside_quoted_values_are_not_batch_separators() {
        let s = server();
        let r = s.handle(r#"INSERT g1:genre name_of "Rock; Roll""#);
        assert!(r.starts_with("OK"), "{r}");
        let snap = s.index().snapshot();
        assert!(
            snap.graph.value("Rock; Roll").is_some(),
            "value kept its semicolon"
        );
        // And a batch that mixes a quoted ';' with a real separator.
        let r2 = s.handle(r#"INSERT g2:genre name_of "A;B" ; g2:genre note "plain""#);
        assert!(r2.starts_with("OK"), "{r2}");
        assert!(s.index().snapshot().graph.entity_named("g2").is_some());
    }

    #[test]
    fn stop_returns_even_with_an_idle_connection_open() {
        use std::io::Write as _;
        let s = Arc::new(server());
        let handle = serve(Arc::clone(&s), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr();
        // A client that connects, sends nothing, and stays open.
        let mut idle = std::net::TcpStream::connect(addr).unwrap();
        let _ = idle.write_all(b""); // connected, no request
        let t0 = std::time::Instant::now();
        handle.stop();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "stop() must not hang on idle connections"
        );
        drop(idle);
    }

    #[test]
    fn engine_knob_changes_update_path_not_answers() {
        use gk_core::ChaseEngine;
        let g = || parse_graph(G).unwrap();
        let ks = || KeySet::parse(KEYS).unwrap();
        let insert = r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#;

        // Reference: every insert is a full re-chase.
        let r = Server::with_engine(g(), ks(), ChaseEngine::Reference);
        assert!(r.handle(insert).contains("mode=full-rechase"));
        assert!(r.handle("SAME alb1 alb3").starts_with("YES"));
        let stats = r.handle("STATS");
        assert!(stats.contains("engine=reference"), "{stats}");
        assert!(stats.contains("full_rechases=1"), "{stats}");

        // Parallel: inserts still ride the delta chase; full chases (the
        // startup one here) run on worker threads.
        let p = Server::with_engine(g(), ks(), ChaseEngine::Parallel { threads: 2 });
        assert!(p.handle(insert).contains("mode=incremental"));
        assert!(p.handle("SAME alb1 alb3").starts_with("YES"));
        assert!(p.handle("SAME art1 art3").starts_with("YES"));
        let stats = p.handle("STATS");
        assert!(stats.contains("engine=parallel"), "{stats}");
        assert!(stats.contains("threads=2"), "{stats}");

        // All engines agree with the default on every query.
        let d = server();
        assert!(d.handle(insert).starts_with("OK"));
        for q in [
            "SAME alb1 alb2",
            "DUPS alb1",
            "REP alb2",
            "EXPLAIN art1 art2",
        ] {
            assert_eq!(d.handle(q), p.handle(q), "{q}");
        }
    }

    #[test]
    fn parallel_engine_rechases_deletions_on_threads() {
        use gk_core::ChaseEngine;
        let s = Server::with_engine(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::Parallel { threads: 4 },
        );
        let r = s.handle(r#"DELETE alb2:album release_year "1996""#);
        assert!(r.starts_with("OK mode=full-rechase"), "{r}");
        assert!(s.handle("SAME alb1 alb2").starts_with("NO"));
        let stats = s.handle("STATS");
        assert!(stats.contains("full_rechases=1"), "{stats}");
        assert!(
            stats.contains("update_rounds="),
            "rounds must be surfaced: {stats}"
        );
    }

    #[test]
    fn protocol_errors_are_graceful() {
        let s = server();
        assert!(s.handle("").starts_with("ERR"));
        assert!(s.handle("FROB x").starts_with("ERR"));
        assert!(s.handle("SAME alb1").starts_with("ERR"));
        assert!(s.handle("SAME ghost alb1").starts_with("ERR"));
        assert!(s.handle("INSERT").starts_with("ERR"));
        assert!(s.handle("INSERT not-a-triple").starts_with("ERR"));
        assert_eq!(s.handle("PING"), "PONG");
        assert!(s.handle("HELP").contains("SAME"));
    }

    #[test]
    fn snapshots_are_immutable_across_updates() {
        let s = server();
        let before = s.index().snapshot();
        s.handle(r#"INSERT alb3:album release_year "1996" ; alb3:album name_of "Anthology 2""#);
        let after = s.index().snapshot();
        // The old snapshot still answers from the pre-update world.
        let alb1 = before.graph.entity_named("alb1").unwrap();
        let alb3 = before.graph.entity_named("alb3").unwrap();
        assert!(!before.same(alb1, alb3));
        assert!(after.same(
            after.graph.entity_named("alb1").unwrap(),
            after.graph.entity_named("alb3").unwrap()
        ));
        assert_eq!(before.version + 1, after.version);
    }

    #[test]
    fn index_insert_api_reports_delta() {
        let idx = EmIndex::new(parse_graph(G).unwrap(), KeySet::parse(KEYS).unwrap());
        let specs = parse_triple_specs(
            r#"
            alb3:album name_of "Anthology 2"
            alb3:album release_year "1996"
            "#,
        )
        .unwrap();
        let r = idx.insert(&specs).unwrap();
        assert_eq!(r.mode, AdvanceMode::Incremental);
        assert_eq!(r.new_entities, 0);
        // alb3 joins {alb1, alb2} (+2 pairs) and art3 joins {art1, art2}
        // (+2 pairs): the closure grows by 4 pairs.
        assert_eq!(r.new_pairs, 4);
        assert!(r.rounds >= 2, "recursive cascade needs a second round");
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gk-server-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn delete_batch_coalesces_into_one_rechase() {
        let s = server();
        // Two deletions in one batch: both Q2 witnesses of the album pair
        // vanish, and the server re-chases exactly once.
        let r = s.handle(
            r#"DELETE alb2:album release_year "1996" ; DELETE alb2:album name_of "Anthology 2""#,
        );
        // (DELETE inside the batch text is not a verb — craft a clean one.)
        assert!(r.starts_with("ERR"), "{r}");
        let r =
            s.handle(r#"DELETE alb2:album release_year "1996" ; alb2:album name_of "Anthology 2""#);
        assert!(r.starts_with("OK mode=full-rechase"), "{r}");
        assert!(r.contains("triples=2"), "{r}");
        assert!(s.handle("SAME alb1 alb2").starts_with("NO"));
        let stats = s.handle("STATS");
        assert!(
            stats.contains("full_rechases=1"),
            "one re-chase for the whole batch: {stats}"
        );
    }

    #[test]
    fn delete_batch_is_atomic_on_errors() {
        let s = server();
        // Second triple unknown: nothing is deleted, no re-chase runs.
        let r = s.handle(r#"DELETE alb2:album release_year "1996" ; alb2:album name_of "Nope""#);
        assert!(r.starts_with("ERR"), "{r}");
        assert!(s.handle("SAME alb1 alb2").starts_with("YES"));
        let stats = s.handle("STATS");
        assert!(stats.contains("full_rechases=0"), "{stats}");
        assert!(stats.contains("version=0"), "{stats}");
    }

    #[test]
    fn empty_delete_batch_is_noop_without_version_bump() {
        // The no-op fix: a delete batch whose doomed set is empty must
        // short-circuit — no re-chase, no version bump, a `noop` stat.
        let s = server();
        let r = s.index().delete(&[]).unwrap();
        assert_eq!(r.mode, AdvanceMode::NoOp);
        assert_eq!(r.new_pairs, 0);
        let stats = s.handle("STATS");
        assert!(stats.contains("version=0"), "{stats}");
        assert!(stats.contains("full_rechases=0"), "{stats}");
        assert!(stats.contains("noops=1"), "{stats}");
        // The protocol still rejects an empty DELETE line outright.
        assert!(s.handle("DELETE").starts_with("ERR"));
    }

    #[test]
    fn threshold_compaction_folds_delta_into_new_base() {
        let g = parse_graph(G).unwrap();
        let ks = KeySet::parse(KEYS).unwrap();
        let mut idx = EmIndex::new(g, ks);
        idx.set_compact_threshold(4);
        let base_before = idx.snapshot().graph.base_triples();
        for i in 0..6 {
            let specs = parse_triple_specs(&format!("n{i}:album name_of \"unique {i}\"")).unwrap();
            idx.insert(&specs).unwrap();
        }
        assert!(
            idx.stats.compactions.get() >= 1,
            "delta must have crossed the threshold"
        );
        let snap = idx.snapshot();
        assert!(
            snap.graph.base_triples() > base_before,
            "base absorbed delta"
        );
        assert!(snap.graph.epoch() >= 1);
        // Answers survive the epoch bump: entities and Eq intact.
        let a = snap.graph.entity_named("alb1").unwrap();
        let b = snap.graph.entity_named("alb2").unwrap();
        assert!(snap.same(a, b));
        assert!(snap.graph.entity_named("n5").is_some());
    }

    #[test]
    fn overlay_answers_match_rebuild_after_mixed_updates() {
        // Overlay vs rebuild oracle at the index level: stream inserts and
        // deletes, then compare every cluster against a fresh index built
        // from the materialized graph.
        let s = server();
        s.handle(r#"INSERT alb3:album release_year "1996" ; alb3:album name_of "Anthology 2""#);
        s.handle(r#"DELETE alb2:album release_year "1996""#);
        s.handle(r#"INSERT alb4:album name_of "Abbey Road" ; alb4:album release_year "1969""#);
        let snap = s.index().snapshot();
        let frozen = snap.graph.materialize();
        let fresh = EmIndex::new(frozen, KeySet::parse(KEYS).unwrap());
        let fresh_snap = fresh.snapshot();
        assert_eq!(snap.eq.classes(), fresh_snap.eq.classes());
        for e in gk_graph::GraphView::entities(&snap.graph) {
            assert_eq!(snap.rep(e), fresh_snap.rep(e));
        }
    }

    #[test]
    fn compact_verb_folds_overlay_and_reports_in_stats() {
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("compact-overlay"));
        let (s, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        s.handle(r#"INSERT alb9:album name_of "Anthology 2" ; alb9:album release_year "1996""#);
        let stats = s.handle("STATS");
        assert!(stats.contains("delta_triples=2"), "{stats}");
        assert!(s.handle("COMPACT").starts_with("OK"), "compact");
        let stats = s.handle("STATS");
        assert!(stats.contains("delta_triples=0"), "{stats}");
        assert!(stats.contains("tombstones=0"), "{stats}");
        assert!(stats.contains("compactions=1"), "{stats}");
        // Same logical state after the fold.
        assert!(s.handle("SAME alb1 alb9").starts_with("YES"));
    }

    #[test]
    fn snapshot_and_compact_require_durability() {
        let s = server();
        assert!(s.handle("SNAPSHOT").starts_with("ERR"));
        assert!(s.handle("COMPACT").starts_with("ERR"));
        let stats = s.handle("STATS");
        assert!(stats.contains("durability=off"), "{stats}");
        assert!(stats.contains("wal_records=0"), "{stats}");
        assert!(stats.contains("snapshot_seq=none"), "{stats}");
    }

    #[test]
    fn accumulated_step_log_regenerates_the_eq() {
        let s = server();
        for i in 0..50 {
            let r = s.handle(&format!(r#"INSERT x{i}:album name_of "unique {i}""#));
            assert!(r.starts_with("OK"), "{r}");
        }
        let snap = s.index().snapshot();
        let flat = snap.steps().to_vec();
        assert_eq!(flat.len(), snap.steps().len());
        assert_eq!(
            flat.len(),
            snap.eq.merges().len(),
            "log holds exactly the Eq's merge history"
        );
        let mut eq = gk_core::EqRel::identity(snap.graph.num_entities());
        for st in &flat {
            eq.union(st.pair.0, st.pair.1);
        }
        assert_eq!(eq.classes(), snap.eq.classes());
    }

    #[test]
    fn durable_restart_recovers_identical_answers() {
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("restart"));
        let queries = [
            "SAME alb1 alb2",
            "SAME alb1 alb3",
            "DUPS alb1",
            "REP alb2",
            "EXPLAIN art1 art2",
        ];

        let (s1, rep) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        assert!(!rep.recovered, "fresh dir bootstraps");
        let ins = s1
            .handle(r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#);
        assert!(ins.starts_with("OK"), "{ins}");
        let before: Vec<String> = queries.iter().map(|q| s1.handle(q)).collect();
        drop(s1);

        // Restart: the WAL suffix replays through the incremental chase on
        // top of the bootstrap snapshot — no full chase.
        let (s2, rep) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        assert!(rep.recovered);
        assert_eq!(rep.snapshot_seq, Some(0));
        assert_eq!(rep.wal_replayed, 1);
        assert_eq!(rep.replay_mode, AdvanceMode::Incremental);
        let after: Vec<String> = queries.iter().map(|q| s2.handle(q)).collect();
        assert_eq!(before, after, "answers must be byte-identical");
        let stats = s2.handle("STATS");
        assert!(stats.contains("version=1"), "{stats}");
        assert!(stats.contains("wal_records=1"), "{stats}");
    }

    #[test]
    fn durable_snapshot_compact_cycle() {
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("compact"));
        let (s, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        s.handle(r#"INSERT alb9:album name_of "Anthology 2" ; alb9:album release_year "1996""#);
        let snap = s.handle("SNAPSHOT");
        assert!(snap.starts_with("OK snapshot_seq=1"), "{snap}");
        s.handle(r#"DELETE alb9:album release_year "1996""#);
        let comp = s.handle("COMPACT");
        assert!(comp.starts_with("OK snapshot_seq=2"), "{comp}");
        let stats = s.handle("STATS");
        assert!(stats.contains("wal_records=0"), "{stats}");
        assert!(stats.contains("snapshot_seq=2"), "{stats}");
        drop(s);

        // The compacted directory recovers with nothing to replay, and the
        // deletion's effect (alb9 split off again) persists.
        let (s2, rep) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        assert!(rep.recovered);
        assert_eq!(rep.snapshot_seq, Some(2));
        assert_eq!(rep.wal_replayed, 0);
        assert!(s2.handle("SAME alb1 alb9").starts_with("NO"));
        assert!(s2.handle("SAME alb1 alb2").starts_with("YES"));
    }

    #[test]
    fn duplicate_delete_specs_in_one_batch_replay_cleanly() {
        // Regression: an accepted DELETE batch naming the same triple
        // twice is deduped by the accept path and logged verbatim; replay
        // must tolerate the duplicate instead of bricking recovery.
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("dup-delete"));
        let (s, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        let r =
            s.handle(r#"DELETE alb2:album release_year "1996" ; alb2:album release_year "1996""#);
        assert!(r.starts_with("OK mode=full-rechase"), "{r}");
        assert!(s.handle("SAME alb1 alb2").starts_with("NO"));
        drop(s);

        let (s2, rep) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap_or_else(|e| panic!("duplicate-spec WAL record must replay: {e}"));
        assert!(rep.recovered);
        assert_eq!(rep.wal_replayed, 1);
        assert!(s2.handle("SAME alb1 alb2").starts_with("NO"));
    }

    #[test]
    fn compaction_remaps_step_attribution_when_keys_deactivate() {
        // Regression: a Const key loses its vocabulary when the only
        // triple carrying the constant is deleted; materialization prunes
        // the interner, the recompile drops the key, and every later
        // compiled index shifts. The step log kept across COMPACT must be
        // remapped, not left citing stale indices.
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let g = parse_graph(
            r#"
            special:album  tagged   "gold"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            "#,
        )
        .unwrap();
        // Key 0 cites the constant "gold"; key 1 does the identifying.
        let ks = KeySet::parse(
            r#"
            key "GOLD" album(x) { x -tagged-> "gold"; x -name_of-> n*; }
            key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
            "#,
        )
        .unwrap();
        let dur = Durability::in_dir(tmpdir("remap-steps"));
        let (s, _) = Server::with_durability(g, ks, ChaseEngine::default(), &dur).unwrap();
        {
            let snap = s.index().snapshot();
            assert_eq!(snap.compiled.keys.len(), 2, "both keys active");
            assert!(!snap.steps().is_empty(), "Q2 merged the albums");
        }
        // Delete the only "gold" triple, then COMPACT: the materialized
        // interner drops "gold" and the GOLD key deactivates.
        let r = s.handle(r#"DELETE special:album tagged "gold""#);
        assert!(r.starts_with("OK"), "{r}");
        assert!(s.handle("COMPACT").starts_with("OK"));
        let snap = s.index().snapshot();
        assert_eq!(snap.compiled.keys.len(), 1, "GOLD pruned at compaction");
        for st in snap.steps().to_vec() {
            assert!(
                st.key < snap.compiled.keys.len(),
                "step cites key index {} but only {} keys are active",
                st.key,
                snap.compiled.keys.len()
            );
            assert_eq!(snap.compiled.keys[st.key].name, "Q2");
        }
        assert!(s.handle("SAME alb1 alb2").starts_with("YES"));
    }

    #[test]
    fn snapshot_after_vocab_tombstone_restores_consistent_attribution() {
        // Regression: after deleting the only "gold" triple the GOLD key
        // stays active in memory (the overlay's base interner still holds
        // the constant) but compiles away against the materialized
        // snapshot graph. SNAPSHOT must remap the persisted step log to
        // the snapshot graph's compile, or the restarted index carries
        // steps citing out-of-range key indices.
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let g = parse_graph(
            r#"
            special:album  tagged   "gold"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            "#,
        )
        .unwrap();
        let ks = || {
            KeySet::parse(
                r#"
                key "GOLD" album(x) { x -tagged-> "gold"; x -name_of-> n*; }
                key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }
                "#,
            )
            .unwrap()
        };
        let dur = Durability::in_dir(tmpdir("snapshot-remap"));
        let (s, _) = Server::with_durability(g, ks(), ChaseEngine::default(), &dur).unwrap();
        let r = s.handle(r#"DELETE special:album tagged "gold""#);
        assert!(r.starts_with("OK"), "{r}");
        assert_eq!(
            s.index().snapshot().compiled.keys.len(),
            2,
            "GOLD still active in memory: its constant survives in the base interner"
        );
        assert!(s.handle("SNAPSHOT").starts_with("OK"));
        drop(s);

        let (idx, rep) = EmIndex::recover_durable(&dur, ChaseEngine::default())
            .unwrap()
            .expect("state persisted");
        assert!(rep.recovered);
        let snap = idx.snapshot();
        assert_eq!(snap.compiled.keys.len(), 1, "GOLD pruned by the snapshot");
        for st in snap.steps().to_vec() {
            assert!(
                st.key < snap.compiled.keys.len(),
                "recovered step cites key index {} of {} active keys",
                st.key,
                snap.compiled.keys.len()
            );
            assert_eq!(snap.compiled.keys[st.key].name, "Q2");
        }
        let a = snap.graph.entity_named("alb1").unwrap();
        let b = snap.graph.entity_named("alb2").unwrap();
        assert!(snap.same(a, b));
    }

    #[test]
    fn durable_rejects_mismatched_keys() {
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("keys-mismatch"));
        let (s, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        drop(s);
        let other = KeySet::parse(r#"key "Qx" album(x) { x -name_of-> n*; }"#).unwrap();
        let err =
            Server::with_durability(parse_graph(G).unwrap(), other, ChaseEngine::default(), &dur);
        assert!(err.is_err(), "mismatched Σ must not silently recover");
    }

    #[test]
    fn recover_durable_rebuilds_without_input_files() {
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("standalone"));
        assert!(
            EmIndex::recover_durable(&dur, ChaseEngine::default())
                .unwrap()
                .is_none(),
            "empty dir has no state"
        );
        let (s, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        s.handle(r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#);
        drop(s);
        // Keys and graph both come off disk.
        let (idx, rep) = EmIndex::recover_durable(&dur, ChaseEngine::default())
            .unwrap()
            .expect("state persisted");
        assert!(rep.recovered);
        assert_eq!(idx.keys().cardinality(), 2);
        let snap = idx.snapshot();
        let a = snap.graph.entity_named("alb1").unwrap();
        let b = snap.graph.entity_named("alb3").unwrap();
        assert!(snap.same(a, b));
    }

    #[test]
    fn execute_is_typed_end_to_end() {
        use crate::{Request, Response};
        let s = server();
        match s.execute(Request::Same {
            a: "alb1".into(),
            b: "alb2".into(),
        }) {
            Response::Same { a, b, rep } => {
                assert_eq!(
                    (a.as_str(), b.as_str(), rep.as_str()),
                    ("alb1", "alb2", "alb1")
                );
            }
            other => panic!("expected Same, got {other:?}"),
        }
        // handle() is exactly parse → execute → render.
        for line in [
            "SAME alb1 alb2",
            "DUPS alb1",
            "EXPLAIN art1 art2",
            "STATS",
            "HELP",
            "PING",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(s.handle(line), s.execute(req).render(), "{line}");
        }
    }

    #[test]
    fn malformed_requests_answer_uniform_usage_lines() {
        let s = server();
        for (line, want) in [
            ("SAME alb1", "ERR usage: SAME <a> <b>"),
            ("SAME a b c", "ERR usage: SAME <a> <b>"),
            ("DUPS", "ERR usage: DUPS <e>"),
            ("DUPS a b", "ERR usage: DUPS <e>"),
            ("REP a b", "ERR usage: REP <e>"),
            ("EXPLAIN a", "ERR usage: EXPLAIN <a> <b>"),
            ("STATS all", "ERR usage: STATS"),
            ("METRICS now", "ERR usage: METRICS"),
            ("PING twice", "ERR usage: PING"),
            ("HELP me", "ERR usage: HELP"),
            ("KEYS now", "ERR usage: KEYS"),
            ("SNAPSHOT x", "ERR usage: SNAPSHOT"),
            ("COMPACT x", "ERR usage: COMPACT"),
            (
                "INSERT",
                "ERR usage: INSERT <s:T> <p> <o> [; <s:T> <p> <o> ...]",
            ),
            (
                "DELETE",
                "ERR usage: DELETE <s:T> <p> <o> [; <s:T> <p> <o> ...]",
            ),
            ("DROPKEY", "ERR usage: DROPKEY <name>"),
            ("TRACE", "ERR usage: TRACE <verb ...>"),
            ("TRACE TRACE PING", "ERR usage: TRACE <verb ...>"),
            ("TRACES soon", "ERR usage: TRACES [n]"),
        ] {
            assert_eq!(s.handle(line), want, "{line:?}");
        }
        // Malformed lines never reach the index or the counters.
        let stats = s.handle("STATS");
        assert!(stats.contains("queries=0"), "{stats}");
        assert!(stats.contains("updates=0"), "{stats}");
        assert!(stats.contains("version=0"), "{stats}");
    }

    #[test]
    fn addkey_advances_incrementally_and_cascades() {
        let s = server();
        // All three artists share a name; only art1/art2 are merged (via
        // Q3 through the albums). A name-only artist key pulls art3 in.
        assert!(s.handle("SAME art1 art3").starts_with("NO"));
        let r = s.handle(r#"ADDKEY key "AN" artist(x) { x -name_of-> n*; }"#);
        assert!(r.starts_with("OK added key=\"AN\""), "{r}");
        assert!(r.contains("keys=3"), "{r}");
        assert!(r.contains("key_epoch=1"), "{r}");
        assert!(s.handle("SAME art1 art3").starts_with("YES"));
        let stats = s.handle("STATS");
        assert!(stats.contains("active_keys=3"), "{stats}");
        assert!(stats.contains("key_epoch=1"), "{stats}");
        assert!(stats.contains("version=1"), "{stats}");
        assert!(
            stats.contains("incremental_advances=1"),
            "ADDKEY is monotone, must ride the delta chase: {stats}"
        );
        assert!(stats.contains("full_rechases=0"), "{stats}");
        // The proof layer cites the new key.
        let p = s.handle("EXPLAIN art1 art3");
        assert!(p.starts_with("PROOF"), "{p}");
        assert!(p.contains("by AN"), "{p}");
    }

    #[test]
    fn addkey_rejects_duplicates_and_garbage_without_state_change() {
        let s = server();
        let r = s.handle(r#"ADDKEY key "Q2" album(x) { x -name_of-> n*; }"#);
        assert!(r.starts_with("ERR"), "{r}");
        assert!(r.contains("already exists"), "{r}");
        assert!(s.handle("ADDKEY this is not dsl").starts_with("ERR"));
        let two = r#"ADDKEY key "A" t(x) { x -p-> v*; } key "B" t(x) { x -q-> v*; }"#;
        let r = s.handle(two);
        assert!(r.starts_with("ERR"), "one key per request: {r}");
        let stats = s.handle("STATS");
        assert!(stats.contains("version=0"), "{stats}");
        assert!(stats.contains("key_epoch=0"), "{stats}");
    }

    #[test]
    fn dropkey_retracts_merges_with_one_full_rechase() {
        let s = server();
        assert!(s.handle("SAME art1 art2").starts_with("YES"));
        let r = s.handle("DROPKEY Q3");
        assert!(r.starts_with("OK dropped key=\"Q3\""), "{r}");
        assert!(r.contains("keys=1"), "{r}");
        assert!(r.contains("key_epoch=1"), "{r}");
        // The artist merges were certified by Q3; they must be gone, while
        // the album merge (Q2) survives.
        assert!(s.handle("SAME art1 art2").starts_with("NO"));
        assert!(s.handle("SAME alb1 alb2").starts_with("YES"));
        let stats = s.handle("STATS");
        assert!(stats.contains("full_rechases=1"), "{stats}");
        assert!(stats.contains("key_epoch=1"), "{stats}");
        // Unknown names error without touching state.
        let r = s.handle("DROPKEY Q9");
        assert!(r.starts_with("ERR"), "{r}");
        assert!(r.contains("no key named"), "{r}");
        let stats = s.handle("STATS");
        assert!(stats.contains("version=1"), "{stats}");
    }

    #[test]
    fn keys_listing_tracks_the_live_sigma_and_reparses() {
        let s = server();
        let listing = s.handle("KEYS");
        assert!(
            listing.starts_with("KEYS n=2 active=2 epoch=0"),
            "{listing}"
        );
        assert!(listing.contains("\n  key \"Q2\" album(x)"), "{listing}");
        s.handle(r#"ADDKEY key "AN" artist(x) { x -name_of-> n*; }"#);
        s.handle("DROPKEY Q2");
        let listing = s.handle("KEYS");
        assert!(
            listing.starts_with("KEYS n=2 active=2 epoch=2"),
            "{listing}"
        );
        assert!(!listing.contains("\"Q2\""), "{listing}");
        // Every listed line is valid DSL: the listing round-trips into a
        // key set equal to the served one.
        let dsl: String = listing
            .lines()
            .skip(1)
            .map(|l| format!("{}\n", l.trim()))
            .collect();
        let parsed = gk_core::parse_keys(&dsl).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            gk_core::write_keys(&parsed),
            gk_core::write_keys(s.index().keys().keys())
        );
    }

    #[test]
    fn key_changes_survive_restart_even_with_stale_key_file() {
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("addkey-restart"));
        let (s, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        let r = s.handle(r#"ADDKEY key "AN" artist(x) { x -name_of-> n*; }"#);
        assert!(r.starts_with("OK added"), "{r}");
        assert!(s.handle("SAME art1 art3").starts_with("YES"));
        let keys_before = s.handle("KEYS");
        let dups_before = s.handle("DUPS art1");
        drop(s);

        // Restart with the *original* key file: once Σ evolved at runtime
        // the persisted set is authoritative, so this must not error and
        // must serve the evolved Σ.
        let (s2, rep) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        assert!(rep.recovered);
        assert_eq!(s2.handle("KEYS"), keys_before, "KEYS byte-identical");
        assert_eq!(s2.handle("DUPS art1"), dups_before, "DUPS byte-identical");
        assert!(s2.handle("SAME art1 art3").starts_with("YES"));
        let stats = s2.handle("STATS");
        assert!(stats.contains("key_epoch=1"), "{stats}");
        drop(s2);

        // A snapshot cut *after* the key change carries the epoch, so the
        // relaxation also holds once the WAL no longer has the record.
        let (s3, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        assert!(s3.handle("SNAPSHOT").starts_with("OK"));
        assert!(s3.handle("COMPACT").starts_with("OK"));
        drop(s3);
        let (s4, rep) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        assert_eq!(rep.wal_replayed, 0, "compacted: keys live in the snapshot");
        assert_eq!(s4.handle("KEYS"), keys_before);
        assert!(s4.handle("SAME art1 art3").starts_with("YES"));
    }

    #[test]
    fn dropkey_then_crash_recovers_the_narrowed_sigma() {
        use gk_core::ChaseEngine;
        use gk_store::Durability;
        let dur = Durability::in_dir(tmpdir("dropkey-restart"));
        let (s, _) = Server::with_durability(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::default(),
            &dur,
        )
        .unwrap();
        assert!(s.handle("DROPKEY Q3").starts_with("OK dropped"));
        assert!(s.handle("SAME art1 art2").starts_with("NO"));
        drop(s);
        let (idx, rep) = EmIndex::recover_durable(&dur, ChaseEngine::default())
            .unwrap()
            .expect("state persisted");
        assert!(rep.recovered);
        assert_eq!(rep.replay_mode, AdvanceMode::FullRechase);
        assert_eq!(idx.keys().cardinality(), 1);
        let snap = idx.snapshot();
        assert_eq!(snap.key_epoch, 1);
        let a = snap.graph.entity_named("art1").unwrap();
        let b = snap.graph.entity_named("art2").unwrap();
        assert!(!snap.same(a, b), "Q3 merges must stay retracted");
    }

    #[test]
    fn metrics_verb_reports_request_counts_and_roundtrips() {
        let s = server();
        s.handle("SAME alb1 alb2");
        s.handle("SAME alb1 alb3");
        s.handle("PING");
        let m = s.handle("METRICS");
        assert!(m.starts_with("METRICS\n"), "{m}");
        assert!(m.contains("\ngk_requests_same_total 2\n"), "{m}");
        assert!(m.contains("\ngk_requests_ping_total 1\n"), "{m}");
        assert!(m.contains("# TYPE gk_request_micros_same histogram"), "{m}");
        assert!(m.contains("gk_request_micros_same_count 2"), "{m}");
        assert!(m.contains("# TYPE gk_connections_active gauge"), "{m}");
        assert!(m.contains("\ngk_startup_rounds "), "{m}");
        // The wire form round-trips into the typed payload.
        let parsed = Response::parse(&m).unwrap();
        match &parsed {
            Response::Metrics(snaps) => assert!(!snaps.is_empty()),
            other => panic!("expected Metrics, got {other:?}"),
        }
        assert_eq!(parsed.render(), m);
    }

    #[test]
    fn chase_metrics_flow_from_updates_into_the_registry() {
        let s = server();
        let m0 = s.handle("METRICS");
        let count = |m: &str, name: &str| -> u64 {
            m.lines()
                .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
                .unwrap_or_else(|| panic!("{name} missing: {m}"))
                .parse()
                .unwrap()
        };
        // The startup chase already recorded one invocation.
        let startup = count(&m0, "gk_chase_rounds_count");
        assert!(startup >= 1, "{m0}");
        s.handle(r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#);
        let m1 = s.handle("METRICS");
        assert_eq!(count(&m1, "gk_chase_rounds_count"), startup + 1);
        assert_eq!(count(&m1, "gk_updates_incremental_total"), 1);
        assert_eq!(count(&m1, "gk_ingest_delta_chase_micros_count"), 1);
        assert!(count(&m1, "gk_chase_candidate_pairs_sum") >= 1, "{m1}");
    }

    #[test]
    fn http_endpoint_serves_get_metrics_scrapes() {
        use std::io::{Read as _, Write as _};
        let s = Arc::new(server());
        s.handle("SAME alb1 alb2");
        let h = serve_metrics_http(Arc::clone(&s), "127.0.0.1:0").unwrap();
        let scrape = |path: &str| -> String {
            let mut conn = std::net::TcpStream::connect(h.addr()).unwrap();
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            conn.read_to_string(&mut out).unwrap();
            out
        };
        let ok = scrape("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("gk_requests_same_total 1"), "{ok}");
        assert!(
            ok.contains("# TYPE gk_request_micros_same histogram"),
            "{ok}"
        );
        let miss = scrape("/other");
        assert!(miss.starts_with("HTTP/1.1 404 Not Found\r\n"), "{miss}");
        h.stop();
    }

    #[test]
    fn tcp_round_trip_with_worker_pool() {
        let s = Arc::new(server());
        let handle = serve(Arc::clone(&s), "127.0.0.1:0", 4).unwrap();
        let addr = handle.addr().to_string();

        assert!(request(&addr, "SAME alb1 alb2").unwrap().starts_with("YES"));
        let proof = request(&addr, "EXPLAIN art1 art2").unwrap();
        assert!(
            proof.contains('\n'),
            "multi-line response survives framing: {proof:?}"
        );
        let r = request(
            &addr,
            r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#,
        )
        .unwrap();
        assert!(r.contains("mode=incremental"), "{r}");
        assert!(request(&addr, "SAME alb1 alb3").unwrap().starts_with("YES"));

        // Parallel clients over the pool.
        let clients: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || request(&addr, "DUPS alb1").unwrap())
            })
            .collect();
        for c in clients {
            let resp = c.join().unwrap();
            assert!(resp.starts_with("DUPS alb1:"), "{resp}");
        }
        handle.stop();
    }
}
