//! The epoll reactor: one nonblocking I/O thread serving thousands of
//! connections, with request execution on a small worker pool.
//!
//! The threaded front-end in `net` pins one pool thread per *open*
//! connection, so concurrency is capped at `--threads`, not at sockets.
//! This module decouples the two:
//!
//! * **One reactor thread** owns every socket. Connections are
//!   nonblocking and registered **edge-triggered** (`EPOLLET`); the
//!   reactor drains each readiness edge completely (read until
//!   `WouldBlock`, write until `WouldBlock` or empty) so no edge is ever
//!   lost. Partial request lines accumulate in a growable per-connection
//!   buffer over the same line/paragraph framing the threaded model
//!   speaks — a slow-loris client costs one idle buffer, not a thread.
//! * **A bounded ready queue** hands complete request lines to `threads`
//!   worker threads, which run `Server::handle` (this can block on the
//!   index write lock) and post the rendered response paragraph back to
//!   the reactor through a completion channel plus an eventfd wakeup.
//!   Responses are written per connection in request order: a connection
//!   has at most one request in flight on the pool, further parsed lines
//!   wait in its pending queue (pipelining across *connections* is what
//!   scales; within one connection the protocol is ordered anyway).
//! * **Backpressure**: a connection whose pending-request queue or
//!   response write queue exceeds its bound gets `EPOLLIN` un-armed
//!   (`EPOLL_CTL_MOD`) until the excess drains — the kernel receive
//!   buffer then throttles the client. A full ready queue parks the
//!   dispatch (the line stays in the pending queue) and retries after
//!   the next completion, never blocking the reactor.
//! * **Admission control**: beyond `max_conns` line connections, an
//!   accept is answered `ERR busy` and closed immediately
//!   (`gk_conns_rejected_total`), bounding memory under connection
//!   floods.
//! * **Write stalls**: a response that does not fit the socket buffer
//!   re-arms `EPOLLOUT` and continues on the writability edge
//!   (`gk_conn_write_stalls_total` counts the stalls).
//! * **Shutdown** is an eventfd write from [`crate::ServeHandle::stop`]
//!   — no connect-to-self hack: the reactor wakes, closes every socket,
//!   and drops the ready queue, which releases the workers.
//!
//! The `/metrics` HTTP listener can ride the same reactor (see
//! [`crate::ServeOptions::metrics_addr`]): scrape connections are
//! one-shot HTTP state machines multiplexed alongside the line protocol,
//! retiring the dedicated sidecar thread.

use crate::http;
use crate::net::{ServeOptions, MAX_REQUEST_LINE};
use crate::protocol::Server;
use libc::c_int;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Epoll token of the shutdown eventfd.
const WAKE: u64 = u64::MAX;
/// Epoll token of the line-protocol listener.
const LINE_LISTENER: u64 = u64::MAX - 1;
/// Epoll token of the optional HTTP metrics listener.
const HTTP_LISTENER: u64 = u64::MAX - 2;

/// Events drained per `epoll_wait` call.
const MAX_EVENTS: usize = 256;
/// Read syscall chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Pause reading a connection whose un-flushed response bytes exceed
/// this (resume at half).
const MAX_WRITE_BUF: usize = 256 * 1024;
/// Pause reading a connection with this many parsed-but-unanswered
/// requests (resume at half). Bounds per-connection memory under deep
/// pipelining.
const MAX_PENDING: usize = 256;
/// An HTTP scrape head larger than this is dropped without an answer.
const MAX_HTTP_HEAD: usize = 16 * 1024;
/// How many consecutive parsed requests from one connection ride in a
/// single pool job. Batching amortizes the worker→eventfd→reactor
/// handoff over a pipelined burst (per-request cost would otherwise
/// floor deep pipelining well above the blocking model); responses stay
/// in order because the batch executes sequentially on one worker.
const MAX_JOB_BATCH: usize = 64;

/// Interest mask of a readable connection.
const BASE_INTEREST: u32 = libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLET;

/// Capacity of the ready-request queue feeding the worker pool.
fn ready_queue_cap(workers: usize) -> usize {
    (workers * 4).max(64)
}

/// Sets `O_NONBLOCK` via the vendored `fcntl` binding.
fn set_nonblocking(fd: c_int) -> std::io::Result<()> {
    // SAFETY: plain fcntl on a descriptor we own.
    unsafe {
        let flags = libc::fcntl(fd, libc::F_GETFL);
        if flags < 0 {
            return Err(std::io::Error::last_os_error());
        }
        if libc::fcntl(fd, libc::F_SETFL, flags | libc::O_NONBLOCK) < 0 {
            return Err(std::io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Thin RAII wrapper over one epoll instance.
struct Epoll {
    fd: c_int,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        // SAFETY: epoll_create1 allocates a new descriptor.
        let fd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: c_int, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        // SAFETY: ev outlives the call; fd is a live descriptor.
        if unsafe { libc::epoll_ctl(self.fd, op, fd, &mut ev) } < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: c_int, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, events)
    }

    fn modify(&self, fd: c_int, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, events)
    }

    fn del(&self, fd: c_int) {
        // SAFETY: a null event is allowed for EPOLL_CTL_DEL since 2.6.9.
        unsafe {
            let _ = libc::epoll_ctl(self.fd, libc::EPOLL_CTL_DEL, fd, std::ptr::null_mut());
        }
    }

    /// Blocks for ready events; returns how many were filled in.
    fn wait(&self, events: &mut [libc::epoll_event]) -> std::io::Result<usize> {
        // SAFETY: events is a live, writable slice.
        let n =
            unsafe { libc::epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, -1) };
        if n < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: self.fd was returned by epoll_create1.
        unsafe {
            let _ = libc::close(self.fd);
        }
    }
}

/// Bumps the eventfd counter: wakes a blocked `epoll_wait`.
pub(crate) fn wake_eventfd(fd: c_int) {
    let one: u64 = 1;
    // SAFETY: 8-byte write from a live u64; short writes are impossible
    // on an eventfd.
    unsafe {
        let _ = libc::write(fd, (&one as *const u64).cast(), 8);
    }
}

/// What a connection speaks.
#[derive(Clone, Copy, PartialEq)]
enum ConnKind {
    /// The request-line / response-paragraph protocol.
    Line,
    /// A one-shot HTTP scrape (`GET /metrics` and friends).
    Http,
}

/// A parsed request waiting for the worker pool (in arrival order).
enum PendingReq {
    /// One request line for `Server::handle`.
    Line(String),
    /// A parsed HTTP request head.
    Http { method: String, path: String },
    /// `QUIT`: answered by the reactor itself, in order.
    Quit,
    /// A protocol error (oversized request): answered in order, then
    /// the connection closes.
    Fatal(&'static str),
}

/// A unit of work for the pool: one or more consecutive requests from
/// a single connection, answered in order by one worker.
struct Job {
    conn: u64,
    payloads: Vec<PendingReq>,
}

/// A finished job on its way back to the reactor.
struct Done {
    conn: u64,
    bytes: Vec<u8>,
    close_after: bool,
}

/// A complete request is sitting in `read_buf` with room in `pending`
/// to parse it, but no future epoll edge will announce it (the bytes
/// already arrived): the connection needs another service pass.
fn needs_reparse(conn: &Conn) -> bool {
    conn.kind == ConnKind::Line
        && !conn.parse_done
        && !conn.closing
        && !conn.paused
        && conn.pending.len() < MAX_PENDING
        && (conn.read_buf.contains(&b'\n') || (conn.read_closed && !conn.read_buf.is_empty()))
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    /// Received, not-yet-parsed request bytes.
    read_buf: Vec<u8>,
    /// Rendered, not-yet-written response bytes.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    written: usize,
    /// Parsed requests not yet dispatched (order preserved).
    pending: VecDeque<PendingReq>,
    /// One request is on the worker pool.
    inflight: bool,
    /// The last `EPOLLIN` edge has not been drained to `WouldBlock` yet.
    kernel_readable: bool,
    /// The peer closed its write side (serve what's pending, then close).
    read_closed: bool,
    /// Stop parsing more requests (saw `QUIT` / dispatched the HTTP head).
    parse_done: bool,
    /// `EPOLLIN` un-armed for backpressure.
    paused: bool,
    /// A dispatch hit a full ready queue; retry after a completion.
    stalled: bool,
    /// Close as soon as `write_buf` drains.
    closing: bool,
    /// Already queued in the reactor's run queue.
    queued: bool,
    /// Currently-registered epoll interest mask.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, kind: ConnKind) -> Conn {
        Conn {
            stream,
            kind,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            inflight: false,
            kernel_readable: false,
            read_closed: false,
            parse_done: false,
            paused: false,
            stalled: false,
            closing: false,
            queued: false,
            interest: BASE_INTEREST,
        }
    }

    fn unwritten(&self) -> usize {
        self.write_buf.len() - self.written
    }
}

/// A running epoll front-end, as handed to [`crate::ServeHandle`].
pub(crate) struct EpollServer {
    pub(crate) addr: SocketAddr,
    pub(crate) metrics_addr: Option<SocketAddr>,
    pub(crate) stop: Arc<AtomicBool>,
    /// The shutdown eventfd. Owned by the handle: written in `stop`,
    /// closed after every thread has joined.
    pub(crate) wake_fd: c_int,
    pub(crate) reactor: Option<JoinHandle<()>>,
    pub(crate) workers: Vec<JoinHandle<()>>,
}

/// Binds `addr` (and `opts.metrics_addr`, if any), spawns the reactor
/// and `opts.threads` workers, and returns the running front-end.
pub(crate) fn spawn(
    server: Arc<Server>,
    addr: &str,
    opts: &ServeOptions,
) -> std::io::Result<EpollServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    set_nonblocking(listener.as_raw_fd())?;
    let http_listener = match &opts.metrics_addr {
        Some(a) => {
            let l = TcpListener::bind(a.as_str())?;
            set_nonblocking(l.as_raw_fd())?;
            Some(l)
        }
        None => None,
    };
    let metrics_addr = match &http_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    // SAFETY: eventfd allocates a new descriptor.
    let wake_fd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
    if wake_fd < 0 {
        return Err(std::io::Error::last_os_error());
    }

    let ep = Epoll::new()?;
    ep.add(
        listener.as_raw_fd(),
        LINE_LISTENER,
        libc::EPOLLIN | libc::EPOLLET,
    )?;
    if let Some(l) = &http_listener {
        ep.add(l.as_raw_fd(), HTTP_LISTENER, libc::EPOLLIN | libc::EPOLLET)?;
    }
    ep.add(wake_fd, WAKE, libc::EPOLLIN | libc::EPOLLET)?;

    let workers_n = opts.threads.max(1);
    let (ready_tx, ready_rx) = sync_channel::<Job>(ready_queue_cap(workers_n));
    let ready_rx = Arc::new(Mutex::new(ready_rx));
    let (done_tx, done_rx) = channel::<Done>();

    let workers: Vec<JoinHandle<()>> = (0..workers_n)
        .map(|_| {
            let ready_rx = Arc::clone(&ready_rx);
            let done_tx = done_tx.clone();
            let server = Arc::clone(&server);
            std::thread::spawn(move || loop {
                let job = match ready_rx.lock().expect("ready queue lock").recv() {
                    Ok(j) => j,
                    Err(_) => return, // reactor dropped the queue: shutdown
                };
                server.net.ready_depth.dec();
                let (bytes, close_after) = execute_job(&server, job.payloads);
                if done_tx
                    .send(Done {
                        conn: job.conn,
                        bytes,
                        close_after,
                    })
                    .is_err()
                {
                    return; // reactor gone mid-shutdown
                }
                wake_eventfd(wake_fd);
            })
        })
        .collect();
    drop(done_tx);

    let stop = Arc::new(AtomicBool::new(false));
    let reactor_stop = Arc::clone(&stop);
    let max_conns = opts.max_conns;
    let reactor = std::thread::spawn(move || {
        Reactor {
            server,
            ep,
            listener,
            http_listener,
            wake_fd,
            stop: reactor_stop,
            conns: FxHashMap::default(),
            line_conns: 0,
            next_id: 0,
            ready_tx,
            done_rx,
            max_conns,
            run_q: VecDeque::new(),
            stalled: VecDeque::new(),
        }
        .run();
    });

    Ok(EpollServer {
        addr: bound,
        metrics_addr,
        stop,
        wake_fd,
        reactor: Some(reactor),
        workers,
    })
}

/// Runs one job on a pool thread; returns the concatenated in-order
/// response bytes and whether the connection closes after them.
fn execute_job(server: &Server, payloads: Vec<PendingReq>) -> (Vec<u8>, bool) {
    let mut bytes = Vec::new();
    let mut close_after = false;
    for payload in payloads {
        match payload {
            PendingReq::Line(line) => {
                // A panicking handler must not take the pool thread down:
                // answer ERR and keep serving (index updates swap
                // fully-built state at the end, so a mid-update panic
                // leaves the old state).
                let response =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.handle(&line)))
                        .unwrap_or_else(|_| "ERR internal error (request handler panicked)".into());
                bytes.extend_from_slice(format!("{response}\n\n").as_bytes());
            }
            PendingReq::Http { method, path } => {
                bytes.extend_from_slice(
                    http::render_http_response(server, &method, &path).as_bytes(),
                );
                close_after = true;
            }
            // Quit/Fatal are answered inline by the reactor; kept for
            // totality.
            PendingReq::Quit => {
                bytes.extend_from_slice(b"BYE\n\n");
                close_after = true;
            }
            PendingReq::Fatal(msg) => {
                bytes.extend_from_slice(msg.as_bytes());
                close_after = true;
            }
        }
    }
    (bytes, close_after)
}

/// The reactor: owns every socket and the per-connection state machines.
struct Reactor {
    server: Arc<Server>,
    ep: Epoll,
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    wake_fd: c_int,
    stop: Arc<AtomicBool>,
    conns: FxHashMap<u64, Conn>,
    /// Open line-protocol connections (the `max_conns` admission set;
    /// HTTP scrapes are not counted).
    line_conns: usize,
    next_id: u64,
    ready_tx: SyncSender<Job>,
    done_rx: Receiver<Done>,
    max_conns: usize,
    /// Connections with a pending readiness change to service.
    run_q: VecDeque<u64>,
    /// Connections whose dispatch found the ready queue full.
    stalled: VecDeque<u64>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = vec![libc::epoll_event { events: 0, u64: 0 }; MAX_EVENTS];
        loop {
            let n = match self.ep.wait(&mut events) {
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    gk_metrics::warn!("epoll_wait_error", error = e);
                    break;
                }
            };
            self.server.net.wakeups.inc();
            for ev in &events[..n] {
                let token = ev.u64;
                let bits = ev.events;
                match token {
                    WAKE => self.drain_wake(),
                    LINE_LISTENER => self.accept_all(ConnKind::Line),
                    HTTP_LISTENER => self.accept_all(ConnKind::Http),
                    id => self.on_conn_event(id, bits),
                }
            }
            self.drain_completions();
            self.process_run_queue();
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        // Shutdown: close every socket; dropping ready_tx releases the
        // workers (their recv errors out once the queue drains).
        for (_, conn) in self.conns.drain() {
            if conn.kind == ConnKind::Line {
                self.server.net.connections_active.dec();
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Drains the eventfd counter so its edge can re-trigger.
    fn drain_wake(&self) {
        let mut v: u64 = 0;
        // SAFETY: 8-byte read into a live u64; the fd is nonblocking.
        unsafe {
            let _ = libc::read(self.wake_fd, (&mut v as *mut u64).cast(), 8);
        }
    }

    /// Accepts until `WouldBlock` (the listener is edge-triggered).
    fn accept_all(&mut self, kind: ConnKind) {
        loop {
            let listener = match kind {
                ConnKind::Line => &self.listener,
                ConnKind::Http => match &self.http_listener {
                    Some(l) => l,
                    None => return,
                },
            };
            match listener.accept() {
                Ok((stream, _)) => self.register(stream, kind),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    gk_metrics::warn!("accept_error", error = e);
                    break;
                }
            }
        }
    }

    /// Admits (or rejects) one accepted connection.
    fn register(&mut self, stream: TcpStream, kind: ConnKind) {
        if kind == ConnKind::Line && self.max_conns > 0 && self.line_conns >= self.max_conns {
            // Accept-then-close admission control: the client gets a
            // protocol-shaped answer instead of a silent RST. The socket
            // is still blocking and its send buffer empty, so this tiny
            // write cannot stall the reactor.
            self.server.net.rejected.inc();
            let mut s = stream;
            let _ = s.write_all(b"ERR busy\n\n");
            let _ = s.shutdown(Shutdown::Both);
            return;
        }
        if set_nonblocking(stream.as_raw_fd()).is_err() {
            return;
        }
        if kind == ConnKind::Line {
            // Answers are small and latency-bound; Nagle coalescing would
            // stall a pipelining client for a delayed-ACK window per batch.
            let _ = stream.set_nodelay(true);
            self.server.net.connections_total.inc();
            self.server.net.connections_active.inc();
            self.line_conns += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        if self.ep.add(stream.as_raw_fd(), id, BASE_INTEREST).is_err() {
            if kind == ConnKind::Line {
                self.server.net.connections_active.dec();
                self.line_conns -= 1;
            }
            return;
        }
        let mut conn = Conn::new(stream, kind);
        // The peer may have written before registration; treat the
        // connection as readable once so nothing is missed under ET.
        conn.kernel_readable = true;
        self.conns.insert(id, conn);
        self.enqueue_run(id);
    }

    fn enqueue_run(&mut self, id: u64) {
        if let Some(conn) = self.conns.get_mut(&id) {
            if !conn.queued {
                conn.queued = true;
                self.run_q.push_back(id);
            }
        }
    }

    fn on_conn_event(&mut self, id: u64, bits: u32) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if bits & (libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLHUP | libc::EPOLLERR) != 0 {
            conn.kernel_readable = true;
            self.enqueue_run(id);
        }
        if bits & libc::EPOLLOUT != 0 {
            self.flush_writes(id);
            self.update_backpressure(id);
            self.maybe_close(id);
        }
    }

    /// Applies completed jobs: append response bytes, flush, dispatch
    /// the connection's next pending request, re-evaluate backpressure.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let Some(conn) = self.conns.get_mut(&done.conn) else {
                continue; // connection died while its request ran
            };
            conn.inflight = false;
            conn.write_buf.extend_from_slice(&done.bytes);
            if done.close_after {
                conn.closing = true;
                conn.pending.clear();
            }
            self.flush_writes(done.conn);
            self.try_dispatch(done.conn);
            self.update_backpressure(done.conn);
            // Draining `pending` may have re-opened room to parse lines
            // that were already read but deferred by the MAX_PENDING
            // bound — no new bytes will arrive to trigger that.
            if self.conns.get(&done.conn).is_some_and(needs_reparse) {
                self.enqueue_run(done.conn);
            }
            self.maybe_close(done.conn);
        }
        self.retry_stalled();
    }

    /// Retries dispatches that found the ready queue full.
    fn retry_stalled(&mut self) {
        for _ in 0..self.stalled.len() {
            let Some(id) = self.stalled.pop_front() else {
                break;
            };
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.stalled = false;
                self.try_dispatch(id);
            }
        }
    }

    /// Services every connection with a pending readiness change.
    fn process_run_queue(&mut self) {
        while let Some(id) = self.run_q.pop_front() {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            conn.queued = false;
            self.service_conn(id);
        }
    }

    /// One full service pass: read, parse, dispatch, backpressure, close.
    fn service_conn(&mut self, id: u64) {
        if self.fill_read_buf(id) {
            self.parse_requests(id);
            self.try_dispatch(id);
            self.update_backpressure(id);
            self.maybe_close(id);
            // A size-capped read pass leaves bytes in the kernel buffer,
            // and a MAX_PENDING-capped parse pass leaves lines in
            // read_buf — neither gets a future edge to announce it:
            // keep the connection on the run queue until both drain
            // (each pass consumes parsed lines, so this terminates).
            if let Some(conn) = self.conns.get(&id) {
                if (conn.kernel_readable && !conn.paused && !conn.closing && !conn.read_closed)
                    || needs_reparse(conn)
                {
                    self.enqueue_run(id);
                }
            }
        }
    }

    /// Reads until `WouldBlock`/EOF (unless paused). Returns false when
    /// the connection was torn down by a read error.
    fn fill_read_buf(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return false;
        };
        if conn.closing || !conn.kernel_readable {
            return true;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.paused {
                // Backpressure: leave the rest in the kernel buffer; the
                // resume path re-queues this connection.
                return true;
            }
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    conn.kernel_readable = false;
                    return true;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    // Oversized frames are rejected at parse time; stop
                    // accumulating once the parser is guaranteed to trip.
                    if conn.kind == ConnKind::Line && conn.read_buf.len() > MAX_REQUEST_LINE + 2 {
                        return true;
                    }
                    if conn.kind == ConnKind::Http && conn.read_buf.len() > MAX_HTTP_HEAD {
                        return true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.kernel_readable = false;
                    return true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.server.net.read_errors.inc();
                    gk_metrics::warn!("conn_read_error", error = e);
                    self.close_conn(id);
                    return false;
                }
            }
        }
    }

    /// Parses complete requests out of `read_buf` into `pending`.
    fn parse_requests(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.parse_done || conn.closing {
            conn.read_buf.clear();
            return;
        }
        match conn.kind {
            ConnKind::Line => {
                let mut consumed = 0;
                while !conn.parse_done {
                    let buf = &conn.read_buf[consumed..];
                    // A line may be at most MAX_REQUEST_LINE content bytes
                    // (+ CRLF); beyond that without a newline the client is
                    // streaming garbage and is cut off.
                    let window = buf.len().min(MAX_REQUEST_LINE + 2);
                    match buf[..window].iter().position(|&b| b == b'\n') {
                        Some(pos) => {
                            let line = String::from_utf8_lossy(&buf[..pos]).trim().to_string();
                            consumed += pos + 1;
                            if line.len() > MAX_REQUEST_LINE {
                                // Answered in order after any earlier
                                // pipelined requests, then the connection
                                // closes — matching the threaded model's
                                // one-request-at-a-time behavior.
                                self.server.net.read_errors.inc();
                                conn.parse_done = true;
                                conn.pending
                                    .push_back(PendingReq::Fatal("ERR request too long\n\n"));
                                break;
                            }
                            // A blank line is not a request: piped input
                            // commonly ends with a trailing newline pair,
                            // and answering ERR would desynchronize
                            // pipelined clients counting paragraphs.
                            if line.is_empty() {
                                continue;
                            }
                            if line.eq_ignore_ascii_case("QUIT") {
                                conn.parse_done = true;
                                conn.pending.push_back(PendingReq::Quit);
                                break;
                            }
                            conn.pending.push_back(PendingReq::Line(line));
                            if conn.pending.len() >= MAX_PENDING {
                                break; // backpressure pauses the socket
                            }
                        }
                        None if buf.len() > MAX_REQUEST_LINE + 1 => {
                            self.server.net.read_errors.inc();
                            conn.parse_done = true;
                            conn.pending
                                .push_back(PendingReq::Fatal("ERR request too long\n\n"));
                            break;
                        }
                        None => break, // incomplete line: wait for more bytes
                    }
                }
                conn.read_buf.drain(..consumed.min(conn.read_buf.len()));
                // EOF mid-line: serve the unterminated tail as a request
                // (legacy `printf 'PING' | nc` behavior, matching the
                // threaded model).
                if conn.read_closed
                    && !conn.parse_done
                    && !conn.read_buf.is_empty()
                    && conn.pending.len() < MAX_PENDING
                {
                    let tail = String::from_utf8_lossy(&conn.read_buf).trim().to_string();
                    conn.read_buf.clear();
                    conn.parse_done = true;
                    if tail.len() > MAX_REQUEST_LINE {
                        self.server.net.read_errors.inc();
                        conn.pending
                            .push_back(PendingReq::Fatal("ERR request too long\n\n"));
                    } else if tail.eq_ignore_ascii_case("QUIT") {
                        conn.pending.push_back(PendingReq::Quit);
                    } else if !tail.is_empty() {
                        conn.pending.push_back(PendingReq::Line(tail));
                    }
                }
                if conn.parse_done {
                    conn.read_buf.clear();
                }
            }
            ConnKind::Http => {
                // One request per scrape connection: find the end of the
                // head (`\n\n` or `\n\r\n`), parse the request line, and
                // ship it to the pool. Headers are irrelevant to routing.
                let end = conn
                    .read_buf
                    .windows(2)
                    .position(|w| w == b"\n\n")
                    .map(|p| p + 2)
                    .or_else(|| {
                        conn.read_buf
                            .windows(3)
                            .position(|w| w == b"\n\r\n")
                            .map(|p| p + 3)
                    });
                match end {
                    Some(_) => {
                        let head = String::from_utf8_lossy(&conn.read_buf);
                        let mut parts = head.lines().next().unwrap_or("").split_whitespace();
                        let method = parts.next().unwrap_or("").to_string();
                        let path = parts.next().unwrap_or("").to_string();
                        conn.parse_done = true;
                        conn.read_buf.clear();
                        conn.pending.push_back(PendingReq::Http { method, path });
                    }
                    None if conn.read_buf.len() > MAX_HTTP_HEAD => {
                        self.close_conn(id);
                    }
                    None => {}
                }
            }
        }
    }

    /// Dispatches the connection's next pending request, if the pool has
    /// room and nothing from this connection is already in flight.
    fn try_dispatch(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.inflight || conn.closing || conn.stalled {
            return;
        }
        // QUIT and protocol errors are answered by the reactor itself —
        // but only once every earlier request on this connection has
        // been answered, which is exactly when they reach the queue
        // front with nothing in flight.
        match conn.pending.front() {
            Some(PendingReq::Quit) => {
                conn.pending.pop_front();
                conn.write_buf.extend_from_slice(b"BYE\n\n");
                conn.closing = true;
                self.flush_writes(id);
                return;
            }
            Some(PendingReq::Fatal(msg)) => {
                let msg = *msg;
                conn.pending.pop_front();
                conn.write_buf.extend_from_slice(msg.as_bytes());
                conn.closing = true;
                self.flush_writes(id);
                return;
            }
            _ => {}
        }
        // Batch the longest run of consecutive ordinary requests (up to
        // MAX_JOB_BATCH) into one job; a pipelined burst then pays the
        // worker handoff once instead of per request. The run stops at
        // QUIT/Fatal so those still get the in-order inline treatment
        // above, and an HTTP head is always a batch of one.
        let mut payloads = Vec::new();
        while payloads.len() < MAX_JOB_BATCH {
            match conn.pending.front() {
                Some(PendingReq::Line(_)) => payloads.extend(conn.pending.pop_front()),
                Some(PendingReq::Http { .. }) if payloads.is_empty() => {
                    payloads.extend(conn.pending.pop_front());
                    break;
                }
                _ => break,
            }
        }
        if payloads.is_empty() {
            return;
        }
        match self.ready_tx.try_send(Job { conn: id, payloads }) {
            Ok(()) => {
                conn.inflight = true;
                self.server.net.ready_depth.inc();
            }
            Err(TrySendError::Full(job)) => {
                // Bounded ready queue: park the requests back at the
                // front (in order) and retry after the next completion
                // frees a slot.
                for payload in job.payloads.into_iter().rev() {
                    conn.pending.push_front(payload);
                }
                conn.stalled = true;
                self.stalled.push_back(id);
            }
            Err(TrySendError::Disconnected(_)) => {} // shutting down
        }
    }

    /// Writes until empty or `WouldBlock`; re-arms `EPOLLOUT` on a stall.
    fn flush_writes(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while conn.written < conn.write_buf.len() {
            match (&conn.stream).write(&conn.write_buf[conn.written..]) {
                Ok(0) => break,
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Partial write: keep the rest queued and finish on
                    // the next writability edge.
                    if conn.interest & libc::EPOLLOUT == 0 {
                        self.server.net.write_stalls.inc();
                        let mask = conn.interest | libc::EPOLLOUT;
                        if self.ep.modify(conn.stream.as_raw_fd(), id, mask).is_ok() {
                            conn.interest = mask;
                        }
                    }
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.server.net.write_errors.inc();
                    gk_metrics::warn!("conn_write_error", error = e);
                    self.close_conn(id);
                    return;
                }
            }
        }
        // Fully flushed: reclaim the buffer and drop EPOLLOUT interest.
        conn.write_buf.clear();
        conn.written = 0;
        if conn.interest & libc::EPOLLOUT != 0 {
            let mask = conn.interest & !libc::EPOLLOUT;
            if self.ep.modify(conn.stream.as_raw_fd(), id, mask).is_ok() {
                conn.interest = mask;
            }
        }
        if conn.closing {
            self.close_conn(id);
        }
    }

    /// Pauses (`EPOLLIN` un-armed) or resumes reading according to the
    /// connection's pending/response backlog.
    fn update_backpressure(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.closing {
            return;
        }
        let overloaded = conn.pending.len() >= MAX_PENDING || conn.unwritten() >= MAX_WRITE_BUF;
        let relaxed = conn.pending.len() < MAX_PENDING / 2 && conn.unwritten() < MAX_WRITE_BUF / 2;
        if overloaded && !conn.paused {
            conn.paused = true;
            let mask = conn.interest & !libc::EPOLLIN;
            if self.ep.modify(conn.stream.as_raw_fd(), id, mask).is_ok() {
                conn.interest = mask;
            }
        } else if relaxed && conn.paused {
            conn.paused = false;
            let mask = conn.interest | libc::EPOLLIN;
            if self.ep.modify(conn.stream.as_raw_fd(), id, mask).is_ok() {
                conn.interest = mask;
            }
            // Bytes may have queued in the kernel while un-armed; the MOD
            // re-polls the fd, but service the buffer now regardless.
            conn.kernel_readable = true;
            self.enqueue_run(id);
        }
    }

    /// Closes a drained connection whose peer has hung up.
    fn maybe_close(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.read_closed
            && !conn.inflight
            && conn.pending.is_empty()
            && conn.read_buf.is_empty()
            && conn.unwritten() == 0
        {
            self.close_conn(id);
        }
    }

    /// Tears one connection down and releases its admission slot.
    ///
    /// The slot is released *before* the socket shutdown: a client that
    /// observes EOF can immediately reconnect without racing admission.
    fn close_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        if conn.kind == ConnKind::Line {
            self.server.net.connections_active.dec();
            self.line_conns -= 1;
        }
        self.ep.del(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}
