//! Plain-HTTP sidecar endpoint: metrics scrapes, health checks, and
//! flight-recorder dumps.
//!
//! One dedicated thread answers:
//!
//! * `GET /metrics` — the text exposition
//!   ([`gk_metrics::render_exposition`]), the shape every
//!   Prometheus-style scraper expects;
//! * `GET /healthz` — `ok version=... uptime_secs=...` for liveness
//!   probes;
//! * `GET /traces` — the trace flight recorder's retained request
//!   traces, rendered exactly as the `TRACES` protocol verb answers
//!   (or its `ERR` line when tracing is off).
//!
//! Any other `GET` path gets a 404; any other method gets a
//! `405 Method Not Allowed` carrying an `Allow: GET` header. The
//! endpoint is deliberately not the line protocol: probes and scrapers
//! speak HTTP, and a separate listener keeps their traffic off the
//! request worker pool.

use crate::proto::Request;
use crate::protocol::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running scrape endpoint. Dropping the handle without calling
/// [`stop`](MetricsHandle::stop) leaves the daemon thread running.
pub struct MetricsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting scrapes and joins the endpoint thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (port 0 for ephemeral) and serves `GET
/// /metrics|/healthz|/traces` on a dedicated thread until
/// [`MetricsHandle::stop`].
pub fn serve_metrics_http(server: Arc<Server>, addr: &str) -> std::io::Result<MetricsHandle> {
    serve_with_timeout(server, addr, SCRAPE_TIMEOUT)
}

/// [`serve_metrics_http`] with an explicit per-connection I/O timeout —
/// the tests shrink it to keep the half-open-scraper case fast.
fn serve_with_timeout(
    server: Arc<Server>,
    addr: &str,
    timeout: Duration,
) -> std::io::Result<MetricsHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break; // the stop() wake-up connection lands here
            }
            let Ok(conn) = conn else { continue };
            answer_scrape(&server, conn, timeout);
        }
    });
    Ok(MetricsHandle {
        addr: bound,
        stop,
        thread: Some(thread),
    })
}

/// How long a scrape connection may dawdle before the endpoint drops it.
/// A single slow scraper must not wedge the (single-threaded) endpoint.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Answers one scrape connection: request line + headers in, one
/// `Connection: close` response out.
fn answer_scrape(server: &Server, conn: TcpStream, timeout: Duration) {
    let _ = conn.set_read_timeout(Some(timeout));
    let _ = conn.set_write_timeout(Some(timeout));
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; the response does not depend on any of them.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header.trim_end_matches(['\r', '\n']).is_empty() => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let _ = writer.write_all(render_http_response(server, method, path).as_bytes());
    let _ = writer.shutdown(Shutdown::Both);
}

/// Renders one complete `Connection: close` HTTP response for a parsed
/// request line. Shared by the sidecar thread above and the epoll
/// reactor's multiplexed scrape connections.
pub(crate) fn render_http_response(server: &Server, method: &str, path: &str) -> String {
    let (status, extra, body) = route(server, method, path);
    let extra = extra.map_or(String::new(), |h| format!("{h}\r\n"));
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n{extra}\r\n{body}",
        body.len()
    )
}

/// Maps one request to `(status line, extra header, body)`.
fn route(
    server: &Server,
    method: &str,
    path: &str,
) -> (&'static str, Option<&'static str>, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            Some("Allow: GET"),
            String::from("only GET is served\n"),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            None,
            gk_metrics::render_exposition(&server.index().registry().snapshot()),
        ),
        "/healthz" => (
            "200 OK",
            None,
            format!(
                "ok version={} uptime_secs={}\n",
                env!("CARGO_PKG_VERSION"),
                server.uptime_secs()
            ),
        ),
        "/traces" => {
            let mut body = server.execute(Request::Traces { n: None }).render();
            body.push('\n');
            ("200 OK", None, body)
        }
        _ => (
            "404 Not Found",
            None,
            String::from("only GET /metrics, /healthz and /traces are served\n"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::KeySet;
    use gk_graph::parse_graph;
    use std::io::Read;

    fn test_server(trace_buffer: usize) -> Arc<Server> {
        let g = parse_graph(
            r#"
            a1:album name_of "Anthology 2"
            a1:album release_year "1996"
            a2:album name_of "Anthology 2"
            a2:album release_year "1996"
            "#,
        )
        .unwrap();
        let keys = KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
            .unwrap();
        let mut s = Server::new(g, keys);
        s.set_trace_buffer(trace_buffer);
        Arc::new(s)
    }

    /// One raw HTTP exchange: request bytes in, full response text out.
    fn exchange(addr: SocketAddr, request: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(request.as_bytes()).unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        resp
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    #[test]
    fn routes_answer_their_documented_statuses() {
        let server = test_server(4);
        let _ = server.handle("SAME a1 a2");
        let h = serve_metrics_http(server, "127.0.0.1:0").unwrap();
        let addr = h.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("gk_requests_same_total 1"), "{metrics}");

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("ok version="), "{health}");
        assert!(health.contains("uptime_secs="), "{health}");

        let traces = get(addr, "/traces");
        assert!(traces.starts_with("HTTP/1.1 200 OK"), "{traces}");
        assert!(traces.contains("TRACES n="), "{traces}");
        assert!(traces.contains("verb=same"), "{traces}");

        let missing = get(addr, "/other");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found"), "{missing}");

        let post = exchange(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            post.starts_with("HTTP/1.1 405 Method Not Allowed"),
            "{post}"
        );
        assert!(post.contains("Allow: GET\r\n"), "{post}");

        h.stop();
    }

    #[test]
    fn traces_route_reports_tracing_off_without_a_recorder() {
        let h = serve_metrics_http(test_server(0), "127.0.0.1:0").unwrap();
        let traces = get(h.addr(), "/traces");
        assert!(traces.starts_with("HTTP/1.1 200 OK"), "{traces}");
        assert!(traces.contains("ERR tracing is off"), "{traces}");
        h.stop();
    }

    #[test]
    fn half_open_scraper_times_out_without_wedging_the_endpoint() {
        let h =
            serve_with_timeout(test_server(0), "127.0.0.1:0", Duration::from_millis(100)).unwrap();
        let addr = h.addr();
        // A scraper that connects, sends half a request line and stalls:
        // the endpoint must drop it at the read timeout instead of
        // blocking its (single) accept thread forever.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /met").unwrap();
        // A well-behaved scrape right behind it still gets served. It
        // queues behind the stalled connection for at most ~100ms.
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        // The stalled connection was shut down, not answered.
        let mut rest = String::new();
        stalled.read_to_string(&mut rest).unwrap_or_default();
        assert!(rest.is_empty(), "stalled scraper got: {rest}");
        h.stop();
    }
}
