//! Plain-HTTP scrape endpoint for the metrics registry.
//!
//! One dedicated thread answers `GET /metrics` with the text exposition
//! ([`gk_metrics::render_exposition`]) and closes the connection — the
//! shape every Prometheus-style scraper expects. Anything else gets a
//! 404. The endpoint is deliberately not the line protocol: scrapers
//! speak HTTP, and a separate listener keeps scrape traffic off the
//! request worker pool.

use crate::protocol::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running scrape endpoint. Dropping the handle without calling
/// [`stop`](MetricsHandle::stop) leaves the daemon thread running.
pub struct MetricsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting scrapes and joins the endpoint thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (port 0 for ephemeral) and serves `GET /metrics` scrapes
/// of `server`'s registry on a dedicated thread until
/// [`MetricsHandle::stop`].
pub fn serve_metrics_http(server: Arc<Server>, addr: &str) -> std::io::Result<MetricsHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break; // the stop() wake-up connection lands here
            }
            let Ok(conn) = conn else { continue };
            answer_scrape(&server, conn);
        }
    });
    Ok(MetricsHandle {
        addr: bound,
        stop,
        thread: Some(thread),
    })
}

/// How long a scrape connection may dawdle before the endpoint drops it.
/// A single slow scraper must not wedge the (single-threaded) endpoint.
const SCRAPE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);

/// Answers one scrape connection: request line + headers in, one
/// `Connection: close` response out.
fn answer_scrape(server: &Server, conn: TcpStream) {
    let _ = conn.set_read_timeout(Some(SCRAPE_TIMEOUT));
    let _ = conn.set_write_timeout(Some(SCRAPE_TIMEOUT));
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; the response does not depend on any of them.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header.trim_end_matches(['\r', '\n']).is_empty() => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method == "GET" && path == "/metrics" {
        let body = gk_metrics::render_exposition(&server.index().registry().snapshot());
        ("200 OK", body)
    } else {
        (
            "404 Not Found",
            String::from("only GET /metrics is served\n"),
        )
    };
    let _ = writer.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let _ = writer.shutdown(Shutdown::Both);
}
