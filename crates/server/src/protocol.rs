//! The line protocol: one request per line, one text response per request.
//!
//! ```text
//! SAME <a> <b>              are a and b the same entity?  -> YES ... | NO ...
//! DUPS <e>                  e's duplicate cluster         -> DUPS ... | NONE ...
//! REP  <e>                  e's canonical representative  -> REP ...
//! EXPLAIN <a> <b>           verified proof of a <=> b     -> PROOF ... | NOPROOF ...
//! INSERT <s:T> <p> <o>      add triple(s); `;` separates  -> OK mode=incremental ...
//! DELETE <s:T> <p> <o>      remove triple(s); `;` separates; one re-chase
//!                                                         -> OK mode=full-rechase ...
//! SNAPSHOT                  persist a point-in-time snapshot
//!                                                         -> OK snapshot_seq=...
//! COMPACT                   snapshot + truncate WAL + prune old snapshots
//!                                                         -> OK snapshot_seq=...
//! STATS                     counters                      -> STATS k=v ...
//! PING                                                    -> PONG
//! HELP                                                    -> this table
//! ```
//!
//! Entities are addressed by their external names (`alb1`, not internal
//! ids). Errors answer `ERR <reason>` and never change state. Every verb is
//! also available in-process via [`Server::handle`], which is what the CLI
//! example and the tests drive — the TCP layer in [`crate::net`] is a thin
//! framing of this function.

use crate::index::{AdvanceReport, EmIndex, IndexState, RecoveryReport};
use gk_core::{ChaseEngine, KeySet};
use gk_graph::{parse_triple_specs, EntityId, Graph, GraphView};
use gk_store::Durability;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Usage table answered to `HELP` and malformed requests.
pub const PROTOCOL_HELP: &str = "commands:
  SAME <a> <b>          are <a> and <b> identified?
  DUPS <e>              duplicates of <e>
  REP <e>               canonical representative of <e>
  EXPLAIN <a> <b>       verified key-application proof for <a> <=> <b>
  INSERT <s:T> <p> <o>  insert triple(s); separate several with ';'
  DELETE <s:T> <p> <o>  delete triple(s); ';' separates; one re-chase per batch
  SNAPSHOT              persist a point-in-time snapshot (needs --data-dir)
  COMPACT               snapshot + fold the delta overlay, truncate the WAL, prune old snapshots
  STATS                 index + traffic counters
  PING                  liveness check";

/// The entity-resolution service: a resident [`EmIndex`] plus the request
/// protocol. Cheap to share (`&Server` is `Sync`); all state sits in the
/// index's snapshot-swapped interior.
pub struct Server {
    index: EmIndex,
    queries: AtomicU64,
    updates: AtomicU64,
}

impl Server {
    /// Builds the server: runs the startup chase on `graph` under `keys`
    /// with the default incremental engine.
    pub fn new(graph: Graph, keys: KeySet) -> Self {
        Self::with_engine(graph, keys, ChaseEngine::default())
    }

    /// Like [`Server::new`] but selecting the chase engine (see
    /// [`EmIndex::with_engine`]). `STATS` reports the engine, its thread
    /// count and the cumulative chase rounds.
    pub fn with_engine(graph: Graph, keys: KeySet, engine: ChaseEngine) -> Self {
        Server {
            index: EmIndex::with_engine(graph, keys, engine),
            queries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
        }
    }

    /// Durable variant of [`Server::with_engine`]: accepted updates are
    /// write-ahead-logged to `dur.dir`, and a data directory with state
    /// recovers (snapshot + WAL replay) instead of re-running the startup
    /// chase — see [`EmIndex::open_durable`].
    pub fn with_durability(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
    ) -> Result<(Self, RecoveryReport), String> {
        let (index, report) = EmIndex::open_durable(graph, keys, engine, dur)?;
        Ok((Self::from_index(index), report))
    }

    /// [`Server::with_durability`] with an explicit delta-compaction
    /// threshold (`0` = off), honored by the recovery replay too — set it
    /// here rather than after construction so a long WAL suffix folds (or
    /// doesn't) according to the operator's choice.
    pub fn with_durability_compacting(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
        compact_threshold: usize,
    ) -> Result<(Self, RecoveryReport), String> {
        let (index, report) =
            EmIndex::open_durable_with(graph, keys, engine, dur, compact_threshold)?;
        Ok((Self::from_index(index), report))
    }

    /// Wraps an already-built index (e.g. one from
    /// [`EmIndex::recover_durable`]) in the protocol layer.
    pub fn from_index(index: EmIndex) -> Self {
        Server {
            index,
            queries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
        }
    }

    /// The underlying index (for embedding and tests).
    pub fn index(&self) -> &EmIndex {
        &self.index
    }

    /// Sets the delta-overlay compaction threshold (see
    /// [`EmIndex::set_compact_threshold`]); call before serving traffic.
    pub fn set_compact_threshold(&mut self, threshold: usize) {
        self.index.set_compact_threshold(threshold);
    }

    /// Handles one request line, returning the response text (possibly
    /// multi-line, never empty, no trailing newline).
    pub fn handle(&self, line: &str) -> String {
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "SAME" => self.count_query(self.cmd_same(rest)),
            "DUPS" => self.count_query(self.cmd_dups(rest)),
            "REP" => self.count_query(self.cmd_rep(rest)),
            "EXPLAIN" => self.count_query(self.cmd_explain(rest)),
            "INSERT" => self.count_update(self.cmd_insert(rest)),
            "DELETE" => self.count_update(self.cmd_delete(rest)),
            "SNAPSHOT" => self.cmd_snapshot(),
            "COMPACT" => self.cmd_compact(),
            "STATS" => self.cmd_stats(),
            "PING" => "PONG".into(),
            "HELP" => PROTOCOL_HELP.into(),
            "" => err("empty request (try HELP)"),
            other => err(&format!("unknown verb {other:?} (try HELP)")),
        }
    }

    fn count_query(&self, resp: String) -> String {
        self.queries.fetch_add(1, Ordering::Relaxed);
        resp
    }

    fn count_update(&self, resp: String) -> String {
        self.updates.fetch_add(1, Ordering::Relaxed);
        resp
    }

    fn cmd_same(&self, args: &str) -> String {
        let snap = self.index.snapshot();
        let [a, b] = match names::<2>(args) {
            Ok(ns) => ns,
            Err(e) => return e,
        };
        let (ea, eb) = match (entity(&snap, a), entity(&snap, b)) {
            (Ok(ea), Ok(eb)) => (ea, eb),
            (Err(e), _) | (_, Err(e)) => return e,
        };
        if snap.same(ea, eb) {
            format!(
                "YES {a} <=> {b} rep={}",
                snap.graph.entity_label(snap.rep(ea))
            )
        } else {
            format!("NO {a} =/= {b}")
        }
    }

    fn cmd_dups(&self, args: &str) -> String {
        let snap = self.index.snapshot();
        let [name] = match names::<1>(args) {
            Ok(ns) => ns,
            Err(e) => return e,
        };
        let e = match entity(&snap, name) {
            Ok(e) => e,
            Err(e) => return e,
        };
        match snap.cluster(e) {
            None => format!("NONE {name} has no duplicates"),
            Some(class) => {
                let others: Vec<String> = class
                    .iter()
                    .filter(|&&m| m != e)
                    .map(|&m| snap.graph.entity_label(m))
                    .collect();
                format!("DUPS {name}: {}", others.join(" "))
            }
        }
    }

    fn cmd_rep(&self, args: &str) -> String {
        let snap = self.index.snapshot();
        let [name] = match names::<1>(args) {
            Ok(ns) => ns,
            Err(e) => return e,
        };
        match entity(&snap, name) {
            Ok(e) => format!("REP {}", snap.graph.entity_label(snap.rep(e))),
            Err(e) => e,
        }
    }

    fn cmd_explain(&self, args: &str) -> String {
        let snap = self.index.snapshot();
        let [a, b] = match names::<2>(args) {
            Ok(ns) => ns,
            Err(e) => return e,
        };
        let (ea, eb) = match (entity(&snap, a), entity(&snap, b)) {
            (Ok(ea), Ok(eb)) => (ea, eb),
            (Err(e), _) | (_, Err(e)) => return e,
        };
        match snap.explain(ea, eb) {
            None => format!("NOPROOF {a} and {b} are not identified"),
            Some(proof) => {
                let mut out = format!("PROOF {a} <=> {b} steps={} verified", proof.len());
                for s in &proof.steps {
                    let _ = write!(
                        out,
                        "\n  {} <=> {} by {}",
                        snap.graph.entity_label(s.pair.0),
                        snap.graph.entity_label(s.pair.1),
                        snap.compiled.keys[s.key].name
                    );
                }
                out
            }
        }
    }

    fn cmd_insert(&self, args: &str) -> String {
        if args.is_empty() {
            return err("INSERT needs at least one triple");
        }
        // `;` separates triples so a batch fits on one request line.
        let text = split_batch(args);
        let specs = match parse_triple_specs(&text) {
            Ok(s) => s,
            Err(e) => return err(&e.to_string()),
        };
        if specs.is_empty() {
            return err("INSERT needs at least one triple");
        }
        match self.index.insert(&specs) {
            Ok(r) => advance_line(&r),
            Err(e) => err(&e),
        }
    }

    fn cmd_delete(&self, args: &str) -> String {
        if args.is_empty() {
            return err("DELETE needs at least one triple");
        }
        // Like INSERT, `;` separates triples — the whole batch costs one
        // full re-chase instead of one per deleted triple.
        let text = split_batch(args);
        let specs = match parse_triple_specs(&text) {
            Ok(s) => s,
            Err(e) => return err(&e.to_string()),
        };
        if specs.is_empty() {
            return err("DELETE needs at least one triple");
        }
        match self.index.delete(&specs) {
            Ok(r) => advance_line(&r),
            Err(e) => err(&e),
        }
    }

    fn cmd_snapshot(&self) -> String {
        match self.index.snapshot_to_disk() {
            Ok((seq, bytes)) => format!("OK snapshot_seq={seq} bytes={bytes}"),
            Err(e) => err(&e),
        }
    }

    fn cmd_compact(&self) -> String {
        match self.index.compact_store() {
            Ok(r) => format!(
                "OK snapshot_seq={} bytes={} truncated_records={} removed_snapshots={}",
                r.snapshot_seq, r.snapshot_bytes, r.truncated_records, r.removed_snapshots
            ),
            Err(e) => err(&e),
        }
    }

    fn cmd_stats(&self) -> String {
        let snap = self.index.snapshot();
        let s = &self.index.stats;
        format!(
            "STATS engine={} threads={} entities={} triples={} values={} \
             base_triples={} delta_triples={} tombstones={} compactions={} clusters={} \
             identified_pairs={} version={} queries={} updates={} incremental_advances={} \
             full_rechases={} noops={} update_rounds={} startup_rounds={} startup_iso={} \
             startup_micros={} durability={} wal_records={} snapshot_seq={}",
            self.index.engine(),
            self.index.engine().threads(),
            snap.graph.num_entities(),
            snap.graph.num_triples(),
            snap.graph.num_values(),
            snap.graph.base_triples(),
            snap.graph.delta_triples(),
            snap.graph.tombstones(),
            s.compactions.load(Ordering::Relaxed),
            snap.num_clusters(),
            snap.eq.num_identified_pairs(),
            snap.version,
            self.queries.load(Ordering::Relaxed),
            self.updates.load(Ordering::Relaxed),
            s.incremental_advances.load(Ordering::Relaxed),
            s.full_rechases.load(Ordering::Relaxed),
            s.noops.load(Ordering::Relaxed),
            s.update_rounds.load(Ordering::Relaxed),
            s.startup_rounds.load(Ordering::Relaxed),
            s.startup_iso_checks.load(Ordering::Relaxed),
            s.startup_micros.load(Ordering::Relaxed),
            self.index
                .durability()
                .map_or("off".to_string(), |m| m.to_string()),
            self.index.wal_records(),
            self.index
                .snapshot_seq()
                .map_or("none".to_string(), |v| v.to_string()),
        )
    }
}

fn err(msg: &str) -> String {
    format!("ERR {msg}")
}

/// Turns `;` batch separators into newlines for the triple parser — but
/// only *outside* quoted values, so `INSERT x:t p "a; b"` keeps its
/// semicolon (same escape handling as the text format's tokenizer).
fn split_batch(args: &str) -> String {
    let mut out = String::with_capacity(args.len());
    let mut in_str = false;
    let mut escaped = false;
    for c in args.chars() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            ';' if !in_str => {
                out.push('\n');
                continue;
            }
            _ => escaped = false,
        }
        out.push(c);
    }
    out
}

fn advance_line(r: &AdvanceReport) -> String {
    format!(
        "OK mode={} triples={} touched={} new_entities={} new_pairs={} rounds={} iso={}",
        r.mode, r.triples, r.touched, r.new_entities, r.new_pairs, r.rounds, r.iso_checks
    )
}

/// Splits `args` into exactly `N` whitespace-separated entity names.
fn names<const N: usize>(args: &str) -> Result<[&str; N], String> {
    let parts: Vec<&str> = args.split_whitespace().collect();
    <[&str; N]>::try_from(parts)
        .map_err(|v: Vec<&str>| err(&format!("expected {N} entity name(s), got {}", v.len())))
}

fn entity(snap: &IndexState, name: &str) -> Result<EntityId, String> {
    snap.graph
        .entity_named(name)
        .ok_or_else(|| err(&format!("unknown entity {name:?}")))
}
