//! The protocol layer: typed [`Request`] → [`Response`] execution, with
//! the line protocol as a thin rendering on top.
//!
//! ```text
//! SAME <a> <b>              are a and b the same entity?  -> YES ... | NO ...
//! DUPS <e>                  e's duplicate cluster         -> DUPS ... | NONE ...
//! REP  <e>                  e's canonical representative  -> REP ...
//! EXPLAIN <a> <b>           verified proof of a <=> b     -> PROOF ... | NOPROOF ...
//! INSERT <s:T> <p> <o>      add triple(s); `;` separates  -> OK mode=incremental ...
//! DELETE <s:T> <p> <o>      remove triple(s); `;` separates; one re-chase
//!                                                         -> OK mode=full-rechase ...
//! ADDKEY key "N" T(x) {...} install a key into the live Σ -> OK added key=...
//! DROPKEY <name>            remove a key from the live Σ  -> OK dropped key=...
//! KEYS                      list declared keys + epoch    -> KEYS n=... ...
//! SNAPSHOT                  persist a point-in-time snapshot
//!                                                         -> OK snapshot_seq=...
//! COMPACT                   snapshot + truncate WAL + prune old snapshots
//!                                                         -> OK snapshot_seq=...
//! STATS                     counters                      -> STATS k=v ...
//! METRICS                   metrics exposition            -> METRICS + text lines
//! PING                                                    -> PONG
//! HELP                                                    -> this table
//! ```
//!
//! Entities are addressed by their external names (`alb1`, not internal
//! ids). Errors answer `ERR <reason>` and never change state; malformed
//! requests — wrong arity, trailing tokens — answer a uniform
//! `ERR usage: <signature>` line. The primary entry point is
//! [`Server::execute`], which maps a typed [`Request`] to a typed
//! [`Response`]; [`Server::handle`] is the line-protocol shim
//! (parse → execute → render) that the TCP framing in [`crate::net`] and
//! scripted sessions drive, and its responses are byte-identical to the
//! pre-typed protocol.

use crate::index::{EmIndex, IndexState, RecoveryReport};
use crate::proto::{MergeEntry, ProofLine, RecordedTrace, Request, Response};
use gk_core::{parse_keys, ChaseEngine, Key, KeySet};
use gk_graph::{parse_triple_specs, EntityId, Graph, GraphView, TripleSpec};
use gk_metrics::{Counter, Gauge, Histogram, Registry, Span};
use gk_store::Durability;
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHasher};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Usage table answered to `HELP` and malformed requests.
pub const PROTOCOL_HELP: &str = "commands:
  SAME <a> <b>          are <a> and <b> identified?
  DUPS <e>              duplicates of <e>
  REP <e>               canonical representative of <e>
  EXPLAIN <a> <b>       verified key-application proof for <a> <=> <b>
  INSERT <s:T> <p> <o>  insert triple(s); separate several with ';'
  DELETE <s:T> <p> <o>  delete triple(s); ';' separates; one re-chase per batch
  ADDKEY key \"N\" T(x) { ... }  install a key into the live Σ (monotone delta chase)
  DROPKEY <name>        remove a key from the live Σ (one full re-chase)
  KEYS                  list the declared keys and the key epoch
  SNAPSHOT              persist a point-in-time snapshot (needs --data-dir)
  COMPACT               snapshot + fold the delta overlay, truncate the WAL, prune old snapshots
  SHARDCHASE <cursor>   (cluster-internal) chase the owned slice; answer the merge log from <cursor>
  MERGES <cursor> [<a> <b> \"<key>\" ; ...]  (cluster-internal) absorb external merges, then as SHARDCHASE
  STATS                 index + traffic counters
  METRICS               full metrics exposition (counters, gauges, latency histograms)
  TRACE <verb ...>      execute <verb> with span tracing; answers the span tree + the answer
  TRACES [n]            dump the flight recorder's retained request traces (newest first)
  PING                  liveness check";

/// The entity-resolution service: a resident [`EmIndex`] plus the request
/// protocol. Cheap to share (`&Server` is `Sync`); all state sits in the
/// index's snapshot-swapped interior.
pub struct Server {
    index: EmIndex,
    queries: AtomicU64,
    updates: AtomicU64,
    /// When the server was built — `STATS` reports `uptime_secs`.
    started: Instant,
    /// Requests running at least this long log an info-level `slow_query`
    /// event; 0 disables the log.
    slow_query_micros: u64,
    /// Per-verb request counters + latency histograms.
    verbs: VerbMetrics,
    /// Connection-lifecycle metrics, recorded by the TCP framing layer
    /// ([`crate::net`]) through the shared server handle.
    pub(crate) net: NetMetrics,
    /// Which front-end serves this instance (0 = not serving, 1 = epoll,
    /// 2 = threaded) — `STATS` reports `net_model=`.
    net_model: AtomicU64,
    /// The `--max-conns` admission bound (0 = unlimited) — `STATS`
    /// reports `max_conns=`.
    max_conns: AtomicU64,
    /// Epoch-keyed answer cache for the hot query verbs (`None` = off).
    cache: Option<AnswerCache>,
    /// Cache hit/miss counters — registered even when the cache is off so
    /// the metrics exposition surface does not depend on configuration.
    cache_metrics: CacheMetrics,
    /// Monotonically increasing request id, assigned to every executed
    /// request (ties `slow_query` events to recorded traces).
    request_ids: AtomicU64,
    /// The in-memory flight recorder (`None` = tracing off).
    recorder: Option<FlightRecorder>,
}

/// A bounded in-memory flight recorder: a ring of the last `cap` request
/// traces plus a ring of the last `cap` traces that crossed the
/// slow-query threshold, so a burst of fast requests cannot evict the
/// slow outliers an operator is hunting.
struct FlightRecorder {
    cap: usize,
    rings: Mutex<RecorderRings>,
    /// Traces captured since startup (not bounded by the rings).
    captured: AtomicU64,
}

#[derive(Default)]
struct RecorderRings {
    recent: VecDeque<PendingTrace>,
    slow: VecDeque<PendingTrace>,
}

/// A retained trace in its cheap in-flight form: the live [`Span`]
/// handle (an `Arc` bump to retain, nothing rendered). The span tree is
/// snapshotted into the wire-form [`RecordedTrace`] only when a `TRACES`
/// dump actually asks for it — recording must stay off the hot path's
/// critical cost, dumping is rare and operator-driven.
#[derive(Clone)]
struct PendingTrace {
    id: u64,
    verb: &'static str,
    slow: bool,
    span: Span,
}

impl PendingTrace {
    fn snapshot(&self) -> RecordedTrace {
        RecordedTrace {
            id: self.id,
            verb: self.verb.to_string(),
            slow: self.slow,
            root: self.span.to_node().expect("recorded spans are enabled"),
        }
    }
}

impl FlightRecorder {
    fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            rings: Mutex::new(RecorderRings::default()),
            captured: AtomicU64::new(0),
        }
    }

    fn record(&self, id: u64, verb: &'static str, slow: bool, span: &Span) {
        self.captured.fetch_add(1, Ordering::Relaxed);
        let mk = || PendingTrace {
            id,
            verb,
            slow,
            span: span.clone(),
        };
        let mut r = self.rings.lock();
        if slow {
            if r.slow.len() >= self.cap {
                r.slow.pop_front();
            }
            r.slow.push_back(mk());
        }
        if r.recent.len() >= self.cap {
            r.recent.pop_front();
        }
        r.recent.push_back(mk());
    }

    /// Up to `n` retained traces, newest first: the recent ring merged
    /// with the slow ring, deduplicated by request id. Span trees are
    /// snapshotted here, outside the rings lock.
    fn dump(&self, n: usize) -> Vec<RecordedTrace> {
        let r = self.rings.lock();
        let mut out: Vec<PendingTrace> = r.recent.iter().cloned().collect();
        for t in &r.slow {
            if !out.iter().any(|o| o.id == t.id) {
                out.push(t.clone());
            }
        }
        drop(r);
        out.sort_by_key(|t| std::cmp::Reverse(t.id));
        out.truncate(n);
        out.iter().map(PendingTrace::snapshot).collect()
    }
}

/// Answer-cache traffic counters.
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
}

impl CacheMetrics {
    fn register(reg: &Registry) -> CacheMetrics {
        CacheMetrics {
            hits: reg.counter(
                "gk_cache_hits_total",
                "Query answers served from the epoch-keyed answer cache.",
            ),
            misses: reg.counter(
                "gk_cache_misses_total",
                "Cacheable queries that missed the answer cache.",
            ),
        }
    }
}

/// A cached answer: the typed response plus its rendered wire form, so a
/// hit on the line protocol skips response construction *and* rendering.
struct CacheEntry {
    resp: Response,
    rendered: String,
}

/// Cache key: `(version, key_epoch, request)`. Every accepted mutation
/// bumps `version` (key changes bump `key_epoch` too), so entries written
/// under an older state can never be returned for the current one — the
/// cache needs no invalidation, stale generations simply stop being
/// addressed and age out of the bounded shards.
type CacheKey = (u64, u64, Request);

/// The outcome of dispatching one request: a freshly computed response, or
/// a shared cache entry (whose rendered form the line protocol reuses).
enum Outcome {
    Fresh(Response),
    Cached(Arc<CacheEntry>),
}

impl Outcome {
    fn response(&self) -> &Response {
        match self {
            Outcome::Fresh(r) => r,
            Outcome::Cached(e) => &e.resp,
        }
    }
}

/// A sharded, bounded, two-generation answer cache.
///
/// Each shard keeps a `hot` and a `cold` hash map: inserts land in `hot`;
/// when `hot` fills up it becomes `cold` (dropping the previous cold
/// generation) — an LRU-ish scheme with O(1) operations and a hard bound
/// of `2 × capacity` entries. Lookups check `hot`, then promote from
/// `cold`.
struct AnswerCache {
    shards: Vec<Mutex<CacheShard>>,
    cap_per_shard: usize,
    capacity: usize,
}

#[derive(Default)]
struct CacheShard {
    hot: FxHashMap<CacheKey, Arc<CacheEntry>>,
    cold: FxHashMap<CacheKey, Arc<CacheEntry>>,
}

const CACHE_SHARDS: usize = 8;

impl AnswerCache {
    fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            cap_per_shard: capacity.div_ceil(CACHE_SHARDS).max(1),
            capacity,
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<CacheShard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % CACHE_SHARDS]
    }

    fn get(&self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        let mut s = self.shard(key).lock();
        if let Some(e) = s.hot.get(key) {
            return Some(Arc::clone(e));
        }
        if let Some(e) = s.cold.remove(key) {
            if s.hot.len() >= self.cap_per_shard {
                s.cold = std::mem::take(&mut s.hot);
            }
            s.hot.insert(key.clone(), Arc::clone(&e));
            return Some(e);
        }
        None
    }

    fn insert(&self, key: CacheKey, entry: Arc<CacheEntry>) {
        let mut s = self.shard(&key).lock();
        if s.hot.len() >= self.cap_per_shard {
            s.cold = std::mem::take(&mut s.hot);
        }
        s.hot.insert(key, entry);
    }

    /// Live entries across all shards and both generations.
    fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.hot.len() + s.cold.len()
            })
            .sum()
    }
}

/// Per-verb request counters and latency histograms, pre-registered at
/// construction so the request hot path never takes the registry lock.
struct VerbMetrics {
    slots: Vec<(&'static str, Counter, Histogram)>,
    /// Requests answered `ERR` (any verb, parse errors excluded — those
    /// never reach [`Server::execute`]).
    errors: Counter,
}

impl VerbMetrics {
    fn register(reg: &Registry) -> VerbMetrics {
        VerbMetrics {
            slots: Request::VERBS
                .iter()
                .map(|&v| {
                    (
                        v,
                        reg.counter(
                            &format!("gk_requests_{v}_total"),
                            &format!("{} requests executed.", v.to_uppercase()),
                        ),
                        reg.histogram(
                            &format!("gk_request_micros_{v}"),
                            &format!("{} request latency, microseconds.", v.to_uppercase()),
                        ),
                    )
                })
                .collect(),
            errors: reg.counter(
                "gk_request_errors_total",
                "Requests answered ERR (parse failures excluded).",
            ),
        }
    }

    /// The (counter, histogram) pair for a verb. Every verb
    /// [`Request::verb`] can return is pre-registered, so the fallback
    /// no-op pair is unreachable in practice.
    fn slot(&self, verb: &str) -> (Counter, Histogram) {
        self.slots
            .iter()
            .find(|(v, _, _)| *v == verb)
            .map(|&(_, c, h)| (c, h))
            .unwrap_or((Counter::noop(), Histogram::noop()))
    }
}

/// Connection-lifecycle metrics the TCP framing records.
pub(crate) struct NetMetrics {
    /// Connections accepted since startup (`gk_connections_total`).
    pub(crate) connections_total: Counter,
    /// Connections currently open (`gk_connections_active`).
    pub(crate) connections_active: Gauge,
    /// Request-read I/O errors (`gk_conn_read_errors_total`).
    pub(crate) read_errors: Counter,
    /// Response-write I/O errors (`gk_conn_write_errors_total`).
    pub(crate) write_errors: Counter,
    /// Connections refused by `--max-conns` admission control
    /// (`gk_conns_rejected_total`).
    pub(crate) rejected: Counter,
    /// Requests parsed and queued for the worker pool but not yet picked
    /// up (`gk_ready_queue_depth`).
    pub(crate) ready_depth: Gauge,
    /// Event-loop `epoll_wait` returns (`gk_eventloop_wakeups_total`).
    pub(crate) wakeups: Counter,
    /// Responses that did not fit the socket buffer in one write and
    /// re-armed `EPOLLOUT` (`gk_conn_write_stalls_total`).
    pub(crate) write_stalls: Counter,
}

impl NetMetrics {
    fn register(reg: &Registry) -> NetMetrics {
        NetMetrics {
            connections_total: reg.counter(
                "gk_connections_total",
                "TCP connections accepted since startup.",
            ),
            connections_active: reg
                .gauge("gk_connections_active", "TCP connections currently open."),
            read_errors: reg.counter(
                "gk_conn_read_errors_total",
                "Connections dropped by a request-read I/O error.",
            ),
            write_errors: reg.counter(
                "gk_conn_write_errors_total",
                "Connections dropped by a response-write I/O error.",
            ),
            rejected: reg.counter(
                "gk_conns_rejected_total",
                "Connections refused with `ERR busy` by --max-conns admission control.",
            ),
            ready_depth: reg.gauge(
                "gk_ready_queue_depth",
                "Requests queued for the worker pool, not yet picked up (epoll model).",
            ),
            wakeups: reg.counter(
                "gk_eventloop_wakeups_total",
                "Event-loop epoll_wait returns since startup.",
            ),
            write_stalls: reg.counter(
                "gk_conn_write_stalls_total",
                "Responses that outgrew the socket buffer and re-armed EPOLLOUT.",
            ),
        }
    }
}

impl Server {
    /// Builds the server: runs the startup chase on `graph` under `keys`
    /// with the default incremental engine.
    pub fn new(graph: Graph, keys: KeySet) -> Self {
        Self::with_engine(graph, keys, ChaseEngine::default())
    }

    /// Like [`Server::new`] but selecting the chase engine (see
    /// [`EmIndex::with_engine`]). `STATS` reports the engine, its thread
    /// count and the cumulative chase rounds.
    pub fn with_engine(graph: Graph, keys: KeySet, engine: ChaseEngine) -> Self {
        Self::from_index(EmIndex::with_engine(graph, keys, engine))
    }

    /// Durable variant of [`Server::with_engine`]: accepted updates are
    /// write-ahead-logged to `dur.dir`, and a data directory with state
    /// recovers (snapshot + WAL replay) instead of re-running the startup
    /// chase — see [`EmIndex::open_durable`].
    pub fn with_durability(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
    ) -> Result<(Self, RecoveryReport), String> {
        let (index, report) = EmIndex::open_durable(graph, keys, engine, dur)?;
        Ok((Self::from_index(index), report))
    }

    /// [`Server::with_durability`] with an explicit delta-compaction
    /// threshold (`0` = off), honored by the recovery replay too — set it
    /// here rather than after construction so a long WAL suffix folds (or
    /// doesn't) according to the operator's choice.
    pub fn with_durability_compacting(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
        compact_threshold: usize,
    ) -> Result<(Self, RecoveryReport), String> {
        let (index, report) =
            EmIndex::open_durable_with(graph, keys, engine, dur, compact_threshold)?;
        Ok((Self::from_index(index), report))
    }

    /// Wraps an already-built index (e.g. one from
    /// [`EmIndex::recover_durable`]) in the protocol layer. The server's
    /// request metrics register against the index's registry, so one
    /// `METRICS` exposition covers both layers.
    pub fn from_index(index: EmIndex) -> Self {
        let reg = index.registry();
        Server {
            verbs: VerbMetrics::register(reg),
            net: NetMetrics::register(reg),
            net_model: AtomicU64::new(0),
            max_conns: AtomicU64::new(0),
            cache: None,
            cache_metrics: CacheMetrics::register(reg),
            index,
            queries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            started: Instant::now(),
            slow_query_micros: 0,
            request_ids: AtomicU64::new(0),
            recorder: None,
        }
    }

    /// The underlying index (for embedding and tests).
    pub fn index(&self) -> &EmIndex {
        &self.index
    }

    /// Records which front-end serves this instance and its admission
    /// bound, for `STATS` (`net_model=`, `max_conns=`). Called by
    /// [`crate::serve_with`]; an embedded (non-serving) server reports
    /// `net_model=none`.
    pub(crate) fn note_net_config(&self, model: crate::net::NetModel, max_conns: usize) {
        let code = match model {
            crate::net::NetModel::Epoll => 1,
            crate::net::NetModel::Threaded => 2,
        };
        self.net_model.store(code, Ordering::Relaxed);
        self.max_conns.store(max_conns as u64, Ordering::Relaxed);
    }

    /// Sets the delta-overlay compaction threshold (see
    /// [`EmIndex::set_compact_threshold`]); call before serving traffic.
    pub fn set_compact_threshold(&mut self, threshold: usize) {
        self.index.set_compact_threshold(threshold);
    }

    /// Logs any request running at least `ms` milliseconds as an
    /// info-level `slow_query` event (verb, argument digest, duration,
    /// serving version and key epoch). `0` disables the log. Call before
    /// serving traffic.
    pub fn set_slow_query_millis(&mut self, ms: u64) {
        self.slow_query_micros = ms.saturating_mul(1000);
    }

    /// Enables the epoch-keyed answer cache for the hot query verbs
    /// (`SAME` / `DUPS` / `REP`) with room for about `entries` answers
    /// (hard bound `2 × entries`); `0` disables it. Answers are keyed by
    /// `(version, key_epoch, request)`, so mutations never require
    /// invalidation — they address a fresh generation. Call before
    /// serving traffic.
    pub fn set_cache_entries(&mut self, entries: usize) {
        self.cache = (entries > 0).then(|| AnswerCache::new(entries));
    }

    /// Enables the trace flight recorder with room for `n` recent traces
    /// plus `n` slow-query traces; `0` disables it (the library default).
    /// With the recorder on, every request executes under a root span and
    /// its finished trace is retained in the bounded rings, dumped by the
    /// `TRACES` verb and `GET /traces` on the metrics endpoint. Call
    /// before serving traffic.
    pub fn set_trace_buffer(&mut self, n: usize) {
        self.recorder = (n > 0).then(|| FlightRecorder::new(n));
    }

    /// Seconds since the server was built (the `STATS` `uptime_secs`
    /// field; also answered by `GET /healthz`).
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Handles one request line, returning the response text (possibly
    /// multi-line, never empty, no trailing newline).
    ///
    /// This is the line-protocol shim over [`Server::execute`]:
    /// [`Request::parse`] → execute → [`Response::render`]. A line that
    /// fails to parse answers the parse error's `ERR` form and never
    /// reaches the index.
    pub fn handle(&self, line: &str) -> String {
        match Request::parse(line) {
            // A cache hit reuses the entry's rendered wire form: the hot
            // path then costs one lookup and one String clone.
            Ok(req) => match self.run(req) {
                Outcome::Fresh(resp) => resp.render(),
                Outcome::Cached(e) => e.rendered.clone(),
            },
            Err(e) => Response::Err(e.to_string()).render(),
        }
    }

    /// Executes one typed request — the primary API. Query verbs run on a
    /// consistent snapshot; update verbs (INSERT / DELETE / ADDKEY /
    /// DROPKEY) go through the index's single-writer path. Errors are
    /// answered as [`Response::Err`] and never change state.
    ///
    /// Every execution counts into the per-verb request counter and
    /// latency histogram; requests answering `ERR` additionally count
    /// into `gk_request_errors_total`, and requests over the configured
    /// [slow-query threshold](Server::set_slow_query_millis) log a
    /// `slow_query` event.
    pub fn execute(&self, req: Request) -> Response {
        match self.run(req) {
            Outcome::Fresh(resp) => resp,
            Outcome::Cached(e) => e.resp.clone(),
        }
    }

    /// [`Server::execute`] keeping the cache-entry form of the outcome,
    /// so [`Server::handle`] can reuse the cached rendering.
    fn run(&self, req: Request) -> Outcome {
        let id = self.request_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let verb = req.verb();
        // The argument digest is captured up front only when the
        // slow-query log could use it — rendering costs a String per
        // request otherwise.
        let args = (self.slow_query_micros > 0).then(|| req.render());
        // A root span exists exactly when someone will read it: the
        // flight recorder, or a TRACE answer. Everywhere else the traced
        // paths run on the disabled span (the compiled no-op).
        let span = if self.recorder.is_some() || matches!(req, Request::Trace { .. }) {
            Span::root(verb)
        } else {
            Span::disabled()
        };
        let t0 = Instant::now();
        let out = self.dispatch(req, id, &span);
        let elapsed = t0.elapsed();
        span.finish();
        let (count, latency) = self.verbs.slot(verb);
        count.inc();
        latency.observe_micros(elapsed);
        if matches!(out.response(), Response::Err(_)) {
            self.verbs.errors.inc();
        }
        let slow =
            self.slow_query_micros > 0 && elapsed.as_micros() as u64 >= self.slow_query_micros;
        if slow {
            if let Some(args) = &args {
                let snap = self.index.snapshot();
                gk_metrics::info!(
                    "slow_query",
                    request_id = id,
                    verb = verb,
                    micros = elapsed.as_micros(),
                    args = digest(args),
                    version = snap.version,
                    key_epoch = snap.key_epoch,
                );
            }
        }
        if let Some(rec) = &self.recorder {
            if span.is_enabled() {
                rec.record(id, verb, slow, &span);
            }
        }
        out
    }

    fn dispatch(&self, req: Request, id: u64, span: &Span) -> Outcome {
        if let Some(cache) = &self.cache {
            if matches!(
                req,
                Request::Same { .. } | Request::Dups { .. } | Request::Rep { .. }
            ) {
                return Outcome::Cached(self.cached_query(cache, req, span));
            }
        }
        Outcome::Fresh(self.exec(req, id, span))
    }

    /// Executes one request with trace context threaded through; cacheable
    /// query verbs arrive here only with the cache off or under `TRACE`
    /// (traced queries bypass the cache — the cache is transparent, so
    /// the answer stays byte-identical).
    fn exec(&self, req: Request, id: u64, span: &Span) -> Response {
        match req {
            Request::Same { a, b } => {
                let snap = self.index.snapshot();
                self.count_query(self.exec_same(&snap, a, b))
            }
            Request::Dups { entity } => {
                let snap = self.index.snapshot();
                self.count_query(self.exec_dups(&snap, entity))
            }
            Request::Rep { entity } => {
                let snap = self.index.snapshot();
                self.count_query(self.exec_rep(&snap, entity))
            }
            Request::Explain { a, b } => self.count_query(self.exec_explain(a, b)),
            Request::Insert { batch } => self.count_update(self.exec_insert(&batch, span)),
            Request::Delete { batch } => self.count_update(self.exec_delete(&batch, span)),
            Request::AddKey { dsl } => self.count_update(self.exec_addkey(&dsl, span)),
            Request::DropKey { name } => self.count_update(self.exec_dropkey(&name, span)),
            Request::ShardChase { cursor } => self.exec_shardchase(cursor, span),
            Request::Merges { cursor, merges } => {
                self.count_update(self.exec_merges(cursor, &merges, span))
            }
            Request::Keys => self.exec_keys(),
            Request::Snapshot => self.exec_snapshot(),
            Request::Compact => self.exec_compact(),
            Request::Stats => self.exec_stats(),
            Request::Metrics => Response::Metrics(self.index.registry().snapshot()),
            Request::Trace { inner } => self.exec_trace(*inner, id, span),
            Request::Traces { n } => self.exec_traces(n),
            Request::Ping => Response::Pong,
            Request::Help => Response::Help(PROTOCOL_HELP.to_string()),
        }
    }

    /// `TRACE <verb ...>`: executes the wrapped request under a child
    /// span named after its verb and answers the rendered tree plus the
    /// unchanged answer. Entity queries (`SAME`/`DUPS`/`REP`) get a deep
    /// EXPLAIN-ANALYZE pass: a `lookup` phase for the answer itself and
    /// an `analyze` phase replaying the chase's candidate funnel around
    /// the queried entities ([`gk_core::analyze_entity`]).
    fn exec_trace(&self, inner: Request, id: u64, span: &Span) -> Response {
        let child = span.child(inner.verb());
        let answer = match inner {
            Request::Same { a, b } => {
                let snap = self.index.snapshot();
                let lookup = child.child("lookup");
                let resp = self.count_query(self.exec_same(&snap, a.clone(), b.clone()));
                lookup.finish();
                self.analyze_phase(&child, &snap, &[&a, &b]);
                resp
            }
            Request::Dups { entity } => {
                let snap = self.index.snapshot();
                let lookup = child.child("lookup");
                let resp = self.count_query(self.exec_dups(&snap, entity.clone()));
                lookup.finish();
                self.analyze_phase(&child, &snap, &[&entity]);
                resp
            }
            Request::Rep { entity } => {
                let snap = self.index.snapshot();
                let lookup = child.child("lookup");
                let resp = self.count_query(self.exec_rep(&snap, entity.clone()));
                lookup.finish();
                self.analyze_phase(&child, &snap, &[&entity]);
                resp
            }
            other => self.exec(other, id, &child),
        };
        child.finish();
        let root = child.to_node().expect("TRACE always runs with tracing on");
        Response::Trace {
            id,
            root,
            answer: Box::new(answer),
        }
    }

    /// The EXPLAIN-ANALYZE phase of a traced entity query: replays the
    /// candidate funnel around each named entity under the terminal
    /// relation (read-only; unknown names are skipped — the lookup phase
    /// already answered the error).
    fn analyze_phase(&self, span: &Span, snap: &IndexState, names: &[&str]) {
        let analyze = span.child("analyze");
        for name in names {
            if let Some(e) = resolve_entity(&snap.graph, name) {
                gk_core::analyze_entity(
                    &snap.graph,
                    &snap.compiled,
                    snap.degrees(),
                    &snap.eq,
                    e,
                    &analyze,
                );
            }
        }
        analyze.finish();
    }

    fn exec_traces(&self, n: Option<usize>) -> Response {
        match &self.recorder {
            None => Response::Err("tracing is off (start with --trace-buffer)".into()),
            Some(rec) => Response::Traces {
                captured: rec.captured.load(Ordering::Relaxed),
                traces: rec.dump(n.unwrap_or(rec.cap)),
            },
        }
    }

    /// Answers a cacheable query verb through the cache. The cache key and
    /// the computed answer derive from the *same* snapshot, so an entry
    /// keyed `(version, key_epoch, request)` always stores the answer that
    /// state produced — concurrent writers advancing the index between the
    /// two would otherwise poison the older generation.
    fn cached_query(&self, cache: &AnswerCache, req: Request, span: &Span) -> Arc<CacheEntry> {
        let snap = self.index.snapshot();
        let key: CacheKey = (snap.version, snap.key_epoch, req);
        if let Some(hit) = cache.get(&key) {
            self.cache_metrics.hits.inc();
            span.count("cache_hit", 1);
            self.queries.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.cache_metrics.misses.inc();
        let resp = match &key.2 {
            Request::Same { a, b } => self.exec_same(&snap, a.clone(), b.clone()),
            Request::Dups { entity } => self.exec_dups(&snap, entity.clone()),
            Request::Rep { entity } => self.exec_rep(&snap, entity.clone()),
            _ => unreachable!("only query verbs are cached"),
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(CacheEntry {
            rendered: resp.render(),
            resp,
        });
        cache.insert(key, Arc::clone(&entry));
        entry
    }

    fn count_query(&self, resp: Response) -> Response {
        self.queries.fetch_add(1, Ordering::Relaxed);
        resp
    }

    fn count_update(&self, resp: Response) -> Response {
        self.updates.fetch_add(1, Ordering::Relaxed);
        resp
    }

    fn exec_same(&self, snap: &IndexState, a: String, b: String) -> Response {
        let (ea, eb) = match (entity(snap, &a), entity(snap, &b)) {
            (Ok(ea), Ok(eb)) => (ea, eb),
            (Err(e), _) | (_, Err(e)) => return e,
        };
        if snap.same(ea, eb) {
            let rep = snap.graph.entity_label(snap.rep(ea));
            Response::Same { a, b, rep }
        } else {
            Response::NotSame { a, b }
        }
    }

    fn exec_dups(&self, snap: &IndexState, entity_name: String) -> Response {
        let e = match entity(snap, &entity_name) {
            Ok(e) => e,
            Err(e) => return e,
        };
        match snap.cluster(e) {
            None => Response::NoDups {
                entity: entity_name,
            },
            Some(class) => Response::Dups {
                entity: entity_name,
                others: class
                    .iter()
                    .filter(|&&m| m != e)
                    .map(|&m| snap.graph.entity_label(m))
                    .collect(),
            },
        }
    }

    fn exec_rep(&self, snap: &IndexState, entity_name: String) -> Response {
        match entity(snap, &entity_name) {
            Ok(e) => Response::Rep {
                rep: snap.graph.entity_label(snap.rep(e)),
            },
            Err(e) => e,
        }
    }

    fn exec_explain(&self, a: String, b: String) -> Response {
        let snap = self.index.snapshot();
        let (ea, eb) = match (entity(&snap, &a), entity(&snap, &b)) {
            (Ok(ea), Ok(eb)) => (ea, eb),
            (Err(e), _) | (_, Err(e)) => return e,
        };
        match snap.explain(ea, eb) {
            None => Response::NoProof { a, b },
            Some(proof) => Response::Proof {
                a,
                b,
                steps: proof
                    .steps
                    .iter()
                    .map(|s| ProofLine {
                        a: snap.graph.entity_label(s.pair.0),
                        b: snap.graph.entity_label(s.pair.1),
                        key: snap.compiled.keys[s.key].name.clone(),
                    })
                    .collect(),
            },
        }
    }

    fn exec_insert(&self, batch: &str, span: &Span) -> Response {
        let specs = match parse_batch(batch, "INSERT") {
            Ok(s) => s,
            Err(e) => return Response::Err(e),
        };
        match self.index.insert_traced(&specs, span) {
            Ok(r) => Response::Updated(r),
            Err(e) => Response::Err(e),
        }
    }

    fn exec_delete(&self, batch: &str, span: &Span) -> Response {
        let specs = match parse_batch(batch, "DELETE") {
            Ok(s) => s,
            Err(e) => return Response::Err(e),
        };
        match self.index.delete_traced(&specs, span) {
            Ok(r) => Response::Updated(r),
            Err(e) => Response::Err(e),
        }
    }

    fn exec_addkey(&self, dsl: &str, span: &Span) -> Response {
        let keys: Vec<Key> = match parse_keys(dsl) {
            Ok(k) => k,
            Err(e) => return Response::Err(format!("key does not parse: {e}")),
        };
        if keys.len() != 1 {
            return Response::Err(format!(
                "ADDKEY takes exactly one key definition, got {}",
                keys.len()
            ));
        }
        match self.index.add_keys_traced(keys, span) {
            Ok(c) => Response::KeyAdded(c),
            Err(e) => Response::Err(e),
        }
    }

    fn exec_dropkey(&self, name: &str, span: &Span) -> Response {
        match self.index.drop_key_traced(name, span) {
            Ok(c) => Response::KeyDropped(c),
            Err(e) => Response::Err(e),
        }
    }

    /// `SHARDCHASE <cursor>`: re-chase this shard's owned slice to a local
    /// fixpoint, then answer the merge log from `cursor` on. The chase is
    /// a no-op at fixpoint (no version bump), so the coordinator polls it
    /// freely each round.
    fn exec_shardchase(&self, cursor: u64, span: &Span) -> Response {
        self.shard_exchange(cursor, &[], span)
    }

    /// `MERGES <cursor> <entries>`: absorb external merges shipped by the
    /// coordinator, re-chase the owned slice seeded with them, answer the
    /// merge log from `cursor` on.
    fn exec_merges(&self, cursor: u64, merges: &[MergeEntry], span: &Span) -> Response {
        self.shard_exchange(cursor, merges, span)
    }

    /// The shared body of the two cluster verbs: absorb (possibly zero)
    /// externals + slice chase + merge-log read-back.
    fn shard_exchange(&self, cursor: u64, merges: &[MergeEntry], span: &Span) -> Response {
        if self.index.shard_role().is_none() {
            return Response::Err(
                "this server is not a cluster shard (start with serve --shard-id I/N)".into(),
            );
        }
        let entries: Vec<(String, String, String)> = merges
            .iter()
            .map(|m| (m.a.clone(), m.b.clone(), m.key.clone()))
            .collect();
        if let Err(e) = self.index.absorb_merges(&entries, span) {
            return Response::Err(e);
        }
        let (log, next) = self.index.merge_log(cursor);
        Response::MergeLog {
            next,
            merges: log
                .into_iter()
                .map(|(a, b, key)| MergeEntry { a, b, key })
                .collect(),
        }
    }

    fn exec_keys(&self) -> Response {
        let snap = self.index.snapshot();
        Response::KeyList {
            active: snap.compiled.len(),
            epoch: snap.key_epoch,
            keys: snap.keys.keys().iter().map(Key::to_line).collect(),
        }
    }

    fn exec_snapshot(&self) -> Response {
        match self.index.snapshot_to_disk() {
            Ok((seq, bytes)) => Response::Snapshotted { seq, bytes },
            Err(e) => Response::Err(e),
        }
    }

    fn exec_compact(&self) -> Response {
        match self.index.compact_store() {
            Ok(r) => Response::Compacted {
                seq: r.snapshot_seq,
                bytes: r.snapshot_bytes,
                truncated_records: r.truncated_records,
                removed_snapshots: r.removed_snapshots,
            },
            Err(e) => Response::Err(e),
        }
    }

    fn exec_stats(&self) -> Response {
        let snap = self.index.snapshot();
        let s = &self.index.stats;
        let mut pairs: Vec<(String, String)> = Vec::with_capacity(35);
        let mut push = |k: &str, v: String| pairs.push((k.to_string(), v));
        push("engine", self.index.engine().to_string());
        push("threads", self.index.engine().threads().to_string());
        match self.index.shard_role() {
            Some(role) => {
                push("role", "shard".to_string());
                push("shard_id", role.shard_id.to_string());
                push("num_shards", role.num_shards.to_string());
            }
            None => {
                push("role", "standalone".to_string());
                push("shard_id", "0".to_string());
                push("num_shards", "1".to_string());
            }
        }
        push("entities", snap.graph.num_entities().to_string());
        push("triples", snap.graph.num_triples().to_string());
        push("values", snap.graph.num_values().to_string());
        push("base_triples", snap.graph.base_triples().to_string());
        push("delta_triples", snap.graph.delta_triples().to_string());
        push("tombstones", snap.graph.tombstones().to_string());
        push("compactions", s.compactions.get().to_string());
        push("active_keys", snap.compiled.len().to_string());
        push("key_epoch", snap.key_epoch.to_string());
        push("clusters", snap.num_clusters().to_string());
        push(
            "identified_pairs",
            snap.eq.num_identified_pairs().to_string(),
        );
        push("version", snap.version.to_string());
        push("queries", self.queries.load(Ordering::Relaxed).to_string());
        push("updates", self.updates.load(Ordering::Relaxed).to_string());
        push(
            "connections_total",
            self.net.connections_total.get().to_string(),
        );
        push(
            "connections_active",
            self.net.connections_active.get().to_string(),
        );
        push(
            "net_model",
            match self.net_model.load(Ordering::Relaxed) {
                1 => "epoll",
                2 => "threaded",
                _ => "none",
            }
            .to_string(),
        );
        push(
            "max_conns",
            self.max_conns.load(Ordering::Relaxed).to_string(),
        );
        push("uptime_secs", self.started.elapsed().as_secs().to_string());
        push(
            "incremental_advances",
            s.incremental_advances.get().to_string(),
        );
        push("full_rechases", s.full_rechases.get().to_string());
        push("noops", s.noops.get().to_string());
        push("update_rounds", s.update_rounds.get().to_string());
        push("startup_rounds", s.startup_rounds.get().to_string());
        push("startup_iso", s.startup_iso_checks.get().to_string());
        push("startup_micros", s.startup_micros.get().to_string());
        push(
            "durability",
            self.index
                .durability()
                .map_or("off".to_string(), |m| m.to_string()),
        );
        push("wal_records", self.index.wal_records().to_string());
        push(
            "snapshot_seq",
            self.index
                .snapshot_seq()
                .map_or("none".to_string(), |v| v.to_string()),
        );
        push(
            "cache_capacity",
            self.cache.as_ref().map_or(0, |c| c.capacity).to_string(),
        );
        push(
            "cache_entries",
            self.cache
                .as_ref()
                .map_or(0, AnswerCache::entries)
                .to_string(),
        );
        push("cache_hits", self.cache_metrics.hits.get().to_string());
        push("cache_misses", self.cache_metrics.misses.get().to_string());
        push(
            "traces_captured",
            self.recorder
                .as_ref()
                .map_or(0, |r| r.captured.load(Ordering::Relaxed))
                .to_string(),
        );
        Response::Stats(pairs)
    }
}

/// The first ~128 chars of a rendered request — enough to identify a slow
/// query in the log without spilling a megabyte `INSERT` batch into it.
fn digest(line: &str) -> String {
    const MAX: usize = 128;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut d: String = line.chars().take(MAX).collect();
        d.push('…');
        d
    }
}

/// Splits a `;`-separated batch and parses the triple specs, with the
/// protocol's error wording.
fn parse_batch(batch: &str, verb: &str) -> Result<Vec<TripleSpec>, String> {
    let text = split_batch(batch);
    let specs = parse_triple_specs(&text).map_err(|e| e.to_string())?;
    if specs.is_empty() {
        return Err(format!("{verb} needs at least one triple"));
    }
    Ok(specs)
}

/// Turns `;` batch separators into newlines for the triple parser — but
/// only *outside* quoted values, so `INSERT x:t p "a; b"` keeps its
/// semicolon (same escape handling as the text format's tokenizer).
fn split_batch(args: &str) -> String {
    let mut out = String::with_capacity(args.len());
    let mut in_str = false;
    let mut escaped = false;
    for c in args.chars() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            ';' if !in_str => {
                out.push('\n');
                continue;
            }
            _ => escaped = false,
        }
        out.push(c);
    }
    out
}

fn entity(snap: &IndexState, name: &str) -> Result<EntityId, Response> {
    resolve_entity(&snap.graph, name)
        .ok_or_else(|| Response::Err(format!("unknown entity {name:?}")))
}

/// Resolves a query argument to an entity: its registered external name,
/// or — so every label the server prints is also addressable — the
/// canonical `e<id>` form [`GraphView::entity_label`] falls back to for
/// unnamed entities. Registered names always win, and the fallback only
/// accepts the exact label the server would print (no aliases for named
/// entities, no `e007` spellings).
fn resolve_entity<V: GraphView>(g: &V, name: &str) -> Option<EntityId> {
    g.entity_named(name).or_else(|| {
        let id: u32 = name.strip_prefix('e')?.parse().ok()?;
        let e = EntityId(id);
        ((id as usize) < g.num_entities() && g.entity_label(e) == name).then_some(e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::KeySet;
    use gk_graph::parse_graph;

    const KEYS: &str = r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#;
    const GRAPH: &str = r#"
        a1:album name_of "Anthology 2"
        a1:album release_year "1996"
        a2:album name_of "Anthology 2"
        a2:album release_year "1996"
        a3:album name_of "Other"
    "#;

    fn cached_server(entries: usize) -> Server {
        let mut s = Server::new(parse_graph(GRAPH).unwrap(), KeySet::parse(KEYS).unwrap());
        s.set_cache_entries(entries);
        s
    }

    #[test]
    fn repeated_queries_hit_the_cache_with_identical_answers() {
        let s = cached_server(64);
        let first = s.handle("SAME a1 a2");
        let again = s.handle("SAME a1 a2");
        assert_eq!(first, again);
        assert!(first.starts_with("YES"));
        assert_eq!(s.cache_metrics.misses.get(), 1);
        assert_eq!(s.cache_metrics.hits.get(), 1);
        // A different request is its own entry.
        let _ = s.handle("DUPS a1");
        assert_eq!(s.cache_metrics.misses.get(), 2);
    }

    #[test]
    fn deterministic_errors_are_cached_too() {
        // An unknown entity is a property of the snapshot, so its ERR is
        // as cacheable as any other answer.
        let s = cached_server(64);
        let first = s.handle("SAME ghost a1");
        let again = s.handle("SAME ghost a1");
        assert_eq!(first, again);
        assert!(first.starts_with("ERR unknown entity"));
        assert_eq!(s.cache_metrics.hits.get(), 1);
    }

    #[test]
    fn every_mutation_invalidates_by_keying() {
        let s = cached_server(64);
        assert!(s.handle("SAME a1 a3").starts_with("NO"));
        // INSERT bumps the version: the same request misses and recomputes
        // against the new snapshot.
        let resp =
            s.handle(r#"INSERT a3:album name_of "Anthology 2" ; a3:album release_year "1996""#);
        assert!(resp.starts_with("OK"), "{resp}");
        assert!(s.handle("SAME a1 a3").starts_with("YES"));
        assert_eq!(s.cache_metrics.hits.get(), 0);
        assert_eq!(s.cache_metrics.misses.get(), 2);
        // DROPKEY bumps version + epoch: cached YES does not survive.
        assert!(s.handle("DROPKEY Q2").starts_with("OK"));
        assert!(s.handle("SAME a1 a3").starts_with("NO"));
    }

    #[test]
    fn cache_size_stays_within_the_hard_bound() {
        // Capacity 8 over 8 shards: each shard holds at most
        // 2 * cap_per_shard entries (hot + cold generation).
        let s = cached_server(8);
        for i in 0..200 {
            let _ = s.handle(&format!("DUPS e{i}"));
        }
        let entries = s.cache.as_ref().unwrap().entries();
        assert!(entries <= 16, "cache grew to {entries} entries");
    }

    #[test]
    fn zero_entries_disables_the_cache() {
        let s = cached_server(0);
        assert!(s.cache.is_none());
        let _ = s.handle("SAME a1 a2");
        let _ = s.handle("SAME a1 a2");
        assert_eq!(s.cache_metrics.hits.get(), 0);
        assert_eq!(s.cache_metrics.misses.get(), 0);
    }

    #[test]
    fn trace_wraps_the_answer_unchanged_even_past_the_cache() {
        let s = cached_server(64);
        let direct = s.handle("DUPS a1");
        let _ = s.handle("DUPS a1"); // warm the cache: 1 miss, 1 hit
        let traced = s.execute(Request::parse("TRACE DUPS a1").unwrap());
        let Response::Trace { id, root, answer } = traced else {
            panic!("expected a Trace response");
        };
        assert!(id >= 3);
        // Byte-identical answer although the traced run bypassed the cache.
        assert_eq!(answer.render(), direct);
        assert_eq!(s.cache_metrics.misses.get(), 1);
        assert_eq!(root.name, "dups");
        let phases: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(phases, ["lookup", "analyze"]);
        // The analyze phase replayed a1's candidate funnel: a2 and a3 are
        // the same-type partners, a2 survives to the iso check.
        // Totals sit on the analyze span itself (`counter_deep` would
        // double-count the per-key children that break them down).
        let analyze = &root.children[1];
        assert_eq!(analyze.counter("candidates"), Some(2));
        assert_eq!(analyze.counter("iso_checks"), Some(1));
        assert_eq!(analyze.counter("matched"), Some(1));
    }

    #[test]
    fn traced_insert_records_the_mutation_phases() {
        let s = cached_server(0);
        let resp =
            s.execute(Request::parse(r#"TRACE INSERT a3:album release_year "1996""#).unwrap());
        let Response::Trace { root, answer, .. } = resp else {
            panic!("expected a Trace response");
        };
        assert!(answer.render().starts_with("OK"), "{}", answer.render());
        assert_eq!(root.name, "insert");
        let phases: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert!(phases.contains(&"validate"), "{phases:?}");
        assert!(phases.contains(&"apply_batch"), "{phases:?}");
        assert!(
            phases.contains(&"delta_chase") || phases.contains(&"full_rechase"),
            "{phases:?}"
        );
        // The inserted year completes Q2 on a3 ("Other" ≠ "Anthology 2",
        // so the chase considered it without merging).
        assert!(root.counter_deep("touched") >= 1);
    }

    #[test]
    fn recorder_captures_every_request_and_dumps_newest_first() {
        let mut s = Server::new(parse_graph(GRAPH).unwrap(), KeySet::parse(KEYS).unwrap());
        s.set_trace_buffer(8);
        assert_eq!(s.handle("PING"), "PONG");
        assert!(s.handle("DUPS a1").starts_with("DUPS"));
        let resp = s.execute(Request::parse("TRACES").unwrap());
        let Response::Traces { captured, traces } = resp else {
            panic!("expected a Traces response");
        };
        // The TRACES request itself records only after taking the dump.
        assert_eq!(captured, 2);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].verb, "dups");
        assert_eq!(traces[1].verb, "ping");
        assert!(traces[0].id > traces[1].id, "newest first");
        assert!(traces.iter().all(|t| !t.slow));
        assert!(s.handle("STATS").contains("traces_captured=3"));
        // TRACES 1 truncates to the single newest trace.
        let Response::Traces { traces, .. } = s.execute(Request::parse("TRACES 1").unwrap()) else {
            panic!("expected a Traces response");
        };
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].verb, "stats");
    }

    #[test]
    fn traces_err_when_tracing_is_off() {
        let s = cached_server(0);
        assert_eq!(
            s.handle("TRACES"),
            "ERR tracing is off (start with --trace-buffer)"
        );
        // TRACE still works without the recorder — the span exists for the
        // duration of the request only.
        assert!(s.handle("TRACE PING").contains("PONG"));
        assert!(s.handle("STATS").contains("traces_captured=0"));
    }

    #[test]
    fn recorder_rings_stay_bounded_and_protect_slow_traces() {
        fn finished_span() -> Span {
            let s = Span::root("ping");
            s.finish();
            s
        }
        let rec = FlightRecorder::new(2);
        rec.record(1, "ping", true, &finished_span());
        for id in 2..=5 {
            rec.record(id, "ping", false, &finished_span());
        }
        assert_eq!(rec.captured.load(Ordering::Relaxed), 5);
        // Recent ring kept 4 and 5; the slow ring still holds 1 although
        // four fast requests followed it.
        let ids: Vec<u64> = rec.dump(10).iter().map(|t| t.id).collect();
        assert_eq!(ids, [5, 4, 1]);
        // A trace in both rings dumps once (dedup by id), and `n` caps
        // the dump. The dump snapshots the retained span, wire-ready.
        rec.record(6, "ping", true, &finished_span());
        let dumped = rec.dump(10);
        let ids: Vec<u64> = dumped.iter().map(|t| t.id).collect();
        assert_eq!(ids, [6, 5, 1]);
        assert_eq!(dumped[0].verb, "ping");
        assert_eq!(dumped[0].root.name, "ping");
        assert_eq!(rec.dump(2).len(), 2);
    }
}
