//! The resident entity-matching index: `chase(G, Σ)` held in memory,
//! advanced incrementally as triples stream in.
//!
//! Readers never block on writers: the index keeps its whole queryable
//! state — graph, compiled keys, terminal `Eq`, canonical-representative
//! map, duplicate clusters — in one immutable [`IndexState`] behind an
//! `Arc`, and queries clone the `Arc` out of a `parking_lot::RwLock` whose
//! critical section is that clone. Updates build the *next* state off to
//! the side (insert-only batches advance via [`chase_incremental`]; a
//! deletion batch falls back to **one** full re-chase, since deletions are
//! not monotone) and swap it in under the write lock. A query therefore
//! always sees either the complete pre-update or the complete post-update
//! `Eq` — never a torn intermediate.
//!
//! ## The write path is O(batch), not O(|G|)
//!
//! The served graph is an [`OverlayGraph`]: an immutable base CSR shared
//! behind an `Arc` across versions plus a bounded delta segment (appended
//! triples in sorted per-entity adjacency, tombstones for deletions,
//! id-stable interner/entity extensions). An `INSERT` batch clones the
//! delta (O(delta), never O(|G|)), appends, and runs the monotone delta
//! chase; a `DELETE` tombstones and re-chases *through the view* without
//! rebuilding the CSR. Once `delta_triples + tombstones` crosses the
//! [compaction threshold](EmIndex::set_compact_threshold) — or when
//! `COMPACT` runs — the delta is folded into a fresh base CSR (the only
//! place the old rebuild-per-write cost survives, now amortized).
//!
//! ## Durability
//!
//! With a [`Durability`] config the index writes through a
//! [`gk_store::Store`]: every accepted update batch is appended to the
//! write-ahead log **before** the new snapshot is swapped in, so an
//! acknowledged update survives a process crash (machine-crash durability
//! is governed by the configured [`gk_store::FsyncMode`]: `always` loses
//! nothing, the default `batch` bounds the loss to one sync window).
//! [`EmIndex::open_durable`]
//! recovers by loading the newest valid on-disk snapshot and replaying the
//! WAL suffix through the incremental chase (or one full chase when the
//! suffix deletes triples), turning restart cost from `O(chase)` into
//! `O(load + replay)`.

use gk_core::{
    chase_incremental, chase_incremental_traced, chase_shard_slice, norm, parse_keys, prove,
    verify, write_keys, ChaseEngine, ChaseMetrics, ChaseOrder, ChaseStep, CompiledKeySet, EqRel,
    Key, KeySet, Proof, ShardRole,
};
use gk_graph::{
    DegreeBuckets, EntityId, Graph, GraphView, Obj, ObjSpec, OverlayGraph, Triple, TripleSpec,
};
use gk_metrics::{Counter, Gauge, Histogram, Registry, Span};
use gk_store::{
    CompactReport, Durability, FsyncMode, Recovered, SnapshotData, Store, WalOp, WalRecord,
};
use parking_lot::{Mutex, RwLock};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;
use std::time::Instant;

/// How an update advanced the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceMode {
    /// Insert-only batch: delta chase seeded from the previous `Eq`.
    Incremental,
    /// Deletion (non-monotone): the whole chase was recomputed.
    FullRechase,
    /// The batch added nothing new (all triples already present).
    NoOp,
}

impl AdvanceMode {
    /// The protocol spelling (the `mode=` field of `OK` answers).
    pub fn name(self) -> &'static str {
        match self {
            AdvanceMode::Incremental => "incremental",
            AdvanceMode::FullRechase => "full-rechase",
            AdvanceMode::NoOp => "noop",
        }
    }

    /// Parses the protocol spelling back (inverse of [`AdvanceMode::name`]).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "incremental" => Ok(AdvanceMode::Incremental),
            "full-rechase" => Ok(AdvanceMode::FullRechase),
            "noop" => Ok(AdvanceMode::NoOp),
            other => Err(format!("unknown advance mode {other:?}")),
        }
    }
}

impl std::fmt::Display for AdvanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one update did to the index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdvanceReport {
    /// Which path advanced the index.
    pub mode: AdvanceMode,
    /// Triples in the batch (after text parsing).
    pub triples: usize,
    /// Entities incident to the new triples.
    pub touched: usize,
    /// Entities created by the batch.
    pub new_entities: usize,
    /// Identified pairs added to the closure by this advance.
    pub new_pairs: usize,
    /// Chase rounds performed.
    pub rounds: usize,
    /// Subgraph-isomorphism checks performed.
    pub iso_checks: u64,
}

/// What an [`EmIndex::add_keys`] or [`EmIndex::drop_key`] did to the live
/// Σ (and, through the re-chase, to the closure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyChange {
    /// The declared name of the key added or dropped.
    pub name: String,
    /// Declared keys after the change.
    pub keys: usize,
    /// Active (compiled) keys after the change.
    pub active_keys: usize,
    /// The key epoch after the change (bumped by every ADDKEY/DROPKEY).
    pub key_epoch: u64,
    /// Identified pairs in the closure after the change.
    pub identified_pairs: usize,
    /// Chase rounds the change cost.
    pub rounds: usize,
    /// Isomorphism checks the change cost.
    pub iso_checks: u64,
}

/// How a durable startup obtained its serving state.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// True when state came from disk; false when the data directory was
    /// fresh and the index bootstrapped with a full startup chase.
    pub recovered: bool,
    /// Version of the snapshot used (present whenever `recovered`).
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub wal_replayed: usize,
    /// How the replayed suffix advanced the snapshot state.
    pub replay_mode: AdvanceMode,
    /// Whether a torn or corrupt WAL tail was discarded.
    pub wal_torn: bool,
    /// Snapshot files skipped because they failed validation.
    pub skipped_snapshots: usize,
}

/// The accumulated chase-step log, stored as a persistent (structurally
/// shared) list of segments: every advance appends one segment, and a new
/// [`IndexState`] shares the whole prefix through `Arc`s — so the
/// `O(delta)` incremental insert path never copies the `O(history)` log.
/// Materializing the flat list ([`StepLog::to_vec`]) happens only when a
/// snapshot is cut.
#[derive(Clone, Default)]
pub struct StepLog {
    head: Option<Arc<StepSeg>>,
    len: usize,
}

struct StepSeg {
    steps: Vec<ChaseStep>,
    prev: Option<Arc<StepSeg>>,
}

impl StepLog {
    /// A log holding `steps` as its single segment.
    fn from_steps(steps: Vec<ChaseStep>) -> Self {
        StepLog::default().appended(steps)
    }

    /// This log plus one more segment; the prefix is shared, not copied.
    fn appended(&self, steps: Vec<ChaseStep>) -> Self {
        if steps.is_empty() {
            return self.clone();
        }
        StepLog {
            len: self.len + steps.len(),
            head: Some(Arc::new(StepSeg {
                steps,
                prev: self.head.clone(),
            })),
        }
    }

    /// Total steps across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no step has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materializes the log in application order.
    pub fn to_vec(&self) -> Vec<ChaseStep> {
        let mut segs = Vec::new();
        let mut cur = self.head.as_deref();
        while let Some(seg) = cur {
            segs.push(&seg.steps);
            cur = seg.prev.as_deref();
        }
        let mut out = Vec::with_capacity(self.len);
        for seg in segs.into_iter().rev() {
            out.extend_from_slice(seg);
        }
        out
    }
}

impl Drop for StepSeg {
    fn drop(&mut self) {
        // Unlink iteratively: a long singly-linked chain dropped
        // recursively would overflow the stack once the index has seen
        // enough advances.
        let mut cur = self.prev.take();
        while let Some(arc) = cur {
            match Arc::try_unwrap(arc) {
                Ok(mut seg) => cur = seg.prev.take(),
                Err(_) => break, // still shared by a live snapshot
            }
        }
    }
}

/// One immutable, fully indexed version of the resolution state.
pub struct IndexState {
    /// The graph this version was chased on: a shared frozen base plus
    /// this version's delta overlay.
    pub graph: OverlayGraph,
    /// The declared key set Σ this version serves. Σ is versioned state —
    /// `ADDKEY`/`DROPKEY` swap in a new set exactly like a triple update
    /// swaps in a new graph — so a snapshot always pairs a graph with the
    /// Σ it was chased under.
    pub keys: Arc<KeySet>,
    /// Σ compiled against [`IndexState::graph`].
    pub compiled: CompiledKeySet,
    /// The terminal `Eq` — `chase(G, Σ)`.
    pub eq: EqRel,
    /// Monotonically increasing version, bumped by every applied update.
    pub version: u64,
    /// Runtime key-management operations applied since bootstrap.
    pub key_epoch: u64,
    /// Accumulated chase steps: every merge in [`IndexState::eq`] with the
    /// key that certified it. This is the generating log a snapshot
    /// persists — replaying it reproduces the closure.
    steps: StepLog,
    /// Per-entity degree buckets over [`IndexState::graph`], maintained
    /// incrementally across updates (rebuilt only at startup/recovery).
    /// Powers degree-guided candidate pruning and the filtered `ADDKEY`
    /// wake set.
    degrees: DegreeBuckets,
    /// Canonical representative (smallest member id) per entity.
    reps: Vec<EntityId>,
    /// Non-trivial clusters, keyed by canonical representative.
    dups: FxHashMap<EntityId, Vec<EntityId>>,
}

impl IndexState {
    #[allow(clippy::too_many_arguments)]
    fn build(
        graph: OverlayGraph,
        keys: Arc<KeySet>,
        compiled: CompiledKeySet,
        eq: EqRel,
        steps: StepLog,
        degrees: DegreeBuckets,
        version: u64,
        key_epoch: u64,
    ) -> Self {
        let mut reps: Vec<EntityId> = graph.entities().collect();
        let mut dups = FxHashMap::default();
        for class in eq.classes() {
            let rep = class[0]; // classes are sorted: min member
            for &e in &class {
                reps[e.idx()] = rep;
            }
            dups.insert(rep, class);
        }
        debug_assert_eq!(degrees.len(), graph.num_entities());
        IndexState {
            graph,
            keys,
            compiled,
            eq,
            version,
            key_epoch,
            steps,
            degrees,
            reps,
            dups,
        }
    }

    /// Canonical representative of `e` (itself when unduplicated).
    pub fn rep(&self, e: EntityId) -> EntityId {
        self.reps[e.idx()]
    }

    /// Are `a` and `b` identified under the terminal `Eq`?
    pub fn same(&self, a: EntityId, b: EntityId) -> bool {
        self.rep(a) == self.rep(b)
    }

    /// All members of `e`'s cluster (sorted), or `None` when `e` has no
    /// duplicates.
    pub fn cluster(&self, e: EntityId) -> Option<&[EntityId]> {
        self.dups.get(&self.rep(e)).map(Vec::as_slice)
    }

    /// Number of non-trivial clusters.
    pub fn num_clusters(&self) -> usize {
        self.dups.len()
    }

    /// The accumulated chase-step log (merge log with key attribution).
    pub fn steps(&self) -> &StepLog {
        &self.steps
    }

    /// The maintained per-entity degree buckets for this version's graph.
    pub fn degrees(&self) -> &DegreeBuckets {
        &self.degrees
    }

    /// A verified proof that the chase identifies `(a, b)`, or `None`.
    pub fn explain(&self, a: EntityId, b: EntityId) -> Option<Proof> {
        let proof = prove(&self.graph, &self.compiled, a, b)?;
        verify(&self.graph, &self.compiled, &proof).expect("prove() must emit a verifiable proof");
        Some(proof)
    }
}

/// Cumulative ingest-path instrumentation: a thin view over the index's
/// [`Registry`] — every field is a `Copy` handle to a registry cell, so
/// updates are lock-free and the same numbers surface through `STATS` and
/// through the `METRICS` exposition without double bookkeeping.
#[derive(Clone, Copy)]
pub struct IndexStats {
    /// Applied insert batches that advanced via the incremental path
    /// (`gk_updates_incremental_total`).
    pub incremental_advances: Counter,
    /// Updates that fell back to a full re-chase
    /// (`gk_updates_full_rechase_total`).
    pub full_rechases: Counter,
    /// Batches that were no-ops (`gk_updates_noop_total`).
    pub noops: Counter,
    /// Chase rounds across all applied updates, delta and full
    /// (`gk_update_rounds_total`).
    pub update_rounds: Counter,
    /// Delta-overlay compactions folded into a fresh base CSR — threshold-
    /// triggered and `COMPACT`-triggered alike (`gk_compactions_total`).
    pub compactions: Counter,
    /// Rounds of the startup chase (or of the recovery replay)
    /// (`gk_startup_rounds`).
    pub startup_rounds: Gauge,
    /// Isomorphism checks of the startup chase (or recovery replay)
    /// (`gk_startup_iso_checks`).
    pub startup_iso_checks: Gauge,
    /// Startup wall-clock (chase or snapshot-load + replay), microseconds
    /// (`gk_startup_micros`).
    pub startup_micros: Gauge,
    /// Wall-clock of each monotone delta chase, microseconds
    /// (`gk_ingest_delta_chase_micros`).
    pub delta_chase_micros: Histogram,
    /// Wall-clock of each full re-chase on the update path, microseconds
    /// (`gk_ingest_full_rechase_micros`).
    pub full_rechase_micros: Histogram,
    /// Wall-clock of each write-ahead-log append (including any fsync the
    /// configured mode performs), microseconds (`gk_wal_fsync_micros`).
    pub wal_fsync_micros: Histogram,
    /// Wall-clock of each delta-overlay compaction, microseconds
    /// (`gk_compact_micros`).
    pub compact_micros: Histogram,
    /// Per-invocation chase totals (rounds, candidate pairs, iso checks,
    /// wake-ups) under the `gk_chase_` prefix.
    pub chase: ChaseMetrics,
}

impl IndexStats {
    /// Registers every ingest metric in `reg` (idempotent: re-registering
    /// against the same registry returns the same cells).
    pub fn register(reg: &Registry) -> IndexStats {
        IndexStats {
            incremental_advances: reg.counter(
                "gk_updates_incremental_total",
                "Insert batches advanced via the monotone delta chase.",
            ),
            full_rechases: reg.counter(
                "gk_updates_full_rechase_total",
                "Updates that fell back to a full re-chase.",
            ),
            noops: reg.counter("gk_updates_noop_total", "Update batches that were no-ops."),
            update_rounds: reg.counter(
                "gk_update_rounds_total",
                "Chase rounds across all applied updates.",
            ),
            compactions: reg.counter(
                "gk_compactions_total",
                "Delta-overlay compactions folded into a fresh base CSR.",
            ),
            startup_rounds: reg.gauge(
                "gk_startup_rounds",
                "Rounds of the startup chase or recovery replay.",
            ),
            startup_iso_checks: reg.gauge(
                "gk_startup_iso_checks",
                "Isomorphism checks of the startup chase or recovery replay.",
            ),
            startup_micros: reg.gauge(
                "gk_startup_micros",
                "Startup wall-clock (chase or snapshot-load + replay), microseconds.",
            ),
            delta_chase_micros: reg.histogram(
                "gk_ingest_delta_chase_micros",
                "Wall-clock of each monotone delta chase, microseconds.",
            ),
            full_rechase_micros: reg.histogram(
                "gk_ingest_full_rechase_micros",
                "Wall-clock of each full re-chase on the update path, microseconds.",
            ),
            wal_fsync_micros: reg.histogram(
                "gk_wal_fsync_micros",
                "Wall-clock of each WAL append (including fsync), microseconds.",
            ),
            compact_micros: reg.histogram(
                "gk_compact_micros",
                "Wall-clock of each delta-overlay compaction, microseconds.",
            ),
            chase: ChaseMetrics::register(reg, "gk_chase"),
        }
    }

    /// Handles that record nothing (for indexes without a registry; the
    /// compiled no-op path the overhead bench compares against).
    pub const fn noop() -> IndexStats {
        IndexStats {
            incremental_advances: Counter::noop(),
            full_rechases: Counter::noop(),
            noops: Counter::noop(),
            update_rounds: Counter::noop(),
            compactions: Counter::noop(),
            startup_rounds: Gauge::noop(),
            startup_iso_checks: Gauge::noop(),
            startup_micros: Gauge::noop(),
            delta_chase_micros: Histogram::noop(),
            full_rechase_micros: Histogram::noop(),
            wal_fsync_micros: Histogram::noop(),
            compact_micros: Histogram::noop(),
            chase: ChaseMetrics::noop(),
        }
    }
}

impl Default for IndexStats {
    fn default() -> Self {
        IndexStats::noop()
    }
}

/// The resident index: the current [`IndexState`] (graph + Σ + closure)
/// and the update path. Many readers, one writer.
pub struct EmIndex {
    engine: ChaseEngine,
    state: RwLock<Arc<IndexState>>,
    /// Serializes writers so compute can happen outside the state lock.
    ingest: Mutex<()>,
    /// The durable write-through store; `None` runs purely in memory.
    store: Option<Store>,
    /// Fold the delta into a fresh base CSR once
    /// `delta_triples + tombstones` reaches this; 0 disables automatic
    /// compaction.
    compact_threshold: usize,
    /// The metrics registry every layer records into. The stats handles
    /// below point into it; the server layer registers its own metrics
    /// against the same registry so one `METRICS` answer covers both.
    registry: Arc<Registry>,
    /// `Some` when this index is one shard of a cluster: every chase is
    /// then restricted to the owned candidate slice
    /// ([`gk_core::chase_shard_slice`]) and the `SHARDCHASE`/`MERGES`
    /// exchange ([`EmIndex::merge_log`], [`EmIndex::absorb_merges`])
    /// closes the cross-shard gap. `None` is standalone: full chases.
    shard: Option<ShardRole>,
    /// Cumulative update counters (handles into [`EmIndex::registry`]).
    pub stats: IndexStats,
}

/// Default [`EmIndex::set_compact_threshold`]: the delta stays small
/// enough that per-batch clone cost is negligible while compactions stay
/// rare on streaming workloads.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 1 << 16;

impl EmIndex {
    /// Loads a graph and a key set, runs the startup chase with the default
    /// [`ChaseEngine::Incremental`] engine, and builds the serving state.
    pub fn new(graph: Graph, keys: KeySet) -> Self {
        Self::with_engine(graph, keys, ChaseEngine::default())
    }

    /// Like [`EmIndex::new`], but selecting the chase engine: `Reference`
    /// re-chases fully on every update, `Incremental` (default) rides the
    /// monotone delta chase for inserts, `Parallel { threads }` additionally
    /// runs all full chases — startup and the deletion fallback — on worker
    /// threads via [`gk_core::chase_parallel`].
    pub fn with_engine(graph: Graph, keys: KeySet, engine: ChaseEngine) -> Self {
        Self::with_engine_registry(graph, keys, engine, Arc::new(Registry::new()))
    }

    /// Like [`EmIndex::with_engine`], but recording into a caller-supplied
    /// registry — pass [`Registry::disabled`] for the compiled no-op path
    /// (the instrumentation-overhead baseline).
    pub fn with_engine_registry(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        registry: Arc<Registry>,
    ) -> Self {
        Self::build_in_memory(graph, keys, engine, registry, None)
    }

    /// Builds an in-memory index serving one shard of a cluster: the
    /// startup chase and every update chase advance only the candidate
    /// slice owned by `shard` ([`gk_core::chase_shard_slice`]); the
    /// coordinator's `SHARDCHASE`/`MERGES` exchange supplies the rest.
    pub fn with_engine_sharded(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        registry: Arc<Registry>,
        shard: ShardRole,
    ) -> Self {
        Self::build_in_memory(graph, keys, engine, registry, Some(shard))
    }

    fn build_in_memory(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        registry: Arc<Registry>,
        shard: Option<ShardRole>,
    ) -> Self {
        let stats = IndexStats::register(&registry);
        let state = startup_chase(
            OverlayGraph::new(graph),
            Arc::new(keys),
            engine,
            &stats,
            shard,
        );
        EmIndex {
            engine,
            state: RwLock::new(Arc::new(state)),
            ingest: Mutex::new(()),
            store: None,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            registry,
            shard,
            stats,
        }
    }

    /// The registry this index records into (shared with the serving
    /// layer, which registers its request metrics against it).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Sets the delta-compaction threshold (`delta_triples + tombstones`);
    /// `0` disables automatic compaction. Configure before serving traffic.
    pub fn set_compact_threshold(&mut self, threshold: usize) {
        self.compact_threshold = threshold;
    }

    /// The configured delta-compaction threshold (0 = off).
    pub fn compact_threshold(&self) -> usize {
        self.compact_threshold
    }

    /// Opens the index **durably**: accepted updates are logged to
    /// `dur.dir` before they are applied, and `SNAPSHOT`/`COMPACT` cut
    /// point-in-time snapshot files.
    ///
    /// * Fresh directory — runs the startup chase on `graph` and writes
    ///   the initial snapshot, so the *next* start skips the chase.
    /// * Directory with state — ignores `graph`, loads the newest valid
    ///   snapshot and replays the WAL suffix (see
    ///   [`EmIndex::recover_durable`]). While Σ has never been changed at
    ///   runtime (`key_epoch == 0`, no key records in the WAL), `keys`
    ///   must equal the persisted key set — a mismatch is an operator
    ///   mistake. Once `ADDKEY`/`DROPKEY` have evolved Σ, the persisted
    ///   set is authoritative and the passed `keys` are ignored (the
    ///   key file on disk can no longer describe the live set).
    pub fn open_durable(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
    ) -> Result<(Self, RecoveryReport), String> {
        Self::open_durable_with(graph, keys, engine, dur, DEFAULT_COMPACT_THRESHOLD)
    }

    /// [`EmIndex::open_durable`] with an explicit delta-compaction
    /// threshold (`0` = off) — honored both by the serving write path and
    /// by the recovery replay's post-replay fold.
    pub fn open_durable_with(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
        compact_threshold: usize,
    ) -> Result<(Self, RecoveryReport), String> {
        Self::open_durable_impl(graph, keys, engine, dur, compact_threshold, None)
    }

    /// [`EmIndex::open_durable_with`] for one shard of a cluster: each
    /// shard keeps its **own** data dir (WAL + snapshots), so recovery
    /// stays per-shard, and every chase is restricted to the owned slice.
    /// Merges absorbed from other shards are *not* WAL-logged — after a
    /// restart the coordinator re-syncs the restarted shard from its
    /// global log (absorption is idempotent).
    pub fn open_durable_sharded(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
        compact_threshold: usize,
        shard: ShardRole,
    ) -> Result<(Self, RecoveryReport), String> {
        Self::open_durable_impl(graph, keys, engine, dur, compact_threshold, Some(shard))
    }

    fn open_durable_impl(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
        compact_threshold: usize,
        shard: Option<ShardRole>,
    ) -> Result<(Self, RecoveryReport), String> {
        let store = open_store(dur)?;
        let registry = Arc::new(Registry::new());
        match store.recover().map_err(|e| e.to_string())? {
            Some(rec) => {
                // While Σ was never touched at runtime the persisted set
                // must match the operator's key file; once the epoch moved
                // (or the WAL carries key records), disk is authoritative.
                let runtime_keys =
                    rec.snapshot.key_epoch > 0 || rec.wal.iter().any(|r| r.op.is_key_change());
                if !runtime_keys {
                    let persisted = KeySet::parse(&rec.snapshot.keys_dsl)
                        .map_err(|e| format!("persisted key set does not parse: {e}"))?;
                    if write_keys(persisted.keys()) != write_keys(keys.keys()) {
                        return Err(format!(
                            "key set differs from the one persisted in {:?}; \
                             recover with the original keys or clear the data dir",
                            dur.dir
                        ));
                    }
                }
                Self::from_recovered(store, rec, engine, compact_threshold, registry, shard)
            }
            None => {
                let stats = IndexStats::register(&registry);
                let state = startup_chase(
                    OverlayGraph::new(graph),
                    Arc::new(keys),
                    engine,
                    &stats,
                    shard,
                );
                let index = EmIndex {
                    engine,
                    state: RwLock::new(Arc::new(state)),
                    ingest: Mutex::new(()),
                    store: Some(store),
                    compact_threshold,
                    registry,
                    shard,
                    stats,
                };
                // Initial snapshot: the next start is load + replay.
                index.snapshot_to_disk()?;
                Ok((
                    index,
                    RecoveryReport {
                        recovered: false,
                        snapshot_seq: Some(0),
                        wal_replayed: 0,
                        replay_mode: AdvanceMode::NoOp,
                        wal_torn: false,
                        skipped_snapshots: 0,
                    },
                ))
            }
        }
    }

    /// Recovers an index purely from a data directory — graph *and* keys
    /// come from the persisted snapshot. Returns `Ok(None)` when the
    /// directory holds no state.
    pub fn recover_durable(
        dur: &Durability,
        engine: ChaseEngine,
    ) -> Result<Option<(Self, RecoveryReport)>, String> {
        Self::recover_durable_with(dur, engine, DEFAULT_COMPACT_THRESHOLD)
    }

    /// [`EmIndex::recover_durable`] with an explicit delta-compaction
    /// threshold (`0` = off).
    pub fn recover_durable_with(
        dur: &Durability,
        engine: ChaseEngine,
        compact_threshold: usize,
    ) -> Result<Option<(Self, RecoveryReport)>, String> {
        Self::recover_durable_impl(dur, engine, compact_threshold, None)
    }

    /// [`EmIndex::recover_durable_with`] for a restarted cluster shard:
    /// recovers from the shard's own data dir and restores the slice
    /// discipline. External merges were not WAL-logged, so the recovered
    /// closure may lag the cluster's — the coordinator detects the
    /// reconnect and replays its global log through `MERGES`.
    pub fn recover_durable_sharded(
        dur: &Durability,
        engine: ChaseEngine,
        compact_threshold: usize,
        shard: ShardRole,
    ) -> Result<Option<(Self, RecoveryReport)>, String> {
        Self::recover_durable_impl(dur, engine, compact_threshold, Some(shard))
    }

    fn recover_durable_impl(
        dur: &Durability,
        engine: ChaseEngine,
        compact_threshold: usize,
        shard: Option<ShardRole>,
    ) -> Result<Option<(Self, RecoveryReport)>, String> {
        let store = open_store(dur)?;
        match store.recover().map_err(|e| e.to_string())? {
            None => Ok(None),
            Some(rec) => {
                let registry = Arc::new(Registry::new());
                Self::from_recovered(store, rec, engine, compact_threshold, registry, shard)
                    .map(Some)
            }
        }
    }

    /// Builds the serving state from a loaded snapshot + WAL suffix. The
    /// key set comes off disk: the snapshot's Σ plus any key-management
    /// records in the replayed suffix.
    fn from_recovered(
        store: Store,
        rec: Recovered,
        engine: ChaseEngine,
        compact_threshold: usize,
        registry: Arc<Registry>,
        shard: Option<ShardRole>,
    ) -> Result<(Self, RecoveryReport), String> {
        let t0 = Instant::now();
        let snapshot_seq = rec.snapshot.seq;
        let wal_replayed = rec.wal.len();
        let wal_torn = rec.wal_torn;
        let skipped_snapshots = rec.skipped_snapshots;
        let stats = IndexStats::register(&registry);
        let (state, replay_mode) = replay(rec, engine, compact_threshold, &stats, shard)?;
        stats.startup_micros.set(t0.elapsed().as_micros() as u64);
        let index = EmIndex {
            engine,
            state: RwLock::new(Arc::new(state)),
            ingest: Mutex::new(()),
            store: Some(store),
            compact_threshold,
            registry,
            shard,
            stats,
        };
        Ok((
            index,
            RecoveryReport {
                recovered: true,
                snapshot_seq: Some(snapshot_seq),
                wal_replayed,
                replay_mode,
                wal_torn,
                skipped_snapshots,
            },
        ))
    }

    /// The key set Σ the index currently serves (a shared handle to the
    /// serving snapshot's declared keys — Σ is versioned state now that
    /// `ADDKEY`/`DROPKEY` can change it at runtime).
    pub fn keys(&self) -> Arc<KeySet> {
        Arc::clone(&self.snapshot().keys)
    }

    /// The configured chase engine.
    pub fn engine(&self) -> ChaseEngine {
        self.engine
    }

    /// This index's position in a cluster, or `None` when standalone.
    pub fn shard_role(&self) -> Option<ShardRole> {
        self.shard
    }

    /// The accumulated merge log from `cursor` on, as
    /// `(entity_a, entity_b, key_name)` label triples, plus the next
    /// cursor. A cursor past the end (this shard restarted from a
    /// snapshot with a shorter log) returns the empty suffix and the
    /// *current* length — the coordinator detects the regression via
    /// `next < cursor` and rewinds to 0.
    pub fn merge_log(&self, cursor: u64) -> (Vec<(String, String, String)>, u64) {
        let snap = self.snapshot();
        let steps = snap.steps().to_vec();
        let next = steps.len() as u64;
        let from = (cursor as usize).min(steps.len());
        let entries = steps[from..]
            .iter()
            .map(|s| {
                (
                    entity_label(&snap.graph, s.pair.0),
                    entity_label(&snap.graph, s.pair.1),
                    snap.compiled.keys[s.key].name.clone(),
                )
            })
            .collect();
        (entries, next)
    }

    /// Absorbs external merges from the coordinator — identifications
    /// certified by *other* shards' slices — and re-chases this shard's
    /// slice seeded with them (`SHARDCHASE` is the `entries == []` case).
    ///
    /// Externals are sound to adopt without re-proving: Church–Rosser
    /// guarantees any key-certified union sequence reaches the same
    /// terminal `Eq`. They are appended to the step log (so a snapshot
    /// persists them and recovery regenerates the same relation) but
    /// **not** WAL-logged — after a crash the coordinator re-ships them,
    /// and replay tolerates the resulting seq gap. Idempotent: entries
    /// already in the relation change nothing, and a call that produces
    /// no new identification leaves the version untouched.
    pub fn absorb_merges(
        &self,
        entries: &[(String, String, String)],
        span: &Span,
    ) -> Result<AdvanceReport, String> {
        let role = self
            .shard
            .ok_or("not a shard: this index was not started with a shard role")?;
        let _writer = self.ingest.lock();
        let snap = self.snapshot();
        let resolve = span.child("resolve");
        let mut eq = snap.eq.clone();
        let mut ext_steps: Vec<ChaseStep> = Vec::new();
        for (a, b, key) in entries {
            let ea = snap
                .graph
                .entity_named(a)
                .ok_or_else(|| format!("unknown entity {a:?}"))?;
            let eb = snap
                .graph
                .entity_named(b)
                .ok_or_else(|| format!("unknown entity {b:?}"))?;
            // Shards replicate the same graph and Σ, so the certifying
            // key compiles to the same active set here.
            let ki = snap
                .compiled
                .keys
                .iter()
                .position(|k| k.name == *key)
                .ok_or_else(|| format!("unknown key {key:?}"))?;
            if eq.union(ea, eb) {
                ext_steps.push(ChaseStep {
                    pair: norm(ea, eb),
                    key: ki,
                });
            }
        }
        resolve.count("externals", entries.len() as u64);
        resolve.count("absorbed", ext_steps.len() as u64);
        resolve.finish();

        let t0 = Instant::now();
        let chase_span = span.child("slice_chase");
        let result = chase_shard_slice(&snap.graph, &snap.compiled, &eq, role, &chase_span);
        chase_span.count("rounds", result.rounds as u64);
        chase_span.count("iso_checks", result.iso_checks);
        chase_span.count("merges", result.steps.len() as u64);
        chase_span.finish();
        self.stats.delta_chase_micros.observe_micros(t0.elapsed());
        self.stats.chase.record(&result);
        let new_pairs = result.eq.num_identified_pairs() - snap.eq.num_identified_pairs();
        let report = AdvanceReport {
            mode: if ext_steps.is_empty() && result.steps.is_empty() {
                AdvanceMode::NoOp
            } else {
                AdvanceMode::Incremental
            },
            triples: 0,
            touched: ext_steps.len(),
            new_entities: 0,
            new_pairs,
            rounds: result.rounds,
            iso_checks: result.iso_checks,
        };
        if report.mode == AdvanceMode::NoOp {
            self.stats.noops.inc();
            return Ok(report);
        }
        let steps2 = snap.steps().appended(ext_steps).appended(result.steps);
        let next = IndexState::build(
            snap.graph.clone(),
            Arc::clone(&snap.keys),
            snap.compiled.clone(),
            result.eq,
            steps2,
            snap.degrees.clone(),
            snap.version + 1,
            snap.key_epoch,
        );
        *self.state.write() = Arc::new(next);
        self.stats.update_rounds.add(report.rounds as u64);
        self.stats.incremental_advances.inc();
        Ok(report)
    }

    /// The fsync mode of the durable store, or `None` in-memory.
    pub fn durability(&self) -> Option<FsyncMode> {
        self.store.as_ref().map(Store::fsync_mode)
    }

    /// Records currently in the write-ahead log (0 without durability).
    pub fn wal_records(&self) -> u64 {
        self.store.as_ref().map_or(0, Store::wal_records)
    }

    /// Version of the newest on-disk snapshot, if durable and present.
    pub fn snapshot_seq(&self) -> Option<u64> {
        self.store.as_ref().and_then(Store::snapshot_seq)
    }

    /// An immutable snapshot of the current state. Queries run entirely on
    /// the snapshot; the lock is held only for the `Arc` clone.
    pub fn snapshot(&self) -> Arc<IndexState> {
        self.state.read().clone()
    }

    /// Cuts a point-in-time snapshot of the current state to disk.
    /// Returns `(snapshot_seq, bytes)`.
    pub fn snapshot_to_disk(&self) -> Result<(u64, u64), String> {
        self.persist_with("snapshot", |store, data| store.snapshot(data))
    }

    /// Cuts a snapshot, truncates the WAL and prunes older snapshots.
    ///
    /// `COMPACT` also folds the in-memory delta overlay into the freshly
    /// materialized base CSR, so the same O(|G|) pass serves both the
    /// on-disk snapshot and the in-memory epoch bump.
    pub fn compact_store(&self) -> Result<CompactReport, String> {
        let store = self.store_or_err()?;
        let _writer = self.ingest.lock();
        let t0 = Instant::now();
        let (frz, report) = self
            .freeze_and(store, |store, data| store.compact(data))
            .map_err(|e| format!("compaction failed: {e}"))?;
        let snap = frz.snap;
        if !snap.graph.is_compact() {
            // Reuse the materialized CSR — and the compile + remapped step
            // log freeze_and already produced against it — as the new
            // in-memory state: same logical graph and Eq, same version;
            // only the layout moved.
            self.stats.compactions.inc();
            self.stats.compact_micros.observe_micros(t0.elapsed());
            let g2 = OverlayGraph::from_arc(frz.graph, snap.graph.epoch() + 1);
            let next = IndexState::build(
                g2,
                Arc::clone(&snap.keys),
                frz.compiled,
                snap.eq.clone(),
                StepLog::from_steps(frz.steps),
                // Same logical graph, new layout: degrees carry over.
                snap.degrees.clone(),
                snap.version,
                snap.key_epoch,
            );
            *self.state.write() = Arc::new(next);
        }
        Ok(report)
    }

    /// Freezes the current state under the ingest lock and hands it to a
    /// store operation. The overlay materializes into a frozen CSR for the
    /// codec; an already-compact overlay shares its base instead.
    fn persist_with<T>(
        &self,
        what: &str,
        op: impl FnOnce(&Store, &SnapshotData<'_>) -> std::io::Result<T>,
    ) -> Result<(u64, T), String> {
        let store = self.store_or_err()?;
        let _writer = self.ingest.lock();
        let (frz, out) = self
            .freeze_and(store, op)
            .map_err(|e| format!("{what} failed: {e}"))?;
        Ok((frz.snap.version, out))
    }

    /// The one place that decides what a snapshot captures: freezes the
    /// current state (sharing the base when the overlay is already
    /// compact, materializing otherwise) and hands it to a store
    /// operation. Call with the ingest lock held.
    fn freeze_and<T>(
        &self,
        store: &Store,
        op: impl FnOnce(&Store, &SnapshotData<'_>) -> std::io::Result<T>,
    ) -> std::io::Result<(FrozenState, T)> {
        let snap = self.snapshot();
        let dsl = write_keys(snap.keys.keys());
        let frozen = if snap.graph.is_compact() {
            Arc::clone(snap.graph.base())
        } else {
            Arc::new(snap.graph.materialize())
        };
        // Recovery assumes the persisted steps are attributed against a
        // compile of exactly the persisted graph — whose pruned interner
        // can deactivate keys the overlay still compiled (their vocabulary
        // may survive only in the base interner). Remap before writing.
        let compiled = snap.keys.compile(frozen.as_ref());
        let steps = remap_steps(&snap.compiled, &compiled, snap.steps().to_vec());
        let out = op(
            store,
            &SnapshotData {
                seq: snap.version,
                key_epoch: snap.key_epoch,
                keys_dsl: &dsl,
                graph: &frozen,
                steps: &steps,
            },
        )?;
        Ok((
            FrozenState {
                snap,
                graph: frozen,
                compiled,
                steps,
            },
            out,
        ))
    }

    fn store_or_err(&self) -> Result<&Store, String> {
        self.store
            .as_ref()
            .ok_or_else(|| "durability is off (start with --data-dir)".to_string())
    }

    /// Applies an insert-only batch of triples.
    ///
    /// Entity ids are stable and the write is **O(batch + delta)**: the
    /// new version clones the previous overlay (sharing the frozen base
    /// CSR through an `Arc`) and appends into the delta segment — no
    /// rebuild — so the previous terminal `Eq` seeds a delta chase
    /// ([`chase_incremental`]) woken only around the touched entities.
    /// Returns an error (and changes nothing) if a triple re-declares an
    /// existing entity with a different type, or if the write-ahead log
    /// cannot record the batch.
    pub fn insert(&self, specs: &[TripleSpec]) -> Result<AdvanceReport, String> {
        self.insert_traced(specs, &Span::disabled())
    }

    /// [`EmIndex::insert`] recording phase spans (`validate`,
    /// `apply_batch`, `compact`, `compile`, `delta_chase` /
    /// `full_rechase`, `wal_append`) into `span`. The chase phase nests
    /// the engine's own per-round spans.
    pub fn insert_traced(
        &self,
        specs: &[TripleSpec],
        span: &Span,
    ) -> Result<AdvanceReport, String> {
        let _writer = self.ingest.lock();
        let snap = self.snapshot();

        let validate = span.child("validate");
        // Validate entity types against the graph and within the batch
        // before touching the overlay (OverlayGraph panics on a clash).
        fn check<'a>(
            g: &OverlayGraph,
            batch: &mut FxHashMap<&'a str, &'a str>,
            name: &'a str,
            ty: &'a str,
        ) -> Result<(), String> {
            if let Some(e) = g.entity_named(name) {
                let have = g.type_str(g.entity_type(e));
                if have != ty {
                    return Err(format!(
                        "entity {name:?} already has type {have:?}, not {ty:?}"
                    ));
                }
            }
            match batch.get(name) {
                Some(&have) if have != ty => Err(format!(
                    "entity {name:?} used with types {have:?} and {ty:?}"
                )),
                _ => {
                    batch.insert(name, ty);
                    Ok(())
                }
            }
        }
        let mut batch_types: FxHashMap<&str, &str> = FxHashMap::default();
        for s in specs {
            check(&snap.graph, &mut batch_types, &s.subject, &s.subject_type)?;
            if let ObjSpec::Entity { name, ty } = &s.object {
                check(&snap.graph, &mut batch_types, name, ty)?;
            }
        }
        validate.count("triples", specs.len() as u64);
        validate.finish();

        let apply = span.child("apply_batch");
        let old_entities = snap.graph.num_entities();
        let mut g2 = snap.graph.clone();
        let mut touched: Vec<EntityId> = Vec::new();
        let mut added = 0usize;
        for s in specs {
            let (subj, obj, new) = s.apply_overlay(&mut g2);
            touched.push(subj);
            touched.extend(obj);
            added += usize::from(new);
        }
        touched.sort_unstable();
        touched.dedup();
        apply.count("touched", touched.len() as u64);
        apply.finish();

        if added == 0 && g2.num_entities() == old_entities {
            self.stats.noops.inc();
            return Ok(AdvanceReport {
                mode: AdvanceMode::NoOp,
                triples: specs.len(),
                touched: touched.len(),
                new_entities: 0,
                new_pairs: 0,
                rounds: 0,
                iso_checks: 0,
            });
        }
        let g2 = self.maybe_compact_traced(g2, span);
        // Degrees advance incrementally: recompute only the touched rows
        // (new entities append their own).
        let mut degrees2 = snap.degrees.clone();
        degrees2.update_entities(&g2, &touched);

        // The heavy part runs without the state lock: readers keep serving
        // the previous snapshot.
        let compile = span.child("compile");
        let compiled2 = snap.keys.compile(&g2);
        compile.finish();
        let t0 = Instant::now();
        let incremental = self.engine.inserts_incrementally();
        let chase_span = span.child(if self.shard.is_some() {
            "slice_chase"
        } else if incremental {
            "delta_chase"
        } else {
            "full_rechase"
        });
        let (result, mode) = if let Some(role) = self.shard {
            // Shard mode: inserts are monotone, so the previous relation
            // seeds a continuation restricted to the owned slice; other
            // shards pick up their slices through the coordinator's
            // exchange.
            (
                chase_shard_slice(&g2, &compiled2, &snap.eq, role, &chase_span),
                AdvanceMode::Incremental,
            )
        } else if incremental {
            // Monotone delta chase: valid for insert-only batches under any
            // engine; strictly less work than a full chase.
            (
                chase_incremental_traced(&g2, &compiled2, &snap.eq, &touched, &chase_span),
                AdvanceMode::Incremental,
            )
        } else {
            (
                self.engine.full_chase_traced(
                    &g2,
                    &compiled2,
                    ChaseOrder::Deterministic,
                    &chase_span,
                ),
                AdvanceMode::FullRechase,
            )
        };
        chase_span.count("rounds", result.rounds as u64);
        chase_span.count("iso_checks", result.iso_checks);
        chase_span.count("merges", result.steps.len() as u64);
        chase_span.finish();
        match mode {
            AdvanceMode::Incremental => self.stats.delta_chase_micros,
            _ => self.stats.full_rechase_micros,
        }
        .observe_micros(t0.elapsed());
        self.stats.chase.record(&result);
        let new_pairs = result.eq.num_identified_pairs() - snap.eq.num_identified_pairs();
        let report = AdvanceReport {
            mode,
            triples: specs.len(),
            touched: touched.len(),
            new_entities: g2.num_entities() - old_entities,
            new_pairs,
            rounds: result.rounds,
            iso_checks: result.iso_checks,
        };
        let steps2 = match mode {
            // The delta result reports only the new steps; the accumulated
            // log shares its prefix with the previous state. When the
            // recompile shifted active-key indices (a key activated on new
            // vocabulary, or a compaction pruned one), the prefix is
            // remapped through the stable source-key indices first.
            AdvanceMode::Incremental => {
                remap_step_log(&snap.compiled, &compiled2, &snap.steps).appended(result.steps)
            }
            _ => StepLog::from_steps(result.steps),
        };
        // Write-ahead: the accepted batch must be on the log before the
        // new state becomes visible, or a crash could lose an
        // acknowledged update.
        let wal = span.child("wal_append");
        let bytes = self.log_op(WalOp::Insert(specs.to_vec()), snap.version + 1)?;
        wal.count("bytes", bytes);
        wal.finish();
        let next = IndexState::build(
            g2,
            Arc::clone(&snap.keys),
            compiled2,
            result.eq,
            steps2,
            degrees2,
            snap.version + 1,
            snap.key_epoch,
        );
        *self.state.write() = Arc::new(next);
        self.stats.update_rounds.add(report.rounds as u64);
        match mode {
            AdvanceMode::Incremental => self.stats.incremental_advances,
            _ => self.stats.full_rechases,
        }
        .inc();
        Ok(report)
    }

    /// Deletes a batch of triples — tombstones in the delta overlay, no
    /// CSR rebuild — and recomputes the chase from scratch **once** for
    /// the whole batch.
    ///
    /// Keys are monotone only under *insertions*; a deletion can invalidate
    /// prior merges, so this is the documented full re-chase fallback. A
    /// batch of consecutive deletions therefore costs one re-chase, not
    /// one per triple; the physical rebuild is deferred to compaction. A
    /// batch whose doomed set turns out empty is a no-op: no re-chase, no
    /// version bump.
    pub fn delete(&self, specs: &[TripleSpec]) -> Result<AdvanceReport, String> {
        self.delete_traced(specs, &Span::disabled())
    }

    /// [`EmIndex::delete`] recording phase spans (`validate`,
    /// `apply_batch`, `compact`, `compile`, `full_rechase`, `wal_append`)
    /// into `span`.
    pub fn delete_traced(
        &self,
        specs: &[TripleSpec],
        span: &Span,
    ) -> Result<AdvanceReport, String> {
        let _writer = self.ingest.lock();
        let snap = self.snapshot();
        let g = &snap.graph;

        let validate = span.child("validate");
        let mut doomed: FxHashSet<Triple> = FxHashSet::default();
        let mut endpoints: FxHashSet<EntityId> = FxHashSet::default();
        for spec in specs {
            let t = resolve_triple(g, spec)?;
            endpoints.insert(t.s);
            if let Obj::Entity(o) = t.o {
                endpoints.insert(o);
            }
            doomed.insert(t);
        }
        validate.count("triples", specs.len() as u64);
        validate.finish();
        if doomed.is_empty() {
            // Nothing resolved to a live triple: short-circuit without
            // re-chasing or bumping the version.
            self.stats.noops.inc();
            return Ok(AdvanceReport {
                mode: AdvanceMode::NoOp,
                triples: specs.len(),
                touched: 0,
                new_entities: 0,
                new_pairs: 0,
                rounds: 0,
                iso_checks: 0,
            });
        }

        // Tombstone the triples in a cloned overlay — entity ids and names
        // are preserved (entities are never garbage-collected by deletion),
        // and the base CSR stays shared.
        let apply = span.child("apply_batch");
        let mut g2 = snap.graph.clone();
        for &t in &doomed {
            let removed = g2.delete_triple(t);
            debug_assert!(removed, "resolved triple must be live");
        }
        apply.count("tombstones", doomed.len() as u64);
        apply.finish();
        let g2 = self.maybe_compact_traced(g2, span);
        // Only the tombstoned triples' endpoints changed degree.
        let mut degrees2 = snap.degrees.clone();
        let touched_rows: Vec<EntityId> = endpoints.iter().copied().collect();
        degrees2.update_entities(&g2, &touched_rows);
        let compile = span.child("compile");
        let compiled2 = snap.keys.compile(&g2);
        compile.finish();
        let t0 = Instant::now();
        let chase_span = span.child(if self.shard.is_some() {
            "slice_rechase"
        } else {
            "full_rechase"
        });
        // Deletion is non-monotone: restart from identity. In shard mode
        // only the owned slice is recomputed; the coordinator resets its
        // global view and re-converges the cluster.
        let full = match self.shard {
            Some(role) => chase_shard_slice(
                &g2,
                &compiled2,
                &EqRel::identity(g2.num_entities()),
                role,
                &chase_span,
            ),
            None => self.engine.full_chase_traced(
                &g2,
                &compiled2,
                ChaseOrder::Deterministic,
                &chase_span,
            ),
        };
        chase_span.count("rounds", full.rounds as u64);
        chase_span.count("iso_checks", full.iso_checks);
        chase_span.count("merges", full.steps.len() as u64);
        chase_span.finish();
        self.stats.full_rechase_micros.observe_micros(t0.elapsed());
        self.stats.chase.record(&full);
        let old_pairs = snap.eq.num_identified_pairs();
        let new_total = full.eq.num_identified_pairs();
        let report = AdvanceReport {
            mode: AdvanceMode::FullRechase,
            triples: specs.len(),
            touched: endpoints.len(),
            new_entities: 0,
            new_pairs: new_total.saturating_sub(old_pairs),
            rounds: full.rounds,
            iso_checks: full.iso_checks,
        };
        let wal = span.child("wal_append");
        let bytes = self.log_op(WalOp::Delete(specs.to_vec()), snap.version + 1)?;
        wal.count("bytes", bytes);
        wal.finish();
        let next = IndexState::build(
            g2,
            Arc::clone(&snap.keys),
            compiled2,
            full.eq,
            StepLog::from_steps(full.steps),
            degrees2,
            snap.version + 1,
            snap.key_epoch,
        );
        *self.state.write() = Arc::new(next);
        self.stats.update_rounds.add(report.rounds as u64);
        self.stats.full_rechases.inc();
        Ok(report)
    }

    /// Folds the overlay's delta into a fresh base CSR when it crossed the
    /// configured threshold (the only O(|G|) step on the write path,
    /// amortized over the batches that filled the delta), recording a
    /// `compact` span when the fold actually runs.
    fn maybe_compact_traced(&self, g: OverlayGraph, span: &Span) -> OverlayGraph {
        if self.compact_threshold > 0 && g.delta_size() >= self.compact_threshold {
            let c = span.child("compact");
            c.count("delta", g.delta_size() as u64);
            let folded = fold_if_over_threshold(g, self.compact_threshold, &self.stats);
            c.finish();
            folded
        } else {
            g
        }
    }

    /// Appends an accepted update to the WAL, returning the framed bytes
    /// written (0 without durability).
    fn log_op(&self, op: WalOp, seq: u64) -> Result<u64, String> {
        let Some(store) = &self.store else {
            return Ok(0);
        };
        let t0 = Instant::now();
        let out = store
            .append(&WalRecord { seq, op })
            .map_err(|e| format!("write-ahead log append failed; update not applied: {e}"));
        self.stats.wal_fsync_micros.observe_micros(t0.elapsed());
        out
    }

    /// Installs keys into the live Σ at runtime.
    ///
    /// Adding keys is **monotone** — `chase(G, Σ ∪ K) ⊇ chase(G, Σ)` for
    /// positive patterns — so under the incremental/parallel engines the
    /// previous terminal `Eq` seeds a delta chase woken only around the
    /// entities of the new keys' target types (the first genuinely new
    /// step must apply a new key, and its witness anchors there). The
    /// reference engine re-chases fully, as it does for every update.
    ///
    /// The change is WAL-logged (`ADDKEY` record, the keys in canonical
    /// DSL text) *before* the new state becomes visible, bumps the
    /// version and the key epoch, and errors — changing nothing — on a
    /// duplicate key name or a validation failure.
    pub fn add_keys(&self, new: Vec<Key>) -> Result<KeyChange, String> {
        self.add_keys_traced(new, &Span::disabled())
    }

    /// [`EmIndex::add_keys`] recording phase spans (`validate`, `compile`,
    /// `delta_chase` / `full_rechase`, `wal_append`) into `span`.
    pub fn add_keys_traced(&self, new: Vec<Key>, span: &Span) -> Result<KeyChange, String> {
        if new.is_empty() {
            return Err("no key definition given".into());
        }
        let _writer = self.ingest.lock();
        let snap = self.snapshot();
        let validate = span.child("validate");
        let mut names: FxHashSet<&str> = snap.keys.keys().iter().map(|k| k.name.as_str()).collect();
        for k in &new {
            k.validate().map_err(|e| e.to_string())?;
            if !names.insert(&k.name) {
                return Err(format!("a key named {:?} already exists", k.name));
            }
        }
        validate.count("keys", new.len() as u64);
        validate.finish();
        let dsl = write_keys(&new);
        let mut all: Vec<Key> = snap.keys.keys().to_vec();
        all.extend(new.iter().cloned());
        let keys2 = Arc::new(KeySet::new(all).map_err(|e| e.to_string())?);
        let compile = span.child("compile");
        let compiled2 = keys2.compile(&snap.graph);
        compile.finish();

        let t0 = Instant::now();
        let incremental = self.engine.inserts_incrementally();
        let chase_span = span.child(if self.shard.is_some() {
            "slice_chase"
        } else if incremental {
            "delta_chase"
        } else {
            "full_rechase"
        });
        let (result, mode) = if let Some(role) = self.shard {
            // Adding keys is monotone, so the previous relation seeds the
            // slice continuation just as it does for inserts.
            (
                chase_shard_slice(&snap.graph, &compiled2, &snap.eq, role, &chase_span),
                AdvanceMode::Incremental,
            )
        } else if incremental {
            // Wake the entities a new key could anchor on. The first
            // genuinely new identification must be certified by a new key
            // (the old Eq is terminal for the old Σ on this graph), and any
            // pair it identifies embeds the key's pattern — so both
            // endpoints are of the key's target type and meet its anchor
            // slot's degree demand. One woken endpoint suffices: the delta
            // chase pairs it with every same-type entity. Entities below
            // the demand (and keys that did not compile, which cannot match
            // at all) are skipped instead of seeding dead candidate pairs.
            let prior_declared = snap.keys.cardinality();
            let mut touched: Vec<EntityId> = Vec::new();
            for ck in compiled2.keys.iter().filter(|k| k.source >= prior_declared) {
                let req = ck.pattern.anchor_req();
                touched.extend(
                    snap.graph
                        .entities_of_type(ck.target_type)
                        .into_iter()
                        .filter(|&e| snap.degrees.satisfies(e, req)),
                );
            }
            touched.sort_unstable();
            touched.dedup();
            (
                chase_incremental_traced(&snap.graph, &compiled2, &snap.eq, &touched, &chase_span),
                AdvanceMode::Incremental,
            )
        } else {
            (
                self.engine.full_chase_traced(
                    &snap.graph,
                    &compiled2,
                    ChaseOrder::Deterministic,
                    &chase_span,
                ),
                AdvanceMode::FullRechase,
            )
        };
        chase_span.count("rounds", result.rounds as u64);
        chase_span.count("iso_checks", result.iso_checks);
        chase_span.count("merges", result.steps.len() as u64);
        chase_span.finish();
        match mode {
            AdvanceMode::Incremental => self.stats.delta_chase_micros,
            _ => self.stats.full_rechase_micros,
        }
        .observe_micros(t0.elapsed());
        self.stats.chase.record(&result);
        let steps2 = match mode {
            // New sources append at the end of Σ, so existing compiled
            // indices keep their order; the remap is a shared-prefix no-op
            // unless the new vocabulary shifted activation.
            AdvanceMode::Incremental => {
                remap_step_log(&snap.compiled, &compiled2, &snap.steps).appended(result.steps)
            }
            _ => StepLog::from_steps(result.steps),
        };
        let wal = span.child("wal_append");
        let bytes = self.log_op(WalOp::AddKey(dsl), snap.version + 1)?;
        wal.count("bytes", bytes);
        wal.finish();
        let change = KeyChange {
            name: new.first().expect("non-empty").name.clone(),
            keys: keys2.cardinality(),
            active_keys: compiled2.len(),
            key_epoch: snap.key_epoch + 1,
            identified_pairs: result.eq.num_identified_pairs(),
            rounds: result.rounds,
            iso_checks: result.iso_checks,
        };
        let next = IndexState::build(
            snap.graph.clone(),
            keys2,
            compiled2,
            result.eq,
            steps2,
            snap.degrees.clone(),
            snap.version + 1,
            snap.key_epoch + 1,
        );
        *self.state.write() = Arc::new(next);
        self.stats.update_rounds.add(change.rounds as u64);
        match mode {
            AdvanceMode::Incremental => self.stats.incremental_advances,
            _ => self.stats.full_rechases,
        }
        .inc();
        Ok(change)
    }

    /// Removes the key named `name` from the live Σ at runtime.
    ///
    /// Dropping a key is **not** monotone — merges it certified (and
    /// everything that cascaded from them) may no longer hold — so the
    /// closure is recomputed with one full chase under the configured
    /// engine, exactly like the deletion fallback. WAL-logged (`DROPKEY`
    /// record) before the swap; bumps version and key epoch.
    pub fn drop_key(&self, name: &str) -> Result<KeyChange, String> {
        self.drop_key_traced(name, &Span::disabled())
    }

    /// [`EmIndex::drop_key`] recording phase spans (`compile`,
    /// `full_rechase`, `wal_append`) into `span`.
    pub fn drop_key_traced(&self, name: &str, span: &Span) -> Result<KeyChange, String> {
        let _writer = self.ingest.lock();
        let snap = self.snapshot();
        let mut all: Vec<Key> = snap.keys.keys().to_vec();
        let at = all
            .iter()
            .position(|k| k.name == name)
            .ok_or_else(|| format!("no key named {name:?}"))?;
        all.remove(at);
        let keys2 = Arc::new(KeySet::new(all).map_err(|e| e.to_string())?);
        let compile = span.child("compile");
        let compiled2 = keys2.compile(&snap.graph);
        compile.finish();
        let t0 = Instant::now();
        let chase_span = span.child(if self.shard.is_some() {
            "slice_rechase"
        } else {
            "full_rechase"
        });
        // Non-monotone, like deletion: restart from identity (the owned
        // slice only, in shard mode).
        let full = match self.shard {
            Some(role) => chase_shard_slice(
                &snap.graph,
                &compiled2,
                &EqRel::identity(snap.graph.num_entities()),
                role,
                &chase_span,
            ),
            None => self.engine.full_chase_traced(
                &snap.graph,
                &compiled2,
                ChaseOrder::Deterministic,
                &chase_span,
            ),
        };
        chase_span.count("rounds", full.rounds as u64);
        chase_span.count("iso_checks", full.iso_checks);
        chase_span.count("merges", full.steps.len() as u64);
        chase_span.finish();
        self.stats.full_rechase_micros.observe_micros(t0.elapsed());
        self.stats.chase.record(&full);
        let wal = span.child("wal_append");
        let bytes = self.log_op(WalOp::DropKey(name.to_string()), snap.version + 1)?;
        wal.count("bytes", bytes);
        wal.finish();
        let change = KeyChange {
            name: name.to_string(),
            keys: keys2.cardinality(),
            active_keys: compiled2.len(),
            key_epoch: snap.key_epoch + 1,
            identified_pairs: full.eq.num_identified_pairs(),
            rounds: full.rounds,
            iso_checks: full.iso_checks,
        };
        let next = IndexState::build(
            snap.graph.clone(),
            keys2,
            compiled2,
            full.eq,
            StepLog::from_steps(full.steps),
            snap.degrees.clone(),
            snap.version + 1,
            snap.key_epoch + 1,
        );
        *self.state.write() = Arc::new(next);
        self.stats.update_rounds.add(change.rounds as u64);
        self.stats.full_rechases.inc();
        Ok(change)
    }
}

/// What [`EmIndex::freeze_and`] captured: the snapshot it froze, the
/// frozen CSR, and Σ compiled + the step log remapped against that CSR —
/// exactly what the store wrote, reusable for an in-memory epoch bump.
struct FrozenState {
    snap: Arc<IndexState>,
    graph: Arc<Graph>,
    compiled: CompiledKeySet,
    steps: Vec<ChaseStep>,
}

/// The one compaction trigger, shared by the serving write path
/// ([`EmIndex::maybe_compact`]) and the recovery replay: fold the delta
/// into a fresh base once `delta_triples + tombstones` reaches the
/// threshold (`0` disables).
fn fold_if_over_threshold(g: OverlayGraph, threshold: usize, stats: &IndexStats) -> OverlayGraph {
    if threshold > 0 && g.delta_size() >= threshold {
        stats.compactions.inc();
        let t0 = Instant::now();
        let folded = g.compacted();
        stats.compact_micros.observe_micros(t0.elapsed());
        folded
    } else {
        g
    }
}

/// Remaps a step log's key attribution from one compiled key set to
/// another. Compiled indices are dense over the *active* keys, so a key
/// activating (new vocabulary) or deactivating (compaction pruned its
/// vocabulary) shifts every later index; the `source` index into the
/// declared `KeySet` is stable and bridges the two. Returns the log
/// unchanged (shared, not copied) when the active sets coincide — the
/// steady-state case.
fn remap_step_log(old: &CompiledKeySet, new: &CompiledKeySet, log: &StepLog) -> StepLog {
    if same_active_keys(old, new) {
        return log.clone();
    }
    StepLog::from_steps(remap_steps(old, new, log.to_vec()))
}

/// Do two compiled key sets activate the same declared keys in the same
/// order (⇔ identical step attribution)?
fn same_active_keys(old: &CompiledKeySet, new: &CompiledKeySet) -> bool {
    old.keys.len() == new.keys.len()
        && old
            .keys
            .iter()
            .zip(&new.keys)
            .all(|(a, b)| a.source == b.source)
}

/// [`remap_step_log`] on a materialized step vector.
fn remap_steps(
    old: &CompiledKeySet,
    new: &CompiledKeySet,
    steps: Vec<ChaseStep>,
) -> Vec<ChaseStep> {
    if same_active_keys(old, new) {
        return steps;
    }
    let by_source: FxHashMap<usize, usize> = new.keys.iter().map(|k| (k.source, k.idx)).collect();
    steps
        .into_iter()
        .map(|s| ChaseStep {
            pair: s.pair,
            // A cited key with no image can only happen if its witnesses
            // vanished — in which case the log was already rebuilt by the
            // deleting re-chase; keep the old index as a harmless fallback.
            key: old
                .keys
                .get(s.key)
                .and_then(|k| by_source.get(&k.source).copied())
                .unwrap_or(s.key),
        })
        .collect()
}

/// Runs the startup chase and builds version 0 of the serving state. A
/// sharded index chases only its owned candidate slice; the coordinator
/// converges the cluster by exchanging merge logs afterwards.
fn startup_chase(
    graph: OverlayGraph,
    keys: Arc<KeySet>,
    engine: ChaseEngine,
    stats: &IndexStats,
    shard: Option<ShardRole>,
) -> IndexState {
    let t0 = Instant::now();
    let compiled = keys.compile(&graph);
    let r = match shard {
        Some(role) => chase_shard_slice(
            &graph,
            &compiled,
            &EqRel::identity(graph.num_entities()),
            role,
            &Span::disabled(),
        ),
        None => engine.full_chase(&graph, &compiled, ChaseOrder::Deterministic),
    };
    stats.startup_rounds.set(r.rounds as u64);
    stats.startup_iso_checks.set(r.iso_checks);
    stats.startup_micros.set(t0.elapsed().as_micros() as u64);
    stats.chase.record(&r);
    let degrees = DegreeBuckets::build(&graph);
    IndexState::build(
        graph,
        keys,
        compiled,
        r.eq,
        StepLog::from_steps(r.steps),
        degrees,
        0,
        0,
    )
}

/// An entity's wire label: its declared name, or `e<id>` for the rare
/// unnamed entity (matching the protocol layer's fallback spelling).
fn entity_label<V: GraphView>(g: &V, e: EntityId) -> String {
    g.entity_name(e)
        .map_or_else(|| format!("e{}", e.0), str::to_string)
}

/// Resolves a delete spec against the graph with the same type contract as
/// insert — a spec carrying a wrong `:Type` annotation is a client bug.
fn resolve_triple<V: GraphView>(g: &V, spec: &TripleSpec) -> Result<Triple, String> {
    let resolve = |name: &str, ty: &str| -> Result<EntityId, String> {
        let e = g
            .entity_named(name)
            .ok_or_else(|| format!("unknown entity {name:?}"))?;
        let have = g.type_str(g.entity_type(e));
        if have != ty {
            return Err(format!("entity {name:?} has type {have:?}, not {ty:?}"));
        }
        Ok(e)
    };
    let s = resolve(&spec.subject, &spec.subject_type)?;
    let p = g
        .pred(&spec.pred)
        .ok_or_else(|| format!("unknown predicate {:?}", spec.pred))?;
    let o = match &spec.object {
        ObjSpec::Entity { name, ty } => Obj::Entity(resolve(name, ty)?),
        ObjSpec::Value(v) => Obj::Value(g.value(v).ok_or_else(|| format!("unknown value {v:?}"))?),
    };
    if !g.has(s, p, o) {
        return Err("no such triple".into());
    }
    Ok(Triple { s, p, o })
}

/// Replays the recovered WAL suffix on top of the snapshot state.
///
/// The snapshot graph becomes the overlay's frozen base and every WAL
/// record applies as O(batch) delta appends / tombstones — recovery never
/// rebuilds the CSR, no matter how records interleave. Key-management
/// records evolve Σ the same way: `ADDKEY` appends to the declared set,
/// `DROPKEY` removes by name, and the final Σ is what the recovered state
/// serves. The chase then runs once over the final `(G, Σ)`: through
/// [`chase_incremental`] seeded by the persisted `Eq` when the suffix was
/// monotone (inserts and added keys only — both can only grow the
/// closure), or as one full chase under the configured engine when any
/// record deleted triples or dropped a key.
fn replay(
    rec: Recovered,
    engine: ChaseEngine,
    compact_threshold: usize,
    stats: &IndexStats,
    shard: Option<ShardRole>,
) -> Result<(IndexState, AdvanceMode), String> {
    let snapshot_steps = rec.snapshot.steps;
    let snapshot_keys = KeySet::parse(&rec.snapshot.keys_dsl)
        .map_err(|e| format!("persisted key set does not parse: {e}"))?;
    let mut g = OverlayGraph::new(rec.snapshot.graph);
    // The persisted steps were attributed against a compile of exactly
    // this graph under exactly this Σ; capture that mapping before the
    // WAL mutates either.
    let snapshot_compiled = snapshot_keys.compile(&g);
    let mut declared: Vec<Key> = snapshot_keys.keys().to_vec();
    let mut key_epoch = rec.snapshot.key_epoch;
    let mut added_types: Vec<String> = Vec::new();
    let mut touched: Vec<EntityId> = Vec::new();
    let mut monotone = true;
    let records = rec.wal;
    let version = records
        .last()
        .map_or(rec.snapshot.seq, |r| r.seq.max(rec.snapshot.seq));

    for record in &records {
        let replay_err =
            |e: String| -> String { format!("WAL record {} does not replay: {e}", record.seq) };
        match &record.op {
            WalOp::Insert(specs) => {
                for s in specs {
                    let (subj, obj, _) = s.apply_overlay(&mut g);
                    touched.push(subj);
                    touched.extend(obj);
                }
            }
            WalOp::Delete(specs) => {
                // Resolve the whole record against the pre-record graph
                // before applying — exactly like the accept path, whose
                // `doomed` set tolerates a batch naming a triple twice. A
                // spec-by-spec apply would fail on such (accepted, logged)
                // batches and brick recovery.
                let mut doomed: FxHashSet<Triple> = FxHashSet::default();
                for s in specs {
                    doomed.insert(resolve_triple(&g, s).map_err(replay_err)?);
                }
                for t in doomed {
                    g.delete_triple(t);
                }
                monotone = false;
            }
            WalOp::AddKey(dsl) => {
                let new = parse_keys(dsl).map_err(|e| replay_err(e.to_string()))?;
                for k in new {
                    if declared.iter().any(|d| d.name == k.name) {
                        return Err(replay_err(format!("duplicate key name {:?}", k.name)));
                    }
                    added_types.push(k.target_type.clone());
                    declared.push(k);
                }
                key_epoch += 1;
            }
            WalOp::DropKey(name) => {
                let at = declared
                    .iter()
                    .position(|d| &d.name == name)
                    .ok_or_else(|| replay_err(format!("no key named {name:?}")))?;
                declared.remove(at);
                key_epoch += 1;
                monotone = false;
            }
        }
    }
    let keys = Arc::new(KeySet::new(declared).map_err(|e| e.to_string())?);
    // Keys added in the suffix wake the entities they are defined on,
    // exactly like the live ADDKEY path (resolved against the *final*
    // graph: inserts later in the suffix may have created the type).
    for ty in added_types {
        if let Some(t) = g.etype(&ty) {
            touched.extend(g.entities_of_type(t));
        }
    }
    touched.sort_unstable();
    touched.dedup();

    // A long WAL suffix can leave a delta far past the configured
    // compaction threshold; fold it into a fresh base once before chasing,
    // so the recovered serving state starts compact instead of dragging
    // the oversized delta until the first accepted write.
    let g = fold_if_over_threshold(g, compact_threshold, stats);

    let compiled = keys.compile(&g);
    // The persisted step log regenerates the snapshot's terminal Eq.
    let mut base = EqRel::identity(g.num_entities());
    for s in &snapshot_steps {
        base.union(s.pair.0, s.pair.1);
    }
    let (eq, steps, mode) = if !monotone {
        // Deletions and dropped keys are not monotone: one full chase
        // over the final graph under the final Σ (the owned slice only,
        // when recovering a shard — the coordinator re-syncs externals
        // after the restart).
        let r = match shard {
            Some(role) => chase_shard_slice(
                &g,
                &compiled,
                &EqRel::identity(g.num_entities()),
                role,
                &Span::disabled(),
            ),
            None => engine.full_chase(&g, &compiled, ChaseOrder::Deterministic),
        };
        stats.startup_rounds.set(r.rounds as u64);
        stats.startup_iso_checks.set(r.iso_checks);
        stats.chase.record(&r);
        (r.eq, StepLog::from_steps(r.steps), AdvanceMode::FullRechase)
    } else if !touched.is_empty() {
        // Monotone suffix (inserts and/or added keys): the persisted Eq
        // seeds a delta chase woken around the inserted triples and the
        // added keys' target-type entities. New vocabulary or new keys can
        // have shifted compiled indices — remap the persisted prefix's
        // attribution before appending.
        let r = chase_incremental(&g, &compiled, &base, &touched);
        stats.startup_rounds.set(r.rounds as u64);
        stats.startup_iso_checks.set(r.iso_checks);
        stats.chase.record(&r);
        let prefix = remap_steps(&snapshot_compiled, &compiled, snapshot_steps);
        let log = StepLog::from_steps(prefix).appended(r.steps);
        (r.eq, log, AdvanceMode::Incremental)
    } else {
        // Nothing to replay: the snapshot is the state.
        let prefix = remap_steps(&snapshot_compiled, &compiled, snapshot_steps);
        (base, StepLog::from_steps(prefix), AdvanceMode::NoOp)
    };
    let degrees = DegreeBuckets::build(&g);
    Ok((
        IndexState::build(g, keys, compiled, eq, steps, degrees, version, key_epoch),
        mode,
    ))
}

/// Opens the durable store for a config, mapping errors to protocol text.
fn open_store(dur: &Durability) -> Result<Store, String> {
    Store::open(dur).map_err(|e| format!("cannot open data dir {:?}: {e}", dur.dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(i: u32) -> ChaseStep {
        ChaseStep {
            pair: (EntityId(i), EntityId(i + 1)),
            key: 0,
        }
    }

    #[test]
    fn step_log_shares_prefixes_across_appends() {
        let base = StepLog::from_steps(vec![step(0), step(1)]);
        let longer = base.appended(vec![step(2)]);
        let longest = longer.appended(vec![step(3), step(4)]);
        // Appending never mutates or copies the prefix.
        assert_eq!(base.len(), 2);
        assert_eq!(longer.len(), 3);
        assert_eq!(longest.len(), 5);
        assert_eq!(longest.to_vec(), (0..5).map(step).collect::<Vec<_>>());
        assert_eq!(base.to_vec(), vec![step(0), step(1)]);
        // Empty segments add nothing (and no chain node).
        let same = base.appended(Vec::new());
        assert_eq!(same.len(), base.len());
    }

    #[test]
    fn maintained_degrees_match_fresh_build_across_updates() {
        use gk_graph::{parse_graph, parse_triple_specs};

        let check = |idx: &EmIndex| {
            let snap = idx.snapshot();
            let fresh = DegreeBuckets::build(&snap.graph);
            assert_eq!(snap.degrees().len(), fresh.len());
            for e in snap.graph.entities() {
                assert_eq!(snap.degrees().out_degree(e), fresh.out_degree(e), "{e:?}");
                assert_eq!(snap.degrees().in_degree(e), fresh.in_degree(e), "{e:?}");
                assert_eq!(snap.degrees().loop_degree(e), fresh.loop_degree(e), "{e:?}");
            }
        };

        let idx = EmIndex::new(
            parse_graph(
                r#"
                a1:album name_of "X"
                a1:album recorded_by r1:artist
                r1:artist name_of "B"
                "#,
            )
            .unwrap(),
            KeySet::parse(r#"key "Q" album(x) { x -name_of-> n*; }"#).unwrap(),
        );
        check(&idx);

        // Insert touching an existing entity and creating a new one.
        let specs =
            parse_triple_specs("a2:album name_of \"X\"\na1:album release_year \"1996\"").unwrap();
        idx.insert(&specs).unwrap();
        check(&idx);

        // Delete drops a touched row's degree.
        let specs = parse_triple_specs(r#"a1:album recorded_by r1:artist"#).unwrap();
        idx.delete(&specs).unwrap();
        check(&idx);

        // Key changes leave the graph — and so the degrees — untouched.
        idx.add_keys(parse_keys(r#"key "QA" artist(x) { x -name_of-> n*; }"#).unwrap())
            .unwrap();
        check(&idx);
        idx.drop_key("QA").unwrap();
        check(&idx);
    }

    #[test]
    fn step_log_deep_chain_drops_without_overflow() {
        // One segment per advance: a long-lived index accumulates a chain
        // far deeper than the stack; the iterative StepSeg::drop must
        // unlink it without recursing.
        let mut log = StepLog::default();
        for i in 0..200_000u32 {
            log = log.appended(vec![step(i)]);
        }
        assert_eq!(log.len(), 200_000);
        // A snapshot sharing a prefix keeps the shared tail alive.
        let early_holder = log.clone();
        drop(log);
        assert_eq!(early_holder.len(), 200_000);
        drop(early_holder); // the whole chain unlinks here
    }
}
