//! The resident entity-matching index: `chase(G, Σ)` held in memory,
//! advanced incrementally as triples stream in.
//!
//! Readers never block on writers: the index keeps its whole queryable
//! state — graph, compiled keys, terminal `Eq`, canonical-representative
//! map, duplicate clusters — in one immutable [`IndexState`] behind an
//! `Arc`, and queries clone the `Arc` out of a `parking_lot::RwLock` whose
//! critical section is that clone. Updates build the *next* state off to
//! the side (insert-only batches advance via [`chase_incremental`]; a
//! deletion batch falls back to **one** full re-chase, since deletions are
//! not monotone) and swap it in under the write lock. A query therefore
//! always sees either the complete pre-update or the complete post-update
//! `Eq` — never a torn intermediate.
//!
//! ## Durability
//!
//! With a [`Durability`] config the index writes through a
//! [`gk_store::Store`]: every accepted update batch is appended to the
//! write-ahead log **before** the new snapshot is swapped in, so an
//! acknowledged update survives a process crash (machine-crash durability
//! is governed by the configured [`gk_store::FsyncMode`]: `always` loses
//! nothing, the default `batch` bounds the loss to one sync window).
//! [`EmIndex::open_durable`]
//! recovers by loading the newest valid on-disk snapshot and replaying the
//! WAL suffix through the incremental chase (or one full chase when the
//! suffix deletes triples), turning restart cost from `O(chase)` into
//! `O(load + replay)`.

use gk_core::{
    chase_incremental, prove, verify, write_keys, ChaseEngine, ChaseOrder, ChaseStep,
    CompiledKeySet, EqRel, KeySet, Proof,
};
use gk_graph::{EntityId, Graph, GraphBuilder, Obj, ObjSpec, Triple, TripleSpec};
use gk_store::{
    CompactReport, Durability, FsyncMode, Recovered, SnapshotData, Store, WalKind, WalRecord,
};
use parking_lot::{Mutex, RwLock};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How an update advanced the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceMode {
    /// Insert-only batch: delta chase seeded from the previous `Eq`.
    Incremental,
    /// Deletion (non-monotone): the whole chase was recomputed.
    FullRechase,
    /// The batch added nothing new (all triples already present).
    NoOp,
}

impl std::fmt::Display for AdvanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvanceMode::Incremental => write!(f, "incremental"),
            AdvanceMode::FullRechase => write!(f, "full-rechase"),
            AdvanceMode::NoOp => write!(f, "noop"),
        }
    }
}

/// What one update did to the index.
#[derive(Clone, Debug)]
pub struct AdvanceReport {
    /// Which path advanced the index.
    pub mode: AdvanceMode,
    /// Triples in the batch (after text parsing).
    pub triples: usize,
    /// Entities incident to the new triples.
    pub touched: usize,
    /// Entities created by the batch.
    pub new_entities: usize,
    /// Identified pairs added to the closure by this advance.
    pub new_pairs: usize,
    /// Chase rounds performed.
    pub rounds: usize,
    /// Subgraph-isomorphism checks performed.
    pub iso_checks: u64,
}

/// How a durable startup obtained its serving state.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// True when state came from disk; false when the data directory was
    /// fresh and the index bootstrapped with a full startup chase.
    pub recovered: bool,
    /// Version of the snapshot used (present whenever `recovered`).
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub wal_replayed: usize,
    /// How the replayed suffix advanced the snapshot state.
    pub replay_mode: AdvanceMode,
    /// Whether a torn or corrupt WAL tail was discarded.
    pub wal_torn: bool,
    /// Snapshot files skipped because they failed validation.
    pub skipped_snapshots: usize,
}

/// The accumulated chase-step log, stored as a persistent (structurally
/// shared) list of segments: every advance appends one segment, and a new
/// [`IndexState`] shares the whole prefix through `Arc`s — so the
/// `O(delta)` incremental insert path never copies the `O(history)` log.
/// Materializing the flat list ([`StepLog::to_vec`]) happens only when a
/// snapshot is cut.
#[derive(Clone, Default)]
pub struct StepLog {
    head: Option<Arc<StepSeg>>,
    len: usize,
}

struct StepSeg {
    steps: Vec<ChaseStep>,
    prev: Option<Arc<StepSeg>>,
}

impl StepLog {
    /// A log holding `steps` as its single segment.
    fn from_steps(steps: Vec<ChaseStep>) -> Self {
        StepLog::default().appended(steps)
    }

    /// This log plus one more segment; the prefix is shared, not copied.
    fn appended(&self, steps: Vec<ChaseStep>) -> Self {
        if steps.is_empty() {
            return self.clone();
        }
        StepLog {
            len: self.len + steps.len(),
            head: Some(Arc::new(StepSeg {
                steps,
                prev: self.head.clone(),
            })),
        }
    }

    /// Total steps across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no step has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materializes the log in application order.
    pub fn to_vec(&self) -> Vec<ChaseStep> {
        let mut segs = Vec::new();
        let mut cur = self.head.as_deref();
        while let Some(seg) = cur {
            segs.push(&seg.steps);
            cur = seg.prev.as_deref();
        }
        let mut out = Vec::with_capacity(self.len);
        for seg in segs.into_iter().rev() {
            out.extend_from_slice(seg);
        }
        out
    }
}

impl Drop for StepSeg {
    fn drop(&mut self) {
        // Unlink iteratively: a long singly-linked chain dropped
        // recursively would overflow the stack once the index has seen
        // enough advances.
        let mut cur = self.prev.take();
        while let Some(arc) = cur {
            match Arc::try_unwrap(arc) {
                Ok(mut seg) => cur = seg.prev.take(),
                Err(_) => break, // still shared by a live snapshot
            }
        }
    }
}

/// One immutable, fully indexed version of the resolution state.
pub struct IndexState {
    /// The graph this version was chased on.
    pub graph: Graph,
    /// Σ compiled against [`IndexState::graph`].
    pub compiled: CompiledKeySet,
    /// The terminal `Eq` — `chase(G, Σ)`.
    pub eq: EqRel,
    /// Monotonically increasing version, bumped by every applied update.
    pub version: u64,
    /// Accumulated chase steps: every merge in [`IndexState::eq`] with the
    /// key that certified it. This is the generating log a snapshot
    /// persists — replaying it reproduces the closure.
    steps: StepLog,
    /// Canonical representative (smallest member id) per entity.
    reps: Vec<EntityId>,
    /// Non-trivial clusters, keyed by canonical representative.
    dups: FxHashMap<EntityId, Vec<EntityId>>,
}

impl IndexState {
    fn build(
        graph: Graph,
        compiled: CompiledKeySet,
        eq: EqRel,
        steps: StepLog,
        version: u64,
    ) -> Self {
        let mut reps: Vec<EntityId> = graph.entities().collect();
        let mut dups = FxHashMap::default();
        for class in eq.classes() {
            let rep = class[0]; // classes are sorted: min member
            for &e in &class {
                reps[e.idx()] = rep;
            }
            dups.insert(rep, class);
        }
        IndexState {
            graph,
            compiled,
            eq,
            version,
            steps,
            reps,
            dups,
        }
    }

    /// Canonical representative of `e` (itself when unduplicated).
    pub fn rep(&self, e: EntityId) -> EntityId {
        self.reps[e.idx()]
    }

    /// Are `a` and `b` identified under the terminal `Eq`?
    pub fn same(&self, a: EntityId, b: EntityId) -> bool {
        self.rep(a) == self.rep(b)
    }

    /// All members of `e`'s cluster (sorted), or `None` when `e` has no
    /// duplicates.
    pub fn cluster(&self, e: EntityId) -> Option<&[EntityId]> {
        self.dups.get(&self.rep(e)).map(Vec::as_slice)
    }

    /// Number of non-trivial clusters.
    pub fn num_clusters(&self) -> usize {
        self.dups.len()
    }

    /// The accumulated chase-step log (merge log with key attribution).
    pub fn steps(&self) -> &StepLog {
        &self.steps
    }

    /// A verified proof that the chase identifies `(a, b)`, or `None`.
    pub fn explain(&self, a: EntityId, b: EntityId) -> Option<Proof> {
        let proof = prove(&self.graph, &self.compiled, a, b)?;
        verify(&self.graph, &self.compiled, &proof).expect("prove() must emit a verifiable proof");
        Some(proof)
    }
}

/// Cumulative counters, updated atomically outside the state lock.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// Applied insert batches that advanced via the incremental path.
    pub incremental_advances: AtomicU64,
    /// Updates that fell back to a full re-chase.
    pub full_rechases: AtomicU64,
    /// Batches that were no-ops.
    pub noops: AtomicU64,
    /// Chase rounds across all applied updates (delta and full).
    pub update_rounds: AtomicU64,
    /// Rounds of the startup chase (or of the recovery replay).
    pub startup_rounds: AtomicU64,
    /// Isomorphism checks of the startup chase (or recovery replay).
    pub startup_iso_checks: AtomicU64,
    /// Startup wall-clock (chase or snapshot-load + replay), microseconds.
    pub startup_micros: AtomicU64,
}

/// The resident index: owns Σ, the current [`IndexState`], and the update
/// path. Many readers, one writer.
pub struct EmIndex {
    keys: KeySet,
    engine: ChaseEngine,
    state: RwLock<Arc<IndexState>>,
    /// Serializes writers so compute can happen outside the state lock.
    ingest: Mutex<()>,
    /// The durable write-through store; `None` runs purely in memory.
    store: Option<Store>,
    /// Cumulative update counters.
    pub stats: IndexStats,
}

impl EmIndex {
    /// Loads a graph and a key set, runs the startup chase with the default
    /// [`ChaseEngine::Incremental`] engine, and builds the serving state.
    pub fn new(graph: Graph, keys: KeySet) -> Self {
        Self::with_engine(graph, keys, ChaseEngine::default())
    }

    /// Like [`EmIndex::new`], but selecting the chase engine: `Reference`
    /// re-chases fully on every update, `Incremental` (default) rides the
    /// monotone delta chase for inserts, `Parallel { threads }` additionally
    /// runs all full chases — startup and the deletion fallback — on worker
    /// threads via [`gk_core::chase_parallel`].
    pub fn with_engine(graph: Graph, keys: KeySet, engine: ChaseEngine) -> Self {
        let stats = IndexStats::default();
        let state = startup_chase(graph, &keys, engine, &stats);
        EmIndex {
            keys,
            engine,
            state: RwLock::new(Arc::new(state)),
            ingest: Mutex::new(()),
            store: None,
            stats,
        }
    }

    /// Opens the index **durably**: accepted updates are logged to
    /// `dur.dir` before they are applied, and `SNAPSHOT`/`COMPACT` cut
    /// point-in-time snapshot files.
    ///
    /// * Fresh directory — runs the startup chase on `graph` and writes
    ///   the initial snapshot, so the *next* start skips the chase.
    /// * Directory with state — ignores `graph`, loads the newest valid
    ///   snapshot and replays the WAL suffix (see
    ///   [`EmIndex::recover_durable`]). `keys` must equal the persisted
    ///   key set; pass different keys only after clearing the directory.
    pub fn open_durable(
        graph: Graph,
        keys: KeySet,
        engine: ChaseEngine,
        dur: &Durability,
    ) -> Result<(Self, RecoveryReport), String> {
        let store = open_store(dur)?;
        match store.recover().map_err(|e| e.to_string())? {
            Some(rec) => {
                let persisted = KeySet::parse(&rec.snapshot.keys_dsl)
                    .map_err(|e| format!("persisted key set does not parse: {e}"))?;
                if write_keys(persisted.keys()) != write_keys(keys.keys()) {
                    return Err(format!(
                        "key set differs from the one persisted in {:?}; \
                         recover with the original keys or clear the data dir",
                        dur.dir
                    ));
                }
                Self::from_recovered(store, rec, keys, engine)
            }
            None => {
                let stats = IndexStats::default();
                let state = startup_chase(graph, &keys, engine, &stats);
                let index = EmIndex {
                    keys,
                    engine,
                    state: RwLock::new(Arc::new(state)),
                    ingest: Mutex::new(()),
                    store: Some(store),
                    stats,
                };
                // Initial snapshot: the next start is load + replay.
                index.snapshot_to_disk()?;
                Ok((
                    index,
                    RecoveryReport {
                        recovered: false,
                        snapshot_seq: Some(0),
                        wal_replayed: 0,
                        replay_mode: AdvanceMode::NoOp,
                        wal_torn: false,
                        skipped_snapshots: 0,
                    },
                ))
            }
        }
    }

    /// Recovers an index purely from a data directory — graph *and* keys
    /// come from the persisted snapshot. Returns `Ok(None)` when the
    /// directory holds no state.
    pub fn recover_durable(
        dur: &Durability,
        engine: ChaseEngine,
    ) -> Result<Option<(Self, RecoveryReport)>, String> {
        let store = open_store(dur)?;
        match store.recover().map_err(|e| e.to_string())? {
            None => Ok(None),
            Some(rec) => {
                let keys = KeySet::parse(&rec.snapshot.keys_dsl)
                    .map_err(|e| format!("persisted key set does not parse: {e}"))?;
                Self::from_recovered(store, rec, keys, engine).map(Some)
            }
        }
    }

    /// Builds the serving state from a loaded snapshot + WAL suffix.
    fn from_recovered(
        store: Store,
        rec: Recovered,
        keys: KeySet,
        engine: ChaseEngine,
    ) -> Result<(Self, RecoveryReport), String> {
        let t0 = Instant::now();
        let snapshot_seq = rec.snapshot.seq;
        let wal_replayed = rec.wal.len();
        let wal_torn = rec.wal_torn;
        let skipped_snapshots = rec.skipped_snapshots;
        let stats = IndexStats::default();
        let (state, replay_mode) = replay(rec, &keys, engine, &stats)?;
        stats
            .startup_micros
            .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        let index = EmIndex {
            keys,
            engine,
            state: RwLock::new(Arc::new(state)),
            ingest: Mutex::new(()),
            store: Some(store),
            stats,
        };
        Ok((
            index,
            RecoveryReport {
                recovered: true,
                snapshot_seq: Some(snapshot_seq),
                wal_replayed,
                replay_mode,
                wal_torn,
                skipped_snapshots,
            },
        ))
    }

    /// The key set Σ the index serves.
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// The configured chase engine.
    pub fn engine(&self) -> ChaseEngine {
        self.engine
    }

    /// The fsync mode of the durable store, or `None` in-memory.
    pub fn durability(&self) -> Option<FsyncMode> {
        self.store.as_ref().map(Store::fsync_mode)
    }

    /// Records currently in the write-ahead log (0 without durability).
    pub fn wal_records(&self) -> u64 {
        self.store.as_ref().map_or(0, Store::wal_records)
    }

    /// Version of the newest on-disk snapshot, if durable and present.
    pub fn snapshot_seq(&self) -> Option<u64> {
        self.store.as_ref().and_then(Store::snapshot_seq)
    }

    /// An immutable snapshot of the current state. Queries run entirely on
    /// the snapshot; the lock is held only for the `Arc` clone.
    pub fn snapshot(&self) -> Arc<IndexState> {
        self.state.read().clone()
    }

    /// Cuts a point-in-time snapshot of the current state to disk.
    /// Returns `(snapshot_seq, bytes)`.
    pub fn snapshot_to_disk(&self) -> Result<(u64, u64), String> {
        self.persist_with("snapshot", |store, data| store.snapshot(data))
    }

    /// Cuts a snapshot, truncates the WAL and prunes older snapshots.
    pub fn compact_store(&self) -> Result<CompactReport, String> {
        Ok(self
            .persist_with("compaction", |store, data| store.compact(data))?
            .1)
    }

    /// Freezes the current state under the ingest lock and hands it to a
    /// store operation — the one place that decides what a snapshot
    /// captures, shared by `SNAPSHOT` and `COMPACT`.
    fn persist_with<T>(
        &self,
        what: &str,
        op: impl FnOnce(&Store, &SnapshotData<'_>) -> std::io::Result<T>,
    ) -> Result<(u64, T), String> {
        let store = self.store_or_err()?;
        let _writer = self.ingest.lock();
        let snap = self.snapshot();
        let dsl = write_keys(self.keys.keys());
        let steps = snap.steps().to_vec();
        let out = op(
            store,
            &SnapshotData {
                seq: snap.version,
                keys_dsl: &dsl,
                graph: &snap.graph,
                steps: &steps,
            },
        )
        .map_err(|e| format!("{what} failed: {e}"))?;
        Ok((snap.version, out))
    }

    fn store_or_err(&self) -> Result<&Store, String> {
        self.store
            .as_ref()
            .ok_or_else(|| "durability is off (start with --data-dir)".to_string())
    }

    /// Applies an insert-only batch of triples.
    ///
    /// Entity ids are stable: the new graph re-opens the old one via
    /// [`GraphBuilder::from_graph`], so the previous terminal `Eq` seeds a
    /// delta chase ([`chase_incremental`]) woken only around the touched
    /// entities. Returns an error (and changes nothing) if a triple
    /// re-declares an existing entity with a different type, or if the
    /// write-ahead log cannot record the batch.
    pub fn insert(&self, specs: &[TripleSpec]) -> Result<AdvanceReport, String> {
        let _writer = self.ingest.lock();
        let snap = self.snapshot();

        // Validate entity types against the graph and within the batch
        // before touching the builder (GraphBuilder panics on a clash).
        fn check<'a>(
            g: &Graph,
            batch: &mut FxHashMap<&'a str, &'a str>,
            name: &'a str,
            ty: &'a str,
        ) -> Result<(), String> {
            if let Some(e) = g.entity_named(name) {
                let have = g.type_str(g.entity_type(e));
                if have != ty {
                    return Err(format!(
                        "entity {name:?} already has type {have:?}, not {ty:?}"
                    ));
                }
            }
            match batch.get(name) {
                Some(&have) if have != ty => Err(format!(
                    "entity {name:?} used with types {have:?} and {ty:?}"
                )),
                _ => {
                    batch.insert(name, ty);
                    Ok(())
                }
            }
        }
        let mut batch_types: FxHashMap<&str, &str> = FxHashMap::default();
        for s in specs {
            check(&snap.graph, &mut batch_types, &s.subject, &s.subject_type)?;
            if let ObjSpec::Entity { name, ty } = &s.object {
                check(&snap.graph, &mut batch_types, name, ty)?;
            }
        }

        let old_entities = snap.graph.num_entities();
        let mut b = GraphBuilder::from_graph(&snap.graph);
        let mut touched: Vec<EntityId> = Vec::new();
        for s in specs {
            let (subj, obj) = s.apply(&mut b);
            touched.push(subj);
            touched.extend(obj);
        }
        touched.sort_unstable();
        touched.dedup();
        let g2 = b.freeze();

        if g2.num_triples() == snap.graph.num_triples()
            && g2.num_entities() == snap.graph.num_entities()
        {
            self.stats.noops.fetch_add(1, Ordering::Relaxed);
            return Ok(AdvanceReport {
                mode: AdvanceMode::NoOp,
                triples: specs.len(),
                touched: touched.len(),
                new_entities: 0,
                new_pairs: 0,
                rounds: 0,
                iso_checks: 0,
            });
        }

        // The heavy part runs without the state lock: readers keep serving
        // the previous snapshot.
        let compiled2 = self.keys.compile(&g2);
        let (result, mode) = if self.engine.inserts_incrementally() {
            // Monotone delta chase: valid for insert-only batches under any
            // engine; strictly less work than a full chase.
            (
                chase_incremental(&g2, &compiled2, &snap.eq, &touched),
                AdvanceMode::Incremental,
            )
        } else {
            (
                self.engine
                    .full_chase(&g2, &compiled2, ChaseOrder::Deterministic),
                AdvanceMode::FullRechase,
            )
        };
        let new_pairs = result.eq.num_identified_pairs() - snap.eq.num_identified_pairs();
        let report = AdvanceReport {
            mode,
            triples: specs.len(),
            touched: touched.len(),
            new_entities: g2.num_entities() - old_entities,
            new_pairs,
            rounds: result.rounds,
            iso_checks: result.iso_checks,
        };
        let steps2 = match mode {
            // The delta result reports only the new steps; the accumulated
            // log shares its prefix with the previous state.
            AdvanceMode::Incremental => snap.steps.appended(result.steps),
            _ => StepLog::from_steps(result.steps),
        };
        // Write-ahead: the accepted batch must be on the log before the
        // new state becomes visible, or a crash could lose an
        // acknowledged update.
        self.log_update(WalKind::Insert, snap.version + 1, specs)?;
        let next = IndexState::build(g2, compiled2, result.eq, steps2, snap.version + 1);
        *self.state.write() = Arc::new(next);
        self.stats
            .update_rounds
            .fetch_add(report.rounds as u64, Ordering::Relaxed);
        match mode {
            AdvanceMode::Incremental => &self.stats.incremental_advances,
            _ => &self.stats.full_rechases,
        }
        .fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// Deletes a batch of triples and recomputes the chase from scratch —
    /// **once** for the whole batch.
    ///
    /// Keys are monotone only under *insertions*; a deletion can invalidate
    /// prior merges, so this is the documented full re-chase fallback. A
    /// batch of consecutive deletions therefore costs one re-chase, not
    /// one per triple.
    pub fn delete(&self, specs: &[TripleSpec]) -> Result<AdvanceReport, String> {
        let _writer = self.ingest.lock();
        let snap = self.snapshot();
        let g = &snap.graph;

        let mut doomed: FxHashSet<Triple> = FxHashSet::default();
        let mut endpoints: FxHashSet<EntityId> = FxHashSet::default();
        for spec in specs {
            let t = resolve_triple(g, spec)?;
            endpoints.insert(t.s);
            if let Obj::Entity(o) = t.o {
                endpoints.insert(o);
            }
            doomed.insert(t);
        }
        if doomed.is_empty() {
            return Err("DELETE needs at least one triple".into());
        }

        // Rebuild the graph without the triples — entity ids and names are
        // preserved (entities are never garbage-collected by deletion).
        let g2 = GraphBuilder::from_graph_filtered(g, |t| !doomed.contains(&t)).freeze();
        let compiled2 = self.keys.compile(&g2);
        let full = self
            .engine
            .full_chase(&g2, &compiled2, ChaseOrder::Deterministic);
        let old_pairs = snap.eq.num_identified_pairs();
        let new_total = full.eq.num_identified_pairs();
        let report = AdvanceReport {
            mode: AdvanceMode::FullRechase,
            triples: specs.len(),
            touched: endpoints.len(),
            new_entities: 0,
            new_pairs: new_total.saturating_sub(old_pairs),
            rounds: full.rounds,
            iso_checks: full.iso_checks,
        };
        self.log_update(WalKind::Delete, snap.version + 1, specs)?;
        let next = IndexState::build(
            g2,
            compiled2,
            full.eq,
            StepLog::from_steps(full.steps),
            snap.version + 1,
        );
        *self.state.write() = Arc::new(next);
        self.stats
            .update_rounds
            .fetch_add(report.rounds as u64, Ordering::Relaxed);
        self.stats.full_rechases.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// Appends an accepted batch to the WAL (no-op without durability).
    fn log_update(&self, kind: WalKind, seq: u64, specs: &[TripleSpec]) -> Result<(), String> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        store
            .append(&WalRecord {
                seq,
                kind,
                specs: specs.to_vec(),
            })
            .map_err(|e| format!("write-ahead log append failed; update not applied: {e}"))
    }
}

/// Runs the startup chase and builds version 0 of the serving state.
fn startup_chase(
    graph: Graph,
    keys: &KeySet,
    engine: ChaseEngine,
    stats: &IndexStats,
) -> IndexState {
    let t0 = Instant::now();
    let compiled = keys.compile(&graph);
    let r = engine.full_chase(&graph, &compiled, ChaseOrder::Deterministic);
    stats
        .startup_rounds
        .store(r.rounds as u64, Ordering::Relaxed);
    stats
        .startup_iso_checks
        .store(r.iso_checks, Ordering::Relaxed);
    stats
        .startup_micros
        .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    IndexState::build(graph, compiled, r.eq, StepLog::from_steps(r.steps), 0)
}

/// Resolves a delete spec against the graph with the same type contract as
/// insert — a spec carrying a wrong `:Type` annotation is a client bug.
fn resolve_triple(g: &Graph, spec: &TripleSpec) -> Result<Triple, String> {
    let resolve = |name: &str, ty: &str| -> Result<EntityId, String> {
        let e = g
            .entity_named(name)
            .ok_or_else(|| format!("unknown entity {name:?}"))?;
        let have = g.type_str(g.entity_type(e));
        if have != ty {
            return Err(format!("entity {name:?} has type {have:?}, not {ty:?}"));
        }
        Ok(e)
    };
    let s = resolve(&spec.subject, &spec.subject_type)?;
    let p = g
        .pred(&spec.pred)
        .ok_or_else(|| format!("unknown predicate {:?}", spec.pred))?;
    let o = match &spec.object {
        ObjSpec::Entity { name, ty } => Obj::Entity(resolve(name, ty)?),
        ObjSpec::Value(v) => Obj::Value(g.value(v).ok_or_else(|| format!("unknown value {v:?}"))?),
    };
    if !g.has(s, p, o) {
        return Err("no such triple".into());
    }
    Ok(Triple { s, p, o })
}

/// Replays the recovered WAL suffix on top of the snapshot state.
///
/// Graph mutations are applied in record order (insert runs batched into
/// one builder pass; **consecutive delete records coalesce into a single
/// filtered rebuild**). The chase then runs once over the final graph:
/// through [`chase_incremental`] seeded by the persisted `Eq` when the
/// suffix was insert-only (monotone), or as one full chase under the
/// configured engine when any record deleted triples.
fn replay(
    rec: Recovered,
    keys: &KeySet,
    engine: ChaseEngine,
    stats: &IndexStats,
) -> Result<(IndexState, AdvanceMode), String> {
    let snapshot_steps = rec.snapshot.steps;
    let mut g = rec.snapshot.graph;
    let mut touched: Vec<EntityId> = Vec::new();
    let mut had_delete = false;
    let records = rec.wal;
    let version = records
        .last()
        .map_or(rec.snapshot.seq, |r| r.seq.max(rec.snapshot.seq));

    let mut i = 0;
    while i < records.len() {
        match records[i].kind {
            WalKind::Insert => {
                let mut b = GraphBuilder::from_graph(&g);
                while i < records.len() && records[i].kind == WalKind::Insert {
                    for s in &records[i].specs {
                        let (subj, obj) = s.apply(&mut b);
                        touched.push(subj);
                        touched.extend(obj);
                    }
                    i += 1;
                }
                g = b.freeze();
            }
            WalKind::Delete => {
                let mut doomed: FxHashSet<Triple> = FxHashSet::default();
                while i < records.len() && records[i].kind == WalKind::Delete {
                    for s in &records[i].specs {
                        doomed.insert(resolve_triple(&g, s).map_err(|e| {
                            format!("WAL record {} does not replay: {e}", records[i].seq)
                        })?);
                    }
                    i += 1;
                }
                g = GraphBuilder::from_graph_filtered(&g, |t| !doomed.contains(&t)).freeze();
                had_delete = true;
            }
        }
    }
    touched.sort_unstable();
    touched.dedup();

    let compiled = keys.compile(&g);
    // The persisted step log regenerates the snapshot's terminal Eq.
    let mut base = EqRel::identity(g.num_entities());
    for s in &snapshot_steps {
        base.union(s.pair.0, s.pair.1);
    }
    let (eq, steps, mode) = if had_delete {
        // Deletions are not monotone: one full chase over the final graph.
        let r = engine.full_chase(&g, &compiled, ChaseOrder::Deterministic);
        stats
            .startup_rounds
            .store(r.rounds as u64, Ordering::Relaxed);
        stats
            .startup_iso_checks
            .store(r.iso_checks, Ordering::Relaxed);
        (r.eq, StepLog::from_steps(r.steps), AdvanceMode::FullRechase)
    } else if !touched.is_empty() {
        // Insert-only suffix: monotone, so the persisted Eq seeds a delta
        // chase woken only around the inserted triples.
        let r = chase_incremental(&g, &compiled, &base, &touched);
        stats
            .startup_rounds
            .store(r.rounds as u64, Ordering::Relaxed);
        stats
            .startup_iso_checks
            .store(r.iso_checks, Ordering::Relaxed);
        let log = StepLog::from_steps(snapshot_steps).appended(r.steps);
        (r.eq, log, AdvanceMode::Incremental)
    } else {
        // Nothing to replay: the snapshot is the state.
        (base, StepLog::from_steps(snapshot_steps), AdvanceMode::NoOp)
    };
    Ok((IndexState::build(g, compiled, eq, steps, version), mode))
}

/// Opens the durable store for a config, mapping errors to protocol text.
fn open_store(dur: &Durability) -> Result<Store, String> {
    Store::open(dur).map_err(|e| format!("cannot open data dir {:?}: {e}", dur.dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(i: u32) -> ChaseStep {
        ChaseStep {
            pair: (EntityId(i), EntityId(i + 1)),
            key: 0,
        }
    }

    #[test]
    fn step_log_shares_prefixes_across_appends() {
        let base = StepLog::from_steps(vec![step(0), step(1)]);
        let longer = base.appended(vec![step(2)]);
        let longest = longer.appended(vec![step(3), step(4)]);
        // Appending never mutates or copies the prefix.
        assert_eq!(base.len(), 2);
        assert_eq!(longer.len(), 3);
        assert_eq!(longest.len(), 5);
        assert_eq!(longest.to_vec(), (0..5).map(step).collect::<Vec<_>>());
        assert_eq!(base.to_vec(), vec![step(0), step(1)]);
        // Empty segments add nothing (and no chain node).
        let same = base.appended(Vec::new());
        assert_eq!(same.len(), base.len());
    }

    #[test]
    fn step_log_deep_chain_drops_without_overflow() {
        // One segment per advance: a long-lived index accumulates a chain
        // far deeper than the stack; the iterative StepSeg::drop must
        // unlink it without recursing.
        let mut log = StepLog::default();
        for i in 0..200_000u32 {
            log = log.appended(vec![step(i)]);
        }
        assert_eq!(log.len(), 200_000);
        // A snapshot sharing a prefix keeps the shared tail alive.
        let early_holder = log.clone();
        drop(log);
        assert_eq!(early_holder.len(), 200_000);
        drop(early_holder); // the whole chain unlinks here
    }
}
