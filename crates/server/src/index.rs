//! The resident entity-matching index: `chase(G, Σ)` held in memory,
//! advanced incrementally as triples stream in.
//!
//! Readers never block on writers: the index keeps its whole queryable
//! state — graph, compiled keys, terminal `Eq`, canonical-representative
//! map, duplicate clusters — in one immutable [`IndexState`] behind an
//! `Arc`, and queries clone the `Arc` out of a `parking_lot::RwLock` whose
//! critical section is that clone. Updates build the *next* state off to
//! the side (insert-only batches advance via [`chase_incremental`]; a
//! deletion falls back to a full re-chase, since deletions are not
//! monotone) and swap it in under the write lock. A query therefore always
//! sees either the complete pre-update or the complete post-update `Eq` —
//! never a torn intermediate.

use gk_core::{
    chase_incremental, prove, verify, ChaseEngine, ChaseOrder, CompiledKeySet, EqRel, KeySet, Proof,
};
use gk_graph::{EntityId, Graph, GraphBuilder, Obj, ObjSpec, TripleSpec};
use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How an update advanced the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceMode {
    /// Insert-only batch: delta chase seeded from the previous `Eq`.
    Incremental,
    /// Deletion (non-monotone): the whole chase was recomputed.
    FullRechase,
    /// The batch added nothing new (all triples already present).
    NoOp,
}

impl std::fmt::Display for AdvanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvanceMode::Incremental => write!(f, "incremental"),
            AdvanceMode::FullRechase => write!(f, "full-rechase"),
            AdvanceMode::NoOp => write!(f, "noop"),
        }
    }
}

/// What one update did to the index.
#[derive(Clone, Debug)]
pub struct AdvanceReport {
    /// Which path advanced the index.
    pub mode: AdvanceMode,
    /// Triples in the batch (after text parsing).
    pub triples: usize,
    /// Entities incident to the new triples.
    pub touched: usize,
    /// Entities created by the batch.
    pub new_entities: usize,
    /// Identified pairs added to the closure by this advance.
    pub new_pairs: usize,
    /// Chase rounds performed.
    pub rounds: usize,
    /// Subgraph-isomorphism checks performed.
    pub iso_checks: u64,
}

/// One immutable, fully indexed version of the resolution state.
pub struct IndexState {
    /// The graph this version was chased on.
    pub graph: Graph,
    /// Σ compiled against [`IndexState::graph`].
    pub compiled: CompiledKeySet,
    /// The terminal `Eq` — `chase(G, Σ)`.
    pub eq: EqRel,
    /// Monotonically increasing version, bumped by every applied update.
    pub version: u64,
    /// Canonical representative (smallest member id) per entity.
    reps: Vec<EntityId>,
    /// Non-trivial clusters, keyed by canonical representative.
    dups: FxHashMap<EntityId, Vec<EntityId>>,
}

impl IndexState {
    fn build(graph: Graph, compiled: CompiledKeySet, eq: EqRel, version: u64) -> Self {
        let mut reps: Vec<EntityId> = graph.entities().collect();
        let mut dups = FxHashMap::default();
        for class in eq.classes() {
            let rep = class[0]; // classes are sorted: min member
            for &e in &class {
                reps[e.idx()] = rep;
            }
            dups.insert(rep, class);
        }
        IndexState {
            graph,
            compiled,
            eq,
            version,
            reps,
            dups,
        }
    }

    /// Canonical representative of `e` (itself when unduplicated).
    pub fn rep(&self, e: EntityId) -> EntityId {
        self.reps[e.idx()]
    }

    /// Are `a` and `b` identified under the terminal `Eq`?
    pub fn same(&self, a: EntityId, b: EntityId) -> bool {
        self.rep(a) == self.rep(b)
    }

    /// All members of `e`'s cluster (sorted), or `None` when `e` has no
    /// duplicates.
    pub fn cluster(&self, e: EntityId) -> Option<&[EntityId]> {
        self.dups.get(&self.rep(e)).map(Vec::as_slice)
    }

    /// Number of non-trivial clusters.
    pub fn num_clusters(&self) -> usize {
        self.dups.len()
    }

    /// A verified proof that the chase identifies `(a, b)`, or `None`.
    pub fn explain(&self, a: EntityId, b: EntityId) -> Option<Proof> {
        let proof = prove(&self.graph, &self.compiled, a, b)?;
        verify(&self.graph, &self.compiled, &proof).expect("prove() must emit a verifiable proof");
        Some(proof)
    }
}

/// Cumulative counters, updated atomically outside the state lock.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// Applied insert batches that advanced via the incremental path.
    pub incremental_advances: AtomicU64,
    /// Updates that fell back to a full re-chase.
    pub full_rechases: AtomicU64,
    /// Batches that were no-ops.
    pub noops: AtomicU64,
    /// Chase rounds across all applied updates (delta and full).
    pub update_rounds: AtomicU64,
    /// Rounds of the startup chase.
    pub startup_rounds: AtomicU64,
    /// Isomorphism checks of the startup chase.
    pub startup_iso_checks: AtomicU64,
    /// Startup chase wall-clock, microseconds.
    pub startup_micros: AtomicU64,
}

/// The resident index: owns Σ, the current [`IndexState`], and the update
/// path. Many readers, one writer.
pub struct EmIndex {
    keys: KeySet,
    engine: ChaseEngine,
    state: RwLock<Arc<IndexState>>,
    /// Serializes writers so compute can happen outside the state lock.
    ingest: Mutex<()>,
    /// Cumulative update counters.
    pub stats: IndexStats,
}

impl EmIndex {
    /// Loads a graph and a key set, runs the startup chase with the default
    /// [`ChaseEngine::Incremental`] engine, and builds the serving state.
    pub fn new(graph: Graph, keys: KeySet) -> Self {
        Self::with_engine(graph, keys, ChaseEngine::default())
    }

    /// Like [`EmIndex::new`], but selecting the chase engine: `Reference`
    /// re-chases fully on every update, `Incremental` (default) rides the
    /// monotone delta chase for inserts, `Parallel { threads }` additionally
    /// runs all full chases — startup and the deletion fallback — on worker
    /// threads via [`gk_core::chase_parallel`].
    pub fn with_engine(graph: Graph, keys: KeySet, engine: ChaseEngine) -> Self {
        let t0 = Instant::now();
        let compiled = keys.compile(&graph);
        let r = engine.full_chase(&graph, &compiled, ChaseOrder::Deterministic);
        let stats = IndexStats::default();
        stats
            .startup_rounds
            .store(r.rounds as u64, Ordering::Relaxed);
        stats
            .startup_iso_checks
            .store(r.iso_checks, Ordering::Relaxed);
        stats
            .startup_micros
            .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        EmIndex {
            keys,
            engine,
            state: RwLock::new(Arc::new(IndexState::build(graph, compiled, r.eq, 0))),
            ingest: Mutex::new(()),
            stats,
        }
    }

    /// The key set Σ the index serves.
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// The configured chase engine.
    pub fn engine(&self) -> ChaseEngine {
        self.engine
    }

    /// An immutable snapshot of the current state. Queries run entirely on
    /// the snapshot; the lock is held only for the `Arc` clone.
    pub fn snapshot(&self) -> Arc<IndexState> {
        self.state.read().clone()
    }

    /// Applies an insert-only batch of triples.
    ///
    /// Entity ids are stable: the new graph re-opens the old one via
    /// [`GraphBuilder::from_graph`], so the previous terminal `Eq` seeds a
    /// delta chase ([`chase_incremental`]) woken only around the touched
    /// entities. Returns an error (and changes nothing) if a triple
    /// re-declares an existing entity with a different type.
    pub fn insert(&self, specs: &[TripleSpec]) -> Result<AdvanceReport, String> {
        let _writer = self.ingest.lock();
        let snap = self.snapshot();

        // Validate entity types against the graph and within the batch
        // before touching the builder (GraphBuilder panics on a clash).
        fn check<'a>(
            g: &Graph,
            batch: &mut FxHashMap<&'a str, &'a str>,
            name: &'a str,
            ty: &'a str,
        ) -> Result<(), String> {
            if let Some(e) = g.entity_named(name) {
                let have = g.type_str(g.entity_type(e));
                if have != ty {
                    return Err(format!(
                        "entity {name:?} already has type {have:?}, not {ty:?}"
                    ));
                }
            }
            match batch.get(name) {
                Some(&have) if have != ty => Err(format!(
                    "entity {name:?} used with types {have:?} and {ty:?}"
                )),
                _ => {
                    batch.insert(name, ty);
                    Ok(())
                }
            }
        }
        let mut batch_types: FxHashMap<&str, &str> = FxHashMap::default();
        for s in specs {
            check(&snap.graph, &mut batch_types, &s.subject, &s.subject_type)?;
            if let ObjSpec::Entity { name, ty } = &s.object {
                check(&snap.graph, &mut batch_types, name, ty)?;
            }
        }

        let old_entities = snap.graph.num_entities();
        let mut b = GraphBuilder::from_graph(&snap.graph);
        let mut touched: Vec<EntityId> = Vec::new();
        for s in specs {
            let (subj, obj) = s.apply(&mut b);
            touched.push(subj);
            touched.extend(obj);
        }
        touched.sort_unstable();
        touched.dedup();
        let g2 = b.freeze();

        if g2.num_triples() == snap.graph.num_triples()
            && g2.num_entities() == snap.graph.num_entities()
        {
            self.stats.noops.fetch_add(1, Ordering::Relaxed);
            return Ok(AdvanceReport {
                mode: AdvanceMode::NoOp,
                triples: specs.len(),
                touched: touched.len(),
                new_entities: 0,
                new_pairs: 0,
                rounds: 0,
                iso_checks: 0,
            });
        }

        // The heavy part runs without the state lock: readers keep serving
        // the previous snapshot.
        let compiled2 = self.keys.compile(&g2);
        let (result, mode) = if self.engine.inserts_incrementally() {
            // Monotone delta chase: valid for insert-only batches under any
            // engine; strictly less work than a full chase.
            (
                chase_incremental(&g2, &compiled2, &snap.eq, &touched),
                AdvanceMode::Incremental,
            )
        } else {
            (
                self.engine
                    .full_chase(&g2, &compiled2, ChaseOrder::Deterministic),
                AdvanceMode::FullRechase,
            )
        };
        let new_pairs = result.eq.num_identified_pairs() - snap.eq.num_identified_pairs();
        let report = AdvanceReport {
            mode,
            triples: specs.len(),
            touched: touched.len(),
            new_entities: g2.num_entities() - old_entities,
            new_pairs,
            rounds: result.rounds,
            iso_checks: result.iso_checks,
        };
        let next = IndexState::build(g2, compiled2, result.eq, snap.version + 1);
        *self.state.write() = Arc::new(next);
        self.stats
            .update_rounds
            .fetch_add(result.rounds as u64, Ordering::Relaxed);
        match mode {
            AdvanceMode::Incremental => &self.stats.incremental_advances,
            _ => &self.stats.full_rechases,
        }
        .fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// Deletes one triple and recomputes the chase from scratch.
    ///
    /// Keys are monotone only under *insertions*; a deletion can invalidate
    /// prior merges, so this is the documented full re-chase fallback.
    pub fn delete(&self, spec: &TripleSpec) -> Result<AdvanceReport, String> {
        let _writer = self.ingest.lock();
        let snap = self.snapshot();
        let g = &snap.graph;

        // Resolve and validate: the same type contract as insert — a spec
        // carrying a wrong :Type annotation is a client bug, not a delete.
        let resolve = |name: &str, ty: &str| -> Result<EntityId, String> {
            let e = g
                .entity_named(name)
                .ok_or_else(|| format!("unknown entity {name:?}"))?;
            let have = g.type_str(g.entity_type(e));
            if have != ty {
                return Err(format!("entity {name:?} has type {have:?}, not {ty:?}"));
            }
            Ok(e)
        };
        let s = resolve(&spec.subject, &spec.subject_type)?;
        let p = g
            .pred(&spec.pred)
            .ok_or_else(|| format!("unknown predicate {:?}", spec.pred))?;
        let o = match &spec.object {
            ObjSpec::Entity { name, ty } => Obj::Entity(resolve(name, ty)?),
            ObjSpec::Value(v) => {
                Obj::Value(g.value(v).ok_or_else(|| format!("unknown value {v:?}"))?)
            }
        };
        if !g.has(s, p, o) {
            return Err("no such triple".into());
        }

        // Rebuild the graph without the triple — entity ids and names are
        // preserved (entities are never garbage-collected by deletion).
        let g2 =
            GraphBuilder::from_graph_filtered(g, |t| !(t.s == s && t.p == p && t.o == o)).freeze();
        let compiled2 = self.keys.compile(&g2);
        let full = self
            .engine
            .full_chase(&g2, &compiled2, ChaseOrder::Deterministic);
        let old_pairs = snap.eq.num_identified_pairs();
        let new_total = full.eq.num_identified_pairs();
        let report = AdvanceReport {
            mode: AdvanceMode::FullRechase,
            triples: 1,
            touched: 1,
            new_entities: 0,
            new_pairs: new_total.saturating_sub(old_pairs),
            rounds: full.rounds,
            iso_checks: full.iso_checks,
        };
        let next = IndexState::build(g2, compiled2, full.eq, snap.version + 1);
        *self.state.write() = Arc::new(next);
        self.stats
            .update_rounds
            .fetch_add(full.rounds as u64, Ordering::Relaxed);
        self.stats.full_rechases.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }
}
