//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run -p gk-bench --release --bin figures -- all
//! cargo run -p gk-bench --release --bin figures -- fig8a fig8c table2
//! cargo run -p gk-bench --release --bin figures -- --quick all
//! cargo run -p gk-bench --release --bin figures -- --quick --json BENCH_pr3.json all
//! ```
//!
//! Output is a series table per experiment (rows = algorithms, columns =
//! the swept parameter), with a correctness flag: every run is validated
//! against the generator's planted ground truth. `--json PATH`
//! additionally writes every measurement plus per-experiment wall-times
//! as machine-readable JSON, so the perf trajectory is diffable across
//! PRs (`BENCH_pr<N>.json` at the repo root is the committed artifact).

use gk_bench::{run_experiment, Measurement, ALL_EXPERIMENTS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut json_path: Option<String> = None;
    let mut ids: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) if !p.starts_with("--") => json_path = Some(p.clone()),
                _ => {
                    eprintln!("error: --json needs an output path");
                    std::process::exit(2);
                }
            }
        } else if !a.starts_with("--") {
            ids.push(a);
        }
    }
    if ids.is_empty() || ids.contains(&"all") {
        ids = ALL_EXPERIMENTS.to_vec();
    }

    println!(
        "# Keys for Graphs — evaluation reproduction ({} mode)",
        if quick { "quick" } else { "full" }
    );
    println!();
    let mut results: Vec<(String, f64, Vec<Measurement>)> = Vec::new();
    for id in ids {
        let t = std::time::Instant::now();
        let ms = run_experiment(id, quick);
        let wall = t.elapsed().as_secs_f64();
        print_experiment(id, &ms);
        eprintln!("[{id} finished in {wall:.1}s]");
        results.push((id.to_string(), wall, ms));
    }
    if let Some(path) = json_path {
        let json = render_json(quick, &results);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[wrote {path}]");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Hand-rolled JSON writer (no registry serializers in this build env):
/// per-experiment wall-times plus every measurement.
fn render_json(quick: bool, results: &[(String, f64, Vec<Measurement>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"suite\": \"keys-for-graphs\",");
    let _ = writeln!(
        out,
        "  \"mode\": {},",
        json_str(if quick { "quick" } else { "full" })
    );
    out.push_str("  \"experiments\": [\n");
    for (i, (id, wall, ms)) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"id\": {},", json_str(id));
        let _ = writeln!(out, "      \"wall_seconds\": {wall:.6},");
        out.push_str("      \"measurements\": [\n");
        for (j, m) in ms.iter().enumerate() {
            let mut extra = String::from("{");
            for (k, (name, value)) in m.extra.iter().enumerate() {
                if k > 0 {
                    extra.push_str(", ");
                }
                let _ = write!(extra, "{}: {}", json_str(name), json_str(value));
            }
            extra.push('}');
            let _ = write!(
                out,
                "        {{\"dataset\": {}, \"algo\": {}, \"x\": {}, \"seconds\": {:.6}, \
                 \"sim_seconds\": {:.6}, \"identified\": {}, \"candidates\": {}, \
                 \"rounds\": {}, \"traffic\": {}, \"correct\": {}, \"extra\": {}}}",
                json_str(&m.dataset),
                json_str(&m.algo),
                json_str(&m.x),
                m.seconds,
                m.sim_seconds,
                m.identified,
                m.candidates,
                m.rounds,
                m.traffic,
                m.correct,
                extra
            );
            out.push_str(if j + 1 < ms.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn paper_note(id: &str) -> &'static str {
    match id {
        "fig8a" => "Fig 8(a): varying p, Google — paper: all parallel-scalable, EM_VC fastest",
        "fig8b" => "Fig 8(b): varying |G|, Google",
        "fig8c" => "Fig 8(c): varying c, Google — paper: MR rounds grow with c; VC less sensitive",
        "fig8d" => "Fig 8(d): varying d, Google — paper: d is a major cost factor",
        "fig8e" => "Fig 8(e): varying p, DBpedia",
        "fig8f" => "Fig 8(f): varying |G|, DBpedia",
        "fig8g" => "Fig 8(g): varying c, DBpedia",
        "fig8h" => "Fig 8(h): varying d, DBpedia",
        "fig8i" => "Fig 8(i): varying p, Synthetic",
        "fig8j" => "Fig 8(j): varying |G|, Synthetic",
        "fig8k" => "Fig 8(k): varying c, Synthetic",
        "fig8l" => "Fig 8(l): varying d, Synthetic",
        "table2" => "Table 2: candidate vs confirmed matches",
        "gp_ratio" => "§6 in-text: |Gp| ≈ 2.7·|G|",
        "opt_mr" => "§6 in-text: EM_MR^opt optimization effects",
        "opt_vc" => "§6 in-text: EM_VC^opt (bounded k) vs EM_VC",
        "ablation" => "design ablation: candidate enumeration (type pairs vs value blocking)",
        "vary_threads" => "beyond the paper: partitioned multi-threaded chase vs reference",
        "startup_recovery" => {
            "beyond the paper: durable restart — snapshot+WAL replay vs cold reload+re-chase"
        }
        "ingest_throughput" => {
            "beyond the paper: steady-state INSERT — delta-overlay append vs from_graph rebuild"
        }
        "query_pipeline" => {
            "beyond the paper: TCP query throughput — gk-client 64-deep pipelining vs one RTT per request"
        }
        "metrics_overhead" => {
            "beyond the paper: instrumentation cost — live metrics registry vs compiled no-op handles"
        }
        "trace_overhead" => {
            "beyond the paper: tracing cost — flight recorder capturing every request vs disabled no-op spans"
        }
        "query_cached" => {
            "beyond the paper: epoch-keyed answer cache — Zipf-skewed DUPS-heavy stream, cache on vs off"
        }
        "matcher_prune" => {
            "beyond the paper: degree-guided pruning of the candidate set L on a sparse keyed type"
        }
        "concurrent_connections" => {
            "beyond the paper: TCP front-end scalability — epoll event loop vs blocking thread-per-connection pool at equal workers"
        }
        "vary_shards" => {
            "beyond the paper: distributed chase over the wire — 1/2/4-shard gk-cluster vs standalone, ingest+converge and query throughput"
        }
        _ => "",
    }
}

fn print_experiment(id: &str, ms: &[Measurement]) {
    println!("## {id} — {}", paper_note(id));
    match id {
        "table2" => print_table2(ms),
        "gp_ratio" => print_gp_ratio(ms),
        "opt_mr" => print_opt_mr(ms),
        "ablation" => print_ablation(ms),
        _ => print_series(ms),
    }
    let all_ok = ms.iter().all(|m| m.correct);
    println!(
        "correctness vs planted truth: {}",
        if all_ok {
            "all runs correct"
        } else {
            "*** MISMATCH ***"
        }
    );
    println!();
}

/// Human-scale duration: seconds, milliseconds or microseconds.
fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Generic series table: rows = algorithms, columns = x values.
fn print_series(ms: &[Measurement]) {
    let mut xs: Vec<&str> = Vec::new();
    for m in ms {
        if !xs.contains(&m.x.as_str()) {
            xs.push(&m.x);
        }
    }
    let mut rows: BTreeMap<&str, BTreeMap<&str, &Measurement>> = BTreeMap::new();
    for m in ms {
        rows.entry(&m.algo).or_default().insert(&m.x, m);
    }
    print!("{:<12}", "algo");
    for x in &xs {
        print!("{x:>12}");
    }
    println!("{:>12}{:>10}", "first/last", "rounds");
    for (algo, cells) in &rows {
        print!("{algo:<12}");
        let mut first = None;
        let mut last = None;
        let mut rounds = 0;
        for x in &xs {
            match cells.get(x) {
                Some(m) => {
                    // p-sweeps report the simulated ideal-parallel
                    // makespan; other sweeps report wall-clock.
                    let secs = if m.sim_seconds > 0.0 {
                        m.sim_seconds
                    } else {
                        m.seconds
                    };
                    print!("{:>12}", fmt_secs(secs));
                    if first.is_none() {
                        first = Some(secs);
                    }
                    last = Some(secs);
                    rounds = rounds.max(m.rounds);
                }
                None => print!("{:>12}", "-"),
            }
        }
        let ratio = match (first, last) {
            (Some(f), Some(l)) if l > 0.0 => f / l,
            _ => f64::NAN,
        };
        println!("{ratio:>12.2}{rounds:>10}");
    }
    // The c-sweeps' headline claim is round growth: show the MapReduce
    // round counts per x for algorithms whose rounds vary.
    for (algo, cells) in &rows {
        let vals: Vec<usize> = xs
            .iter()
            .filter_map(|x| cells.get(x).map(|m| m.rounds))
            .collect();
        if vals.windows(2).any(|w| w[0] != w[1]) {
            print!("{:<12}", format!("{algo} rnds"));
            for x in &xs {
                match cells.get(x) {
                    Some(m) => print!("{:>12}", m.rounds),
                    None => print!("{:>12}", "-"),
                }
            }
            println!();
        }
    }
}

fn print_table2(ms: &[Measurement]) {
    println!(
        "{:<12}{:>24}{:>24}{:>20}",
        "dataset", "candidates(EM_VC^opt)", "candidates(EM_MR^opt)", "confirmed"
    );
    let mut by_ds: BTreeMap<&str, (Option<&Measurement>, Option<&Measurement>)> = BTreeMap::new();
    for m in ms {
        let slot = by_ds.entry(&m.dataset).or_default();
        if m.algo.contains("VC") {
            slot.0 = Some(m);
        } else {
            slot.1 = Some(m);
        }
    }
    for (ds, (vc, mr)) in by_ds {
        let vc_cand = vc
            .and_then(|m| m.extra.iter().find(|(k, _)| k == "gp_nodes"))
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        let mr_cand = mr.map(|m| m.candidates.to_string()).unwrap_or_default();
        let confirmed = vc.map(|m| m.identified.to_string()).unwrap_or_default();
        println!("{ds:<12}{vc_cand:>24}{mr_cand:>24}{confirmed:>20}");
    }
}

fn print_gp_ratio(ms: &[Measurement]) {
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>12}",
        "dataset", "|G|", "Gp nodes", "Gp edges", "Gp/G"
    );
    for m in ms {
        let find = |k: &str| {
            m.extra
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        println!(
            "{:<12}{:>12}{:>12}{:>12}{:>12}",
            m.dataset,
            find("g_triples"),
            find("gp_nodes"),
            find("gp_edges"),
            find("gp_over_g"),
        );
    }
}

fn print_ablation(ms: &[Measurement]) {
    println!(
        "{:<12}{:<18}{:>12}{:>12}{:>16}",
        "dataset", "strategy", "prep time", "candidates", "enumerated |L|"
    );
    for m in ms {
        println!(
            "{:<12}{:<18}{:>12}{:>12}{:>16}",
            m.dataset,
            m.algo,
            fmt_secs(m.seconds),
            m.candidates,
            m.traffic
        );
    }
}

fn print_opt_mr(ms: &[Measurement]) {
    println!(
        "{:<12}{:<12}{:>12}{:>14}{:>14}{:>10}",
        "dataset", "algo", "time", "candidates", "shuffled", "rounds"
    );
    for m in ms {
        println!(
            "{:<12}{:<12}{:>11.3}s{:>14}{:>14}{:>10}",
            m.dataset, m.algo, m.seconds, m.candidates, m.traffic, m.rounds
        );
    }
    // Paper: L reduced 52/38/45%; EM_MR^opt ≥ ~3x faster than EM_MR.
    let mut by_ds: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for m in ms {
        let e = by_ds.entry(&m.dataset).or_insert((0.0, 0.0));
        if m.algo.ends_with("opt") {
            e.1 = m.seconds;
        } else {
            e.0 = m.seconds;
        }
    }
    for (ds, (base, opt)) in by_ds {
        if opt > 0.0 {
            println!("{ds}: EM_MR^opt speedup over EM_MR = {:.2}x", base / opt);
        }
    }
}
