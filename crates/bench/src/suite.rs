//! The experiment suite: one function per figure/table of §6.

use gk_core::{
    chase_reference, em_mr, em_mr_sim, em_vc, em_vc_sim, ChaseOrder, CompiledKeySet, MatchOutcome,
    MrVariant, VcVariant,
};
use gk_datagen::{generate, GenConfig, Workload};
use gk_graph::{EntityId, Graph, GraphView};
use std::time::Instant;

/// The algorithms compared throughout §6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// Sequential reference chase (ground-truth baseline, not in the
    /// paper's plots).
    Reference,
    /// `EM_MR^VF2` — enumerate-all baseline.
    MrVf2,
    /// `EM_MR`.
    Mr,
    /// `EM_MR^opt`.
    MrOpt,
    /// `EM_VC`.
    Vc,
    /// `EM_VC^opt` with `k = 4` (the paper's setting).
    VcOpt,
}

impl AlgoKind {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::Reference => "reference",
            AlgoKind::MrVf2 => "EM_MR^VF2",
            AlgoKind::Mr => "EM_MR",
            AlgoKind::MrOpt => "EM_MR^opt",
            AlgoKind::Vc => "EM_VC",
            AlgoKind::VcOpt => "EM_VC^opt",
        }
    }

    /// The five parallel algorithms of Fig. 8.
    pub fn parallel_five() -> [AlgoKind; 5] {
        [
            AlgoKind::MrVf2,
            AlgoKind::Mr,
            AlgoKind::MrOpt,
            AlgoKind::Vc,
            AlgoKind::VcOpt,
        ]
    }

    /// Runs the algorithm with `p` workers.
    pub fn run(self, g: &Graph, keys: &CompiledKeySet, p: usize) -> MatchOutcome {
        self.run_mode(g, keys, p, false)
    }

    /// Runs the algorithm with `p` *simulated* workers (deterministic
    /// scheduler; `sim_seconds` is the ideal makespan) — used by the
    /// p-scalability sweeps on hosts with few cores.
    pub fn run_sim(self, g: &Graph, keys: &CompiledKeySet, p: usize) -> MatchOutcome {
        self.run_mode(g, keys, p, true)
    }

    fn run_mode(self, g: &Graph, keys: &CompiledKeySet, p: usize, sim: bool) -> MatchOutcome {
        match self {
            AlgoKind::Reference => {
                let t = Instant::now();
                let r = chase_reference(g, keys, ChaseOrder::Deterministic);
                let mut report = gk_core::RunReport {
                    algorithm: "reference".into(),
                    workers: 1,
                    identified: r.eq.num_identified_pairs(),
                    merges: r.steps.len(),
                    rounds: r.rounds,
                    iso_checks: r.iso_checks,
                    elapsed: t.elapsed(),
                    ..Default::default()
                };
                report.candidates = 0;
                MatchOutcome { eq: r.eq, report }
            }
            AlgoKind::MrVf2 => mr(g, keys, p, MrVariant::Vf2, sim),
            AlgoKind::Mr => mr(g, keys, p, MrVariant::Base, sim),
            AlgoKind::MrOpt => mr(g, keys, p, MrVariant::Opt, sim),
            AlgoKind::Vc => vc(g, keys, p, VcVariant::Base, sim),
            AlgoKind::VcOpt => vc(g, keys, p, VcVariant::Opt { k: 4 }, sim),
        }
    }
}

fn mr(g: &Graph, keys: &CompiledKeySet, p: usize, v: MrVariant, sim: bool) -> MatchOutcome {
    if sim {
        em_mr_sim(g, keys, p, v)
    } else {
        em_mr(g, keys, p, v)
    }
}

fn vc(g: &Graph, keys: &CompiledKeySet, p: usize, v: VcVariant, sim: bool) -> MatchOutcome {
    if sim {
        em_vc_sim(g, keys, p, v)
    } else {
        em_vc(g, keys, p, v)
    }
}

/// One measured data point of an experiment.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Experiment id (`fig8a`, `table2`, …).
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Algorithm label.
    pub algo: String,
    /// The varied parameter, e.g. `p=8`, `scale=0.4`, `c=3`, `d=2`.
    pub x: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Simulated ideal-parallel makespan seconds (p-sweeps); 0 otherwise.
    pub sim_seconds: f64,
    /// Confirmed matches (identified pairs in the closure).
    pub identified: usize,
    /// Candidate matches handed to the algorithm.
    pub candidates: usize,
    /// MapReduce rounds (1 for VC/reference semantics differ).
    pub rounds: usize,
    /// Messages (vertex-centric) or shuffled records (MapReduce).
    pub traffic: u64,
    /// Whether the result equals the planted ground truth.
    pub correct: bool,
    /// Free-form extras copied from the run report.
    pub extra: Vec<(String, String)>,
}

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8d", // Google
    "fig8e",
    "fig8f",
    "fig8g",
    "fig8h", // DBpedia
    "fig8i",
    "fig8j",
    "fig8k",
    "fig8l", // Synthetic
    "table2",
    "gp_ratio",
    "opt_mr",
    "opt_vc",
    "ablation",
    "vary_threads",
    "startup_recovery",
    "ingest_throughput",
    "query_pipeline",
    "metrics_overhead",
    "trace_overhead",
    "query_cached",
    "matcher_prune",
    "concurrent_connections",
    "vary_shards",
];

/// Dataset base config for an experiment family, at benchmark scale.
/// `quick` shrinks populations so the suite finishes fast (CI/criterion).
fn dataset_cfg(which: char, quick: bool) -> GenConfig {
    let base = match which {
        'g' => GenConfig::google(),
        'd' => GenConfig::dbpedia(),
        's' => GenConfig::synthetic(),
        _ => unreachable!("dataset tag"),
    };
    if quick {
        base.with_scale(0.1)
    } else {
        base.with_scale(1.0)
    }
}

fn truth_of(w: &Workload) -> &[(EntityId, EntityId)] {
    &w.truth
}

fn measure(
    experiment: &str,
    w: &Workload,
    keys: &CompiledKeySet,
    algo: AlgoKind,
    p: usize,
    x: String,
) -> Measurement {
    measure_mode(experiment, w, keys, algo, p, x, false)
}

fn measure_mode(
    experiment: &str,
    w: &Workload,
    keys: &CompiledKeySet,
    algo: AlgoKind,
    p: usize,
    x: String,
    sim: bool,
) -> Measurement {
    measure_reps(experiment, w, keys, algo, p, x, sim, 1)
}

/// Keeps the fastest of several repetitions of one measurement (the paper
/// averages 3 runs; min-of-N is the standard noise-robust variant), but
/// reports `correct` only when *every* repetition was correct — a single
/// wrong run is a correctness regression, not noise.
fn pick_best(reps: Vec<Measurement>) -> Measurement {
    let all_correct = reps.iter().all(|m| m.correct);
    let key = |m: &Measurement| {
        if m.sim_seconds > 0.0 {
            m.sim_seconds
        } else {
            m.seconds
        }
    };
    let mut best = reps
        .into_iter()
        .min_by(|a, b| key(a).total_cmp(&key(b)))
        .expect("at least one rep");
    best.correct = all_correct;
    best
}

/// Runs the algorithm `reps` times; see [`pick_best`] for the aggregation.
#[allow(clippy::too_many_arguments)]
fn measure_reps(
    experiment: &str,
    w: &Workload,
    keys: &CompiledKeySet,
    algo: AlgoKind,
    p: usize,
    x: String,
    sim: bool,
    reps: usize,
) -> Measurement {
    let runs = (0..reps.max(1))
        .map(|_| {
            let out = if sim {
                algo.run_sim(&w.graph, keys, p)
            } else {
                algo.run(&w.graph, keys, p)
            };
            let got = out.identified_pairs();
            Measurement {
                experiment: experiment.to_string(),
                dataset: w.name.clone(),
                algo: algo.label().to_string(),
                x: x.clone(),
                seconds: out.report.elapsed.as_secs_f64(),
                sim_seconds: out.report.sim_seconds,
                identified: out.report.identified,
                candidates: out.report.candidates,
                rounds: out.report.rounds,
                traffic: out.report.messages.max(out.report.shuffled_records),
                correct: got == truth_of(w),
                extra: out.report.extra.clone(),
            }
        })
        .collect();
    pick_best(runs)
}

/// The worker counts of Fig. 8(a)(e)(i).
pub const P_SWEEP: &[usize] = &[4, 8, 12, 16, 20];
/// The scale factors of Fig. 8(b)(f)(j).
pub const SCALE_SWEEP: &[f64] = &[0.2, 0.4, 0.6, 0.8, 1.0];
/// The chain lengths of Fig. 8(c)(g)(k).
pub const C_SWEEP: &[usize] = &[1, 2, 3, 4, 5];
/// The radii of Fig. 8(d)(h)(l).
pub const D_SWEEP: &[usize] = &[1, 2, 3, 4, 5];

/// Runs one experiment by id; `quick` shrinks the workload.
pub fn run_experiment(id: &str, quick: bool) -> Vec<Measurement> {
    match id {
        "fig8a" => vary_p('g', "fig8a", quick),
        "fig8e" => vary_p('d', "fig8e", quick),
        "fig8i" => vary_p('s', "fig8i", quick),
        "fig8b" => vary_scale('g', "fig8b", quick),
        "fig8f" => vary_scale('d', "fig8f", quick),
        "fig8j" => vary_scale('s', "fig8j", quick),
        "fig8c" => vary_c('g', "fig8c", quick),
        "fig8g" => vary_c('d', "fig8g", quick),
        "fig8k" => vary_c('s', "fig8k", quick),
        "fig8d" => vary_d('g', "fig8d", quick),
        "fig8h" => vary_d('d', "fig8h", quick),
        "fig8l" => vary_d('s', "fig8l", quick),
        "table2" => table2(quick),
        "gp_ratio" => gp_ratio(quick),
        "opt_mr" => opt_mr(quick),
        "opt_vc" => opt_vc(quick),
        "ablation" => ablation(quick),
        "vary_threads" => vary_threads(quick),
        "startup_recovery" => startup_recovery(quick),
        "ingest_throughput" => ingest_throughput(quick),
        "query_pipeline" => query_pipeline(quick),
        "metrics_overhead" => metrics_overhead(quick),
        "trace_overhead" => trace_overhead(quick),
        "query_cached" => query_cached(quick),
        "matcher_prune" => matcher_prune(quick),
        "concurrent_connections" => concurrent_connections(quick),
        "vary_shards" => vary_shards(quick),
        other => panic!("unknown experiment id {other:?}; see ALL_EXPERIMENTS"),
    }
}

/// Fig. 8(a)(e)(i): fix c=2, d=2; vary p.
fn vary_p(ds: char, id: &str, quick: bool) -> Vec<Measurement> {
    let cfg = dataset_cfg(ds, quick).with_chain(2).with_radius(2);
    let w = generate(&cfg);
    let keys = w.keys.compile(&w.graph);
    let mut out = Vec::new();
    let reps = if quick { 1 } else { 3 };
    for &p in P_SWEEP {
        for algo in AlgoKind::parallel_five() {
            // Simulated workers: the makespan scales with p even when the
            // host has fewer cores (see DESIGN.md).
            out.push(measure_reps(
                id,
                &w,
                &keys,
                algo,
                p,
                format!("p={p}"),
                true,
                reps,
            ));
        }
    }
    out
}

/// Fig. 8(b)(f)(j): fix p=4, c=2, d=2; vary |G| by scale factor.
fn vary_scale(ds: char, id: &str, quick: bool) -> Vec<Measurement> {
    let base = dataset_cfg(ds, quick).with_chain(2).with_radius(2);
    let mut out = Vec::new();
    for &f in SCALE_SWEEP {
        let cfg = base.clone().with_scale(base.scale * f);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        for algo in AlgoKind::parallel_five() {
            let reps = if quick { 1 } else { 2 };
            let mut m = measure_reps(id, &w, &keys, algo, 4, format!("scale={f}"), false, reps);
            m.extra
                .push(("triples".into(), w.graph.num_triples().to_string()));
            out.push(m);
        }
    }
    out
}

/// Fig. 8(c)(g)(k): fix p=4, d=2; vary the dependency chain c.
fn vary_c(ds: char, id: &str, quick: bool) -> Vec<Measurement> {
    let base = dataset_cfg(ds, quick).with_radius(2);
    let mut out = Vec::new();
    for &c in C_SWEEP {
        let cfg = base.clone().with_chain(c);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        for algo in AlgoKind::parallel_five() {
            let reps = if quick { 1 } else { 2 };
            out.push(measure_reps(
                id,
                &w,
                &keys,
                algo,
                4,
                format!("c={c}"),
                false,
                reps,
            ));
        }
    }
    out
}

/// Fig. 8(d)(h)(l): fix p=4, c=2; vary the radius d.
fn vary_d(ds: char, id: &str, quick: bool) -> Vec<Measurement> {
    let base = dataset_cfg(ds, quick).with_chain(2);
    let mut out = Vec::new();
    for &d in D_SWEEP {
        let cfg = base.clone().with_radius(d);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        for algo in AlgoKind::parallel_five() {
            let reps = if quick { 1 } else { 2 };
            out.push(measure_reps(
                id,
                &w,
                &keys,
                algo,
                4,
                format!("d={d}"),
                false,
                reps,
            ));
        }
    }
    out
}

/// Table 2: candidate matches (EM_VC^opt vs EM_MR^opt) and confirmed
/// matches, per dataset.
fn table2(quick: bool) -> Vec<Measurement> {
    let mut out = Vec::new();
    for ds in ['g', 'd', 's'] {
        let cfg = dataset_cfg(ds, quick).with_chain(2).with_radius(2);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        for algo in [AlgoKind::VcOpt, AlgoKind::MrOpt] {
            let mut m = measure("table2", &w, &keys, algo, 4, "-".into());
            // For EM_VC^opt the paper counts the (larger) product-graph
            // candidate space; surface Gp nodes alongside.
            if algo == AlgoKind::VcOpt {
                if let Some(gp) = m.extra.iter().find(|(k, _)| k == "gp_nodes") {
                    m.x = format!("gp_nodes={}", gp.1);
                }
            }
            out.push(m);
        }
    }
    out
}

/// §6 in-text: |Gp| vs |G| (the paper reports ≈ 2.7·|G| on average).
fn gp_ratio(quick: bool) -> Vec<Measurement> {
    let mut out = Vec::new();
    for ds in ['g', 'd', 's'] {
        let cfg = dataset_cfg(ds, quick).with_chain(2).with_radius(2);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        let mut m = measure("gp_ratio", &w, &keys, AlgoKind::Vc, 4, "-".into());
        m.extra
            .push(("g_triples".into(), w.graph.num_triples().to_string()));
        out.push(m);
    }
    out
}

/// §6 in-text optimization effects for MapReduce: candidate reduction,
/// neighborhood reduction, check reduction, speedup.
fn opt_mr(quick: bool) -> Vec<Measurement> {
    let mut out = Vec::new();
    for ds in ['g', 'd', 's'] {
        let cfg = dataset_cfg(ds, quick).with_chain(2).with_radius(2);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        for algo in [AlgoKind::Mr, AlgoKind::MrOpt] {
            out.push(measure("opt_mr", &w, &keys, algo, 4, "-".into()));
        }
    }
    out
}

/// §6 in-text: EM_VC vs EM_VC^opt across message budgets k.
fn opt_vc(quick: bool) -> Vec<Measurement> {
    let mut out = Vec::new();
    for ds in ['g', 'd', 's'] {
        let cfg = dataset_cfg(ds, quick).with_chain(2).with_radius(2);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        out.push(measure(
            "opt_vc",
            &w,
            &keys,
            AlgoKind::Vc,
            4,
            "unbounded".into(),
        ));
        for k in [1u32, 2, 4, 8] {
            let t = Instant::now();
            let o = em_vc(&w.graph, &keys, 4, VcVariant::Opt { k });
            let got = o.identified_pairs();
            out.push(Measurement {
                experiment: "opt_vc".into(),
                dataset: w.name.clone(),
                algo: "EM_VC^opt".to_string(),
                x: format!("k={k}"),
                seconds: t.elapsed().as_secs_f64(),
                sim_seconds: o.report.sim_seconds,
                identified: o.report.identified,
                candidates: o.report.candidates,
                rounds: 1,
                traffic: o.report.messages,
                correct: got == w.truth,
                extra: o.report.extra.clone(),
            });
        }
    }
    out
}

/// Ablation of the candidate-enumeration design choice: the paper's plain
/// type-pair enumeration (`L` = all same-type pairs, then pairing) vs the
/// value-blocking pre-pass this implementation adds before pairing.
fn ablation(quick: bool) -> Vec<Measurement> {
    use gk_core::{prepare_opt, CandidateMode};
    let mut out = Vec::new();
    for ds in ['g', 'd', 's'] {
        let cfg = dataset_cfg(ds, quick).with_chain(2).with_radius(2);
        let w = generate(&cfg);
        let keys = w.keys.compile(&w.graph);
        for (label, mode) in [
            ("prep:type-pairs", CandidateMode::TypePairs),
            ("prep:blocked", CandidateMode::Blocked),
        ] {
            let enumerated = gk_core::candidate_pairs(&w.graph, &keys, mode).len();
            let t = Instant::now();
            let prep = prepare_opt(&w.graph, &keys, mode);
            let secs = t.elapsed().as_secs_f64();
            out.push(Measurement {
                experiment: "ablation".into(),
                dataset: w.name.clone(),
                algo: label.into(),
                x: "-".into(),
                seconds: secs,
                sim_seconds: 0.0,
                identified: 0,
                candidates: prep.candidates.len(),
                rounds: 0,
                traffic: enumerated as u64,
                correct: true,
                extra: vec![("frontier".into(), prep.frontier.len().to_string())],
            });
        }
    }
    out
}

/// Beyond the paper: the resident engine's partitioned multi-threaded
/// chase (`chase_parallel`) across worker-thread counts, with the
/// sequential reference chase as the baseline — wall-clock, real threads
/// (not the simulated scheduler). `quick` uses the CI scale; the full run
/// uses the 10k-entity workload of the vary_threads criterion bench.
fn vary_threads(quick: bool) -> Vec<Measurement> {
    use gk_core::{chase_parallel, ParallelOpts};
    let cfg = dataset_cfg('g', quick)
        .with_scale(if quick { 0.1 } else { 0.46 })
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let keys = w.keys.compile(&w.graph);
    let mut out = Vec::new();
    let reps = if quick { 1 } else { 3 };
    out.push(measure_reps(
        "vary_threads",
        &w,
        &keys,
        AlgoKind::Reference,
        1,
        "baseline".into(),
        false,
        reps,
    ));
    for threads in [1usize, 2, 4, 8] {
        let runs = (0..reps.max(1))
            .map(|_| {
                let t = Instant::now();
                let r = chase_parallel(&w.graph, &keys, ParallelOpts::with_threads(threads));
                let secs = t.elapsed().as_secs_f64();
                Measurement {
                    experiment: "vary_threads".into(),
                    dataset: w.name.clone(),
                    algo: "chase_parallel".into(),
                    x: format!("threads={threads}"),
                    seconds: secs,
                    sim_seconds: 0.0,
                    identified: r.eq.num_identified_pairs(),
                    candidates: 0,
                    rounds: r.rounds,
                    traffic: 0,
                    correct: r.identified_pairs() == w.truth,
                    extra: vec![("iso_checks".into(), r.iso_checks.to_string())],
                }
            })
            .collect();
        out.push(pick_best(runs));
    }
    out
}

/// Beyond the paper: restart cost of the durable resident server on the
/// 10k-entity Google workload — cold reload + full startup chase vs
/// snapshot load + WAL replay (`gk-store`). The workload bootstraps a
/// durable index, streams post-snapshot insert batches into the WAL, then
/// measures both restart paths over the *same* final graph; correctness
/// requires the recovered equivalence classes (and hence every
/// `SAME`/`DUPS`/`REP` answer) to be identical to the cold rebuild's.
/// `quick` reduces repetitions, not the workload: the acceptance speedup
/// is defined at this scale.
fn startup_recovery(quick: bool) -> Vec<Measurement> {
    use gk_core::ChaseEngine;
    use gk_server::EmIndex;
    use gk_store::Durability;

    let cfg = dataset_cfg('g', false)
        .with_scale(0.46)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let engine = ChaseEngine::default();
    let reclone = |g: &Graph| gk_graph::GraphBuilder::from_graph(g).freeze();

    let dir = std::env::temp_dir().join(format!("gk-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dur = Durability::in_dir(&dir);

    // Bootstrap: startup chase + initial snapshot, then stream insert
    // batches that land in the WAL (the replay work recovery must redo).
    let (index, _) = EmIndex::open_durable(reclone(&w.graph), w.keys.clone(), engine, &dur)
        .expect("bootstrap durable index");
    for i in 0..32 {
        let batch = format!(
            "ing{i}a:ingest logged \"v{i}\"\ning{i}b:ingest logged \"v{i}\"\n\
             ing{i}a:ingest batch \"b{}\"",
            i % 4
        );
        let specs = gk_graph::parse_triple_specs(&batch).unwrap();
        index.insert(&specs).expect("streamed insert");
    }
    // materialize() already yields an owned, independent frozen graph.
    let final_graph = index.snapshot().graph.materialize();
    drop(index);

    let reps = if quick { 1 } else { 3 };
    let mut cold_runs = Vec::new();
    let mut recover_runs = Vec::new();
    for _ in 0..reps {
        // Cold restart: reload the final graph and re-run the full chase.
        let t = Instant::now();
        let cold = EmIndex::with_engine(reclone(&final_graph), w.keys.clone(), engine);
        let cold_secs = t.elapsed().as_secs_f64();

        // Durable restart: newest snapshot + WAL suffix through the
        // incremental chase.
        let t = Instant::now();
        let (rec, report) = EmIndex::recover_durable(&dur, engine)
            .expect("recovery")
            .expect("state persisted");
        let rec_secs = t.elapsed().as_secs_f64();

        let cold_snap = cold.snapshot();
        let rec_snap = rec.snapshot();
        // Identical classes ⇒ identical SAME/DUPS/REP answers; also spot
        // check every canonical representative.
        let correct = rec_snap.eq.classes() == cold_snap.eq.classes()
            && rec_snap.graph.num_triples() == cold_snap.graph.num_triples()
            && rec_snap
                .graph
                .entities()
                .all(|e| rec_snap.rep(e) == cold_snap.rep(e));

        let base = |algo: &str, secs: f64| Measurement {
            experiment: "startup_recovery".into(),
            dataset: w.name.clone(),
            algo: algo.into(),
            x: "-".into(),
            seconds: secs,
            sim_seconds: 0.0,
            identified: rec_snap.eq.num_identified_pairs(),
            candidates: 0,
            rounds: 0,
            traffic: 0,
            correct,
            extra: Vec::new(),
        };
        cold_runs.push(base("cold_reload+chase", cold_secs));
        let mut m = base("snapshot+replay", rec_secs);
        m.extra
            .push(("wal_replayed".into(), report.wal_replayed.to_string()));
        m.extra
            .push(("speedup".into(), format!("{:.2}", cold_secs / rec_secs)));
        recover_runs.push(m);
    }
    let _ = std::fs::remove_dir_all(&dir);
    vec![pick_best(cold_runs), pick_best(recover_runs)]
}

/// Beyond the paper: steady-state `INSERT` batch cost on the 10k-entity
/// Google workload — the epoch-based overlay write path
/// (`EmIndex::insert`: O(batch) delta append + delta chase) against the
/// pre-overlay rebuild path (re-open the whole frozen graph with
/// `GraphBuilder::from_graph`, freeze a new CSR, recompile, then the same
/// delta chase). Correctness requires both paths to land on identical
/// equivalence classes — same clusters, same `SAME`/`DUPS`/`REP` answers.
/// `quick` reduces repetitions, not the workload: the ≥5× acceptance
/// speedup is defined at this scale.
fn ingest_throughput(quick: bool) -> Vec<Measurement> {
    use gk_core::{chase_incremental, ChaseEngine};
    use gk_graph::{parse_triple_specs, GraphBuilder};
    use gk_server::EmIndex;

    let cfg = dataset_cfg('g', false)
        .with_scale(0.46)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let reclone = |g: &Graph| GraphBuilder::from_graph(g).freeze();
    let engine = ChaseEngine::default();
    let batches = 64usize;
    // Steady-state traffic: small batches landing on fresh entities plus a
    // shared attribute, the same shape the recovery experiments stream.
    let batch = |i: usize| {
        format!(
            "ing{i}a:ingest logged \"v{i}\"\ning{i}b:ingest logged \"v{i}\"\n\
             ing{i}a:ingest batch \"b{}\"",
            i % 4
        )
    };

    let reps = if quick { 1 } else { 3 };
    let mut overlay_runs = Vec::new();
    let mut rebuild_runs = Vec::new();
    for _ in 0..reps {
        // --- Overlay path: what EmIndex::insert costs now. ---
        let idx = EmIndex::with_engine(reclone(&w.graph), w.keys.clone(), engine);
        let t = Instant::now();
        for i in 0..batches {
            idx.insert(&parse_triple_specs(&batch(i)).unwrap())
                .expect("overlay insert");
        }
        let overlay_secs = t.elapsed().as_secs_f64();
        let overlay_snap = idx.snapshot();
        let overlay_classes = overlay_snap.eq.classes();

        // --- Rebuild path: what every accepted batch cost before the
        // overlay (full from_graph copy + freeze + recompile per batch),
        // with the identical delta chase on top. ---
        let mut g = reclone(&w.graph);
        let compiled0 = w.keys.compile(&g);
        let mut eq = engine
            .full_chase(&g, &compiled0, gk_core::ChaseOrder::Deterministic)
            .eq;
        let t = Instant::now();
        for i in 0..batches {
            let specs = parse_triple_specs(&batch(i)).unwrap();
            let mut b = GraphBuilder::from_graph(&g);
            let mut touched: Vec<EntityId> = Vec::new();
            for s in &specs {
                let (subj, obj) = s.apply(&mut b);
                touched.push(subj);
                touched.extend(obj);
            }
            touched.sort_unstable();
            touched.dedup();
            let g2 = b.freeze();
            let compiled2 = w.keys.compile(&g2);
            eq = chase_incremental(&g2, &compiled2, &eq, &touched).eq;
            g = g2;
        }
        let rebuild_secs = t.elapsed().as_secs_f64();
        let rebuild_classes = eq.classes();

        // Byte-identical answers: both paths must produce the same Eq.
        let correct = overlay_classes == rebuild_classes
            && overlay_snap.graph.num_triples() == g.num_triples();

        let base = |algo: &str, secs: f64| Measurement {
            experiment: "ingest_throughput".into(),
            dataset: w.name.clone(),
            algo: algo.into(),
            x: format!("batches={batches}"),
            seconds: secs,
            sim_seconds: 0.0,
            identified: overlay_snap.eq.num_identified_pairs(),
            candidates: 0,
            rounds: 0,
            traffic: 0,
            correct,
            extra: vec![(
                "mean_batch_micros".into(),
                format!("{:.1}", secs * 1e6 / batches as f64),
            )],
        };
        overlay_runs.push({
            let mut m = base("overlay_insert", overlay_secs);
            m.extra.push((
                "speedup".into(),
                format!("{:.2}", rebuild_secs / overlay_secs),
            ));
            m.extra
                .push(("epoch".into(), overlay_snap.graph.epoch().to_string()));
            m.extra.push((
                "delta_triples".into(),
                overlay_snap.graph.delta_triples().to_string(),
            ));
            m
        });
        rebuild_runs.push(base("rebuild_insert", rebuild_secs));
    }
    vec![pick_best(overlay_runs), pick_best(rebuild_runs)]
}

/// Beyond the paper: query throughput of the TCP front-end on the
/// 10k-entity Google workload — one-RTT-per-request sequential round
/// trips against the `gk-client` pipeline writing 64 requests ahead. Both
/// runs issue the identical request list over one persistent connection
/// each and must receive byte-identical answers; only the framing
/// discipline differs, so the gap is pure per-request syscall +
/// scheduling latency. `quick` reduces the request count, not the graph:
/// the ≥2× acceptance speedup is defined at this scale.
fn query_pipeline(quick: bool) -> Vec<Measurement> {
    use gk_client::Client;
    use gk_server::{serve, Request, Server};

    let cfg = dataset_cfg('g', false)
        .with_scale(0.46)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let server = std::sync::Arc::new(Server::new(
        gk_graph::GraphBuilder::from_graph(&w.graph).freeze(),
        w.keys.clone(),
    ));
    let handle = serve(server, "127.0.0.1:0", 4).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // A read-heavy mix over real entity names, deterministic so both
    // runs (and every repetition) issue the identical stream.
    let names: Vec<String> = w
        .graph
        .entities()
        .take(512)
        .map(|e| w.graph.entity_label(e))
        .collect();
    let total = if quick { 2_000 } else { 10_000 };
    let reqs: Vec<Request> = (0..total)
        .map(|i| {
            let a = names[i % names.len()].clone();
            let b = names[(i * 7 + 13) % names.len()].clone();
            match i % 4 {
                0 => Request::Same { a, b },
                1 => Request::Rep { entity: a },
                2 => Request::Dups { entity: a },
                _ => Request::Ping,
            }
        })
        .collect();
    const DEPTH: usize = 64;

    let reps = if quick { 1 } else { 3 };
    let mut seq_runs = Vec::new();
    let mut pipe_runs = Vec::new();
    for _ in 0..reps {
        // --- Sequential: write one request, read its answer, repeat. ---
        let mut c = Client::connect(&addr).expect("connect");
        let t = Instant::now();
        let seq_answers: Vec<_> = reqs
            .iter()
            .map(|r| c.request(r).expect("sequential request"))
            .collect();
        let seq_secs = t.elapsed().as_secs_f64();

        // --- Pipelined: write DEPTH ahead, drain, advance. ---
        let mut c = Client::connect(&addr).expect("connect");
        let t = Instant::now();
        let pipe_answers = c.run_pipelined(&reqs, DEPTH).expect("pipelined batch");
        let pipe_secs = t.elapsed().as_secs_f64();

        let correct = seq_answers == pipe_answers;
        let base = |algo: &str, secs: f64| Measurement {
            experiment: "query_pipeline".into(),
            dataset: w.name.clone(),
            algo: algo.into(),
            x: format!("requests={total}"),
            seconds: secs,
            sim_seconds: 0.0,
            identified: 0,
            candidates: 0,
            rounds: 0,
            traffic: total as u64,
            correct,
            extra: vec![(
                "rps".into(),
                format!("{:.0}", total as f64 / secs.max(1e-9)),
            )],
        };
        seq_runs.push(base("sequential_rtt", seq_secs));
        pipe_runs.push({
            let mut m = base(&format!("pipelined_depth{DEPTH}"), pipe_secs);
            m.extra
                .push(("speedup".into(), format!("{:.2}", seq_secs / pipe_secs)));
            m
        });
    }
    handle.stop();
    vec![pick_best(seq_runs), pick_best(pipe_runs)]
}

/// Beyond the paper: connection scalability of the two TCP front-ends on
/// the 10k-entity Google workload, at equal worker counts.
///
/// Phase A (idle capacity): open connections one at a time, `PING` each,
/// and keep every answered one open — the count of simultaneously-held
/// *responsive* connections. The threaded model pins one pool thread per
/// open connection, so it saturates at the worker count; the epoll
/// reactor holds all `1024` (an idle connection costs buffers, not a
/// thread).
///
/// Phase B (pipelined load): `1024` simultaneous clients — real
/// `gk-client` pipelining over one connection each — released by a
/// barrier, each running its deterministic request batch. Both models
/// must produce byte-identical response paragraphs; the epoll model
/// serves all clients concurrently while the threaded model queues them
/// behind its 4 workers.
///
/// `quick` shrinks the per-client batch, never the connection counts:
/// the ≥1000-simultaneous-clients acceptance bar is defined at every
/// speed.
fn concurrent_connections(quick: bool) -> Vec<Measurement> {
    use gk_client::Client;
    use gk_server::{serve_with, NetModel, ServeOptions, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::{Arc, Barrier};

    const WORKERS: usize = 4;
    const HELD_TARGET: usize = 1024;
    const CLIENTS: usize = 1024;
    const DEPTH: usize = 8;
    let per_client: usize = if quick { 4 } else { 16 };

    let cfg = dataset_cfg('g', false)
        .with_scale(0.46)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let names: Vec<String> = w
        .graph
        .entities()
        .take(512)
        .map(|e| w.graph.entity_label(e))
        .collect();

    // Deterministic per-client request-line batches, identical across
    // models — the byte-identity check compares their answers.
    let batches: Arc<Vec<Vec<String>>> = Arc::new(
        (0..CLIENTS)
            .map(|c| {
                (0..per_client)
                    .map(|i| {
                        let a = &names[(c * 31 + i * 7) % names.len()];
                        let b = &names[(c * 17 + i * 13 + 5) % names.len()];
                        match (c + i) % 4 {
                            0 => format!("SAME {a} {b}"),
                            1 => format!("REP {a}"),
                            2 => format!("DUPS {a}"),
                            _ => "PING".to_string(),
                        }
                    })
                    .collect()
            })
            .collect(),
    );

    let mut out: Vec<Measurement> = Vec::new();
    let mut capacities: Vec<usize> = Vec::new();
    let mut answers: Vec<Vec<String>> = Vec::new();
    for model in [NetModel::Epoll, NetModel::Threaded] {
        let server = Arc::new(Server::new(
            gk_graph::GraphBuilder::from_graph(&w.graph).freeze(),
            w.keys.clone(),
        ));
        let handle = serve_with(
            server,
            "127.0.0.1:0",
            &ServeOptions {
                threads: WORKERS,
                model,
                max_conns: 0,
                metrics_addr: None,
            },
        )
        .expect("bind ephemeral port");
        let addr = handle.addr().to_string();

        // --- Phase A: simultaneously-held responsive connections. ---
        let t = Instant::now();
        let mut held: Vec<TcpStream> = Vec::new();
        while held.len() < HELD_TARGET {
            let Ok(conn) = TcpStream::connect(&addr) else {
                break;
            };
            // A model that cannot serve this connection while the others
            // stay open never answers the PING; the timeout is the
            // saturation signal.
            conn.set_read_timeout(Some(std::time::Duration::from_millis(250)))
                .expect("read timeout");
            let mut wtr = conn.try_clone().expect("clone");
            if wtr.write_all(b"PING\n").is_err() {
                break;
            }
            let mut rdr = BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();
            if rdr.read_line(&mut line).is_err() || !line.starts_with("PONG") {
                break;
            }
            let mut blank = String::new();
            let _ = rdr.read_line(&mut blank); // paragraph terminator
            held.push(conn);
        }
        let capacity = held.len();
        let idle_secs = t.elapsed().as_secs_f64();
        drop(held);
        // Let the released workers/reactor reap the EOFs before phase B.
        std::thread::sleep(std::time::Duration::from_millis(100));
        capacities.push(capacity);

        // --- Phase B: CLIENTS simultaneous pipelined clients. ---
        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                let batches = Arc::clone(&batches);
                std::thread::spawn(move || {
                    // The threaded model's accept backlog can drop a
                    // burst of 1024 SYNs; retry until admitted.
                    let mut client = None;
                    for _ in 0..100 {
                        match Client::connect(&addr) {
                            Ok(c) => {
                                client = Some(c);
                                break;
                            }
                            Err(_) => {
                                std::thread::sleep(std::time::Duration::from_millis(20));
                            }
                        }
                    }
                    let mut client = client.expect("client connect");
                    barrier.wait();
                    client
                        .run_pipelined_raw(&batches[c], DEPTH)
                        .expect("pipelined batch")
                })
            })
            .collect();
        barrier.wait();
        let t = Instant::now();
        let per_client_answers: Vec<Vec<String>> = clients
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        let pipe_secs = t.elapsed().as_secs_f64();
        answers.push(per_client_answers.concat());
        handle.stop();

        let total = (CLIENTS * per_client) as u64;
        let base = |algo: String, secs: f64, identified: usize, traffic: u64| Measurement {
            experiment: "concurrent_connections".into(),
            dataset: w.name.clone(),
            algo,
            x: format!("workers={WORKERS}"),
            seconds: secs,
            sim_seconds: 0.0,
            identified,
            candidates: 0,
            rounds: 0,
            traffic,
            correct: true,
            extra: Vec::new(),
        };
        let mut idle = base(format!("{model}_idle"), idle_secs, capacity, 0);
        idle.extra.push(("held_conns".into(), capacity.to_string()));
        idle.extra.push(("target".into(), HELD_TARGET.to_string()));
        out.push(idle);
        let mut pipe = base(format!("{model}_pipelined"), pipe_secs, capacity, total);
        pipe.extra.push(("clients".into(), CLIENTS.to_string()));
        pipe.extra.push((
            "rps".into(),
            format!("{:.0}", total as f64 / pipe_secs.max(1e-9)),
        ));
        out.push(pipe);
    }

    // Cross-model verdicts: the capacity ratio on the idle measurements,
    // byte-identity of the pipelined answers on the load measurements.
    let ratio = capacities[0] as f64 / (capacities[1].max(1)) as f64;
    let identical = answers[0] == answers[1];
    for m in &mut out {
        if m.algo.ends_with("_idle") {
            m.extra
                .push(("capacity_ratio".into(), format!("{ratio:.1}")));
        } else {
            m.correct = identical;
            m.extra
                .push(("byte_identical".into(), identical.to_string()));
        }
    }
    out
}

/// Beyond the paper: instrumentation cost of the metrics layer on the
/// pipelined 10k-entity query workload — a server over the live registry
/// against one built over [`gk_server::Registry::disabled`], where every
/// counter/histogram handle is a compiled no-op. Both serve the identical
/// deterministic request stream through the `gk-client` pipeline and must
/// answer byte-identically; the gap is the per-request atomic-increment +
/// clock-read cost. `quick` reduces the request count, not the graph: the
/// <5% acceptance overhead is defined at this scale.
fn metrics_overhead(quick: bool) -> Vec<Measurement> {
    use gk_client::Client;
    use gk_core::ChaseEngine;
    use gk_server::{serve, EmIndex, Registry, Request, Server};
    use std::sync::Arc;

    let cfg = dataset_cfg('g', false)
        .with_scale(0.46)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let build = |registry: Registry| {
        let g = gk_graph::GraphBuilder::from_graph(&w.graph).freeze();
        let idx = EmIndex::with_engine_registry(
            g,
            w.keys.clone(),
            ChaseEngine::default(),
            Arc::new(registry),
        );
        Arc::new(Server::from_index(idx))
    };
    let on = serve(build(Registry::new()), "127.0.0.1:0", 4).expect("bind");
    let off = serve(build(Registry::disabled()), "127.0.0.1:0", 4).expect("bind");

    let names: Vec<String> = w
        .graph
        .entities()
        .take(512)
        .map(|e| w.graph.entity_label(e))
        .collect();
    let total = if quick { 2_000 } else { 10_000 };
    let reqs: Vec<Request> = (0..total)
        .map(|i| {
            let a = names[i % names.len()].clone();
            let b = names[(i * 7 + 13) % names.len()].clone();
            match i % 4 {
                0 => Request::Same { a, b },
                1 => Request::Rep { entity: a },
                2 => Request::Dups { entity: a },
                _ => Request::Ping,
            }
        })
        .collect();

    let run = |addr: &std::net::SocketAddr| {
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        let t = Instant::now();
        let answers = c.run_pipelined(&reqs, 64).expect("pipelined batch");
        (t.elapsed().as_secs_f64(), answers)
    };
    // One untimed pass per server faults in the connection path and any
    // lazy allocation, so the timed reps measure steady state.
    let _ = run(&on.addr());
    let _ = run(&off.addr());

    // Best-of-N in both modes: the quantity under test is a small relative
    // difference, and a single rep on a loaded machine is dominated by
    // scheduling noise, not by the atomics being measured.
    let reps = 3;
    let mut on_runs = Vec::new();
    let mut off_runs = Vec::new();
    for _ in 0..reps {
        let (on_secs, on_answers) = run(&on.addr());
        let (off_secs, off_answers) = run(&off.addr());
        let correct = on_answers == off_answers;

        let base = |algo: &str, secs: f64| Measurement {
            experiment: "metrics_overhead".into(),
            dataset: w.name.clone(),
            algo: algo.into(),
            x: format!("requests={total}"),
            seconds: secs,
            sim_seconds: 0.0,
            identified: 0,
            candidates: 0,
            rounds: 0,
            traffic: total as u64,
            correct,
            extra: vec![(
                "rps".into(),
                format!("{:.0}", total as f64 / secs.max(1e-9)),
            )],
        };
        on_runs.push(base("metrics_on", on_secs));
        off_runs.push(base("metrics_off", off_secs));
    }
    on.stop();
    off.stop();
    // The reported overhead compares the best rep of each side — the same
    // pair the acceptance test asserts on.
    let mut best_on = pick_best(on_runs);
    let best_off = pick_best(off_runs);
    best_on.extra.push((
        "overhead_pct".into(),
        format!("{:.2}", (best_on.seconds / best_off.seconds - 1.0) * 100.0),
    ));
    vec![best_on, best_off]
}

/// Beyond the paper: cost of the tracing layer on the pipelined
/// 10k-entity query workload. The baseline server runs the production
/// default — tracing compiled in, flight recorder off, every hot-path
/// span the no-op `Span::disabled()` — and is compared with
/// one whose recorder captures every request (root span, per-phase child
/// spans, ring-buffer push). Both serve the identical deterministic
/// stream through the `gk-client` pipeline and must answer
/// byte-identically; the gap bounds the full span-allocation +
/// clock-read + recording cost, and the disabled mode pays strictly less
/// than that on every request. The run also executes the acceptance
/// `TRACE DUPS` probe against the traced server: the phase wall-times of
/// the returned tree must sum to within 10% of its root and the analyze
/// funnel counters (candidates, iso checks) must be live. `quick`
/// reduces the request count, not the graph: the <5% acceptance
/// overhead is defined at this scale.
fn trace_overhead(quick: bool) -> Vec<Measurement> {
    use gk_client::Client;
    use gk_server::{serve, Request, Server};
    use std::sync::Arc;

    let cfg = dataset_cfg('g', false)
        .with_scale(0.46)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let build = |buffer: usize| {
        let mut s = Server::new(
            gk_graph::GraphBuilder::from_graph(&w.graph).freeze(),
            w.keys.clone(),
        );
        s.set_trace_buffer(buffer);
        Arc::new(s)
    };
    let on = serve(build(64), "127.0.0.1:0", 4).expect("bind");
    let off = serve(build(0), "127.0.0.1:0", 4).expect("bind");

    let names: Vec<String> = w
        .graph
        .entities()
        .take(512)
        .map(|e| w.graph.entity_label(e))
        .collect();
    let total = if quick { 2_000 } else { 10_000 };
    let reqs: Vec<Request> = (0..total)
        .map(|i| {
            let a = names[i % names.len()].clone();
            let b = names[(i * 7 + 13) % names.len()].clone();
            match i % 4 {
                0 => Request::Same { a, b },
                1 => Request::Rep { entity: a },
                2 => Request::Dups { entity: a },
                _ => Request::Ping,
            }
        })
        .collect();

    let run = |addr: &std::net::SocketAddr| {
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        let t = Instant::now();
        let answers = c.run_pipelined(&reqs, 64).expect("pipelined batch");
        (t.elapsed().as_secs_f64(), answers)
    };
    // One untimed pass per server faults in the connection path and any
    // lazy allocation, so the timed reps measure steady state.
    let _ = run(&on.addr());
    let _ = run(&off.addr());

    // Best-of-N in both modes: the quantity under test is a small relative
    // difference, and a single rep on a loaded machine is dominated by
    // scheduling noise, not by the span bookkeeping being measured.
    let reps = 3;
    let mut on_runs = Vec::new();
    let mut off_runs = Vec::new();
    for _ in 0..reps {
        let (on_secs, on_answers) = run(&on.addr());
        let (off_secs, off_answers) = run(&off.addr());
        let correct = on_answers == off_answers;

        let base = |algo: &str, secs: f64| Measurement {
            experiment: "trace_overhead".into(),
            dataset: w.name.clone(),
            algo: algo.into(),
            x: format!("requests={total}"),
            seconds: secs,
            sim_seconds: 0.0,
            identified: 0,
            candidates: 0,
            rounds: 0,
            traffic: total as u64,
            correct,
            extra: vec![(
                "rps".into(),
                format!("{:.0}", total as f64 / secs.max(1e-9)),
            )],
        };
        on_runs.push(base("trace_on", on_secs));
        off_runs.push(base("trace_off", off_secs));
    }

    // The EXPLAIN ANALYZE acceptance probe, against the traced server
    // while it is still up: trace a planted duplicate and require the
    // span tree to account for its own wall time with a live candidate
    // funnel — a tree of zeros would mean the spans are decorative.
    let probe = w
        .truth
        .first()
        .map(|&(a, _)| w.graph.entity_label(a))
        .unwrap_or_else(|| names[0].clone());
    let mut c = Client::connect(&on.addr().to_string()).expect("connect");
    let (_, root, _) = c
        .trace(Request::Dups { entity: probe })
        .expect("traced probe");
    let phase_sum = root.child_micros();
    // Sub-100µs roots are below the clock's useful resolution for a
    // ratio; real probes on this graph run well past that.
    let sum_ok = root.micros < 100 || phase_sum as f64 >= root.micros as f64 * 0.9;
    let analyze = root.children.iter().find(|c| c.name == "analyze");
    let funnel = |k: &str| analyze.and_then(|a| a.counter(k)).unwrap_or(0);
    let funnel_ok = funnel("candidates") > 0 && funnel("iso_checks") > 0;

    on.stop();
    off.stop();
    // The reported overhead compares the best rep of each side — the same
    // pair the acceptance test asserts on.
    let mut best_on = pick_best(on_runs);
    let best_off = pick_best(off_runs);
    best_on.correct &= sum_ok && funnel_ok;
    best_on.extra.push((
        "overhead_pct".into(),
        format!("{:.2}", (best_on.seconds / best_off.seconds - 1.0) * 100.0),
    ));
    for (k, v) in [
        ("probe_root_micros", root.micros),
        ("probe_phase_micros", phase_sum),
        ("probe_candidates", funnel("candidates")),
        ("probe_pruned", funnel("pruned")),
        ("probe_iso_checks", funnel("iso_checks")),
    ] {
        best_on.extra.push((k.into(), v.to_string()));
    }
    vec![best_on, best_off]
}

/// Beyond the paper: the epoch-keyed answer cache under a skewed read
/// workload. A duplicate-cluster graph makes every `DUPS` answer render
/// `members − 1` labels — real per-request work — and a Zipf(1) request
/// stream concentrates the traffic on a hot set, so a cache-enabled server
/// answers most requests with a pre-rendered string clone. The cache-off
/// server receives the byte-identical stream and must produce byte-identical
/// answers; the acceptance claim is ≥2× pipelined throughput (release only).
fn query_cached(quick: bool) -> Vec<Measurement> {
    use gk_client::Client;
    use gk_server::{serve, Request, Server};
    use std::sync::Arc;

    // Duplicate-cluster fixture: `groups` clusters of `members` albums that
    // share a key-relevant (name, year) pair, so each cluster collapses into
    // one equivalence class and `DUPS` must render the whole class.
    let (groups, members) = if quick { (4, 256) } else { (8, 384) };
    let mut b = gk_graph::GraphBuilder::new();
    let mut names = Vec::new();
    for g in 0..groups {
        for m in 0..members {
            let label = format!("d{g}_{m}");
            let e = b.entity(&label, "album");
            b.attr(e, "name_of", &format!("dup-name-{g}"));
            b.attr(e, "release_year", &format!("y{g}"));
            names.push(label);
        }
    }
    let graph = b.freeze();
    let keys =
        gk_core::KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
            .expect("fixture keys");

    let mk = |entries: usize| {
        let mut s = Server::new(
            gk_graph::GraphBuilder::from_graph(&graph).freeze(),
            keys.clone(),
        );
        s.set_cache_entries(entries);
        Arc::new(s)
    };
    let on = serve(mk(8192), "127.0.0.1:0", 4).expect("bind");
    let off = serve(mk(0), "127.0.0.1:0", 4).expect("bind");

    // Zipf(s = 1) over the label pool via a precomputed CDF and a fixed-seed
    // LCG: both servers (and every rep) see the identical skewed stream.
    let mut cdf = Vec::with_capacity(names.len());
    let mut acc = 0.0;
    for r in 0..names.len() {
        acc += 1.0 / (r as f64 + 1.0);
        cdf.push(acc);
    }
    let total_w = acc;
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next_rank = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total_w;
        cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
    };
    // DUPS-heavy mix: rendering a whole duplicate class is the per-request
    // cost the cache absorbs; SAME and REP ride along for protocol variety.
    let total = if quick { 8_000 } else { 20_000 };
    let reqs: Vec<Request> = (0..total)
        .map(|i| {
            let a = names[next_rank()].clone();
            match i % 6 {
                0 => Request::Same {
                    a,
                    b: names[next_rank()].clone(),
                },
                1 => Request::Rep { entity: a },
                _ => Request::Dups { entity: a },
            }
        })
        .collect();

    // Raw pipelining: the comparison is server throughput at byte-identical
    // answers, so the client keeps the wire text instead of paying a typed
    // parse whose per-member allocations would dominate the big `DUPS`
    // paragraphs on the client side of the socket.
    let lines: Vec<String> = reqs.iter().map(|r| r.render()).collect();
    let run = |addr: &std::net::SocketAddr| {
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        let t = Instant::now();
        let answers = c.run_pipelined_raw(&lines, 128).expect("pipelined batch");
        (t.elapsed().as_secs_f64(), answers)
    };
    // One untimed pass per server: faults in the connection path and fills
    // the cache, so the timed reps measure the steady (hot) state — the
    // regime the cache exists for.
    let _ = run(&on.addr());
    let _ = run(&off.addr());

    let reps = 3;
    let mut on_runs = Vec::new();
    let mut off_runs = Vec::new();
    for _ in 0..reps {
        let (on_secs, on_answers) = run(&on.addr());
        let (off_secs, off_answers) = run(&off.addr());
        let correct = on_answers == off_answers;
        let base = |algo: &str, secs: f64| Measurement {
            experiment: "query_cached".into(),
            dataset: format!("dupclusters-{groups}x{members}"),
            algo: algo.into(),
            x: format!("requests={total}"),
            seconds: secs,
            sim_seconds: 0.0,
            identified: 0,
            candidates: 0,
            rounds: 0,
            traffic: total as u64,
            correct,
            extra: vec![(
                "rps".into(),
                format!("{:.0}", total as f64 / secs.max(1e-9)),
            )],
        };
        on_runs.push(base("cache_on", on_secs));
        off_runs.push(base("cache_off", off_secs));
    }
    // The hit/miss split is part of the evidence: a speedup with a low hit
    // rate would mean the comparison measured something else.
    let stats = gk_server::request(&on.addr().to_string(), "STATS").unwrap_or_default();
    let field = |k: &str| {
        stats
            .split_whitespace()
            .find_map(|t| t.strip_prefix(&format!("{k}=")).map(str::to_string))
            .unwrap_or_else(|| "?".into())
    };
    on.stop();
    off.stop();
    let mut best_on = pick_best(on_runs);
    let best_off = pick_best(off_runs);
    best_on.extra.push((
        "speedup".into(),
        format!("{:.2}", best_off.seconds / best_on.seconds.max(1e-9)),
    ));
    best_on
        .extra
        .push(("cache_hits".into(), field("cache_hits")));
    best_on
        .extra
        .push(("cache_misses".into(), field("cache_misses")));
    vec![best_on, best_off]
}

/// Beyond the paper: what degree-guided pruning removes from the candidate
/// set `L` before any pair is materialized. The fixture is the shape the
/// pruning targets — a keyed type where most entities are sparse (one
/// attribute, below the key's two-edge anchor demand) and a minority carry
/// the full pattern in planted duplicate pairs. Reported: the pre-pruning
/// `|L|` with the old enumeration's cost, the degree-pruned `TypePairs`
/// set, and the value-blocked set on top; correctness is the chase
/// recovering exactly the planted pairs through the pruned path.
fn matcher_prune(quick: bool) -> Vec<Measurement> {
    use gk_core::{
        candidate_pairs, chase_reference, type_pair_count, CandidateMode, ChaseOrder, KeySet,
    };

    let n = if quick { 1_000 } else { 4_000 };
    let mut b = gk_graph::GraphBuilder::new();
    let mut ids = Vec::with_capacity(n);
    let mut truth = Vec::new();
    for i in 0..n {
        let e = b.entity(&format!("a{i}"), "album");
        // Two rich entities per decade form a planted duplicate pair; the
        // other eight carry only a unique name and can never match Q2.
        if i % 10 < 2 {
            b.attr(e, "name_of", &format!("dup-{}", i / 10));
            b.attr(e, "release_year", &format!("y{}", i / 10));
            if i % 10 == 1 {
                truth.push(gk_core::norm(ids[i - 1], e));
            }
        } else {
            b.attr(e, "name_of", &format!("uniq-{i}"));
        }
        ids.push(e);
    }
    let g = b.freeze();
    let keys = KeySet::parse(r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#)
        .expect("fixture keys")
        .compile(&g);

    // The pre-pruning baseline, enumerated the way `candidate_pairs` did
    // before degree buckets existed: every same-type pair of a keyed type.
    let t = Instant::now();
    let mut unpruned: Vec<(EntityId, EntityId)> = Vec::new();
    for ty in keys.keyed_types() {
        let ents: Vec<EntityId> = g.entities_of_type(ty).to_vec();
        for (i, &a) in ents.iter().enumerate() {
            for &b2 in &ents[i + 1..] {
                unpruned.push(gk_core::norm(a, b2));
            }
        }
    }
    let unpruned_secs = t.elapsed().as_secs_f64();
    assert_eq!(unpruned.len(), type_pair_count(&g, &keys), "baseline |L|");

    let t = Instant::now();
    let pruned = candidate_pairs(&g, &keys, CandidateMode::TypePairs);
    let pruned_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let blocked = candidate_pairs(&g, &keys, CandidateMode::Blocked);
    let blocked_secs = t.elapsed().as_secs_f64();

    // End-to-end correctness through the pruned path: the chase must
    // recover exactly the planted pairs.
    let mut found = chase_reference(&g, &keys, ChaseOrder::Deterministic).identified_pairs();
    found.sort_unstable();
    truth.sort_unstable();
    let correct = found == truth;

    let m = |algo: &str, secs: f64, candidates: usize| Measurement {
        experiment: "matcher_prune".into(),
        dataset: format!("sparse-albums-{n}"),
        algo: algo.into(),
        x: format!("entities={n}"),
        seconds: secs,
        sim_seconds: 0.0,
        identified: truth.len(),
        candidates,
        rounds: 0,
        traffic: unpruned.len() as u64,
        correct,
        extra: vec![(
            "reduction".into(),
            format!("{:.1}x", unpruned.len() as f64 / candidates.max(1) as f64),
        )],
    };
    vec![
        m("unpruned_type_pairs", unpruned_secs, unpruned.len()),
        m("degree_pruned", pruned_secs, pruned.len()),
        m("degree_pruned_blocked", blocked_secs, blocked.len()),
    ]
}

/// Beyond the paper: the distributed chase over the wire on the
/// 10k-entity Google workload — a K-shard `gk-cluster` (router +
/// coordinator + K sharded servers, all on loopback) against one
/// standalone server.  Every configuration starts from an empty graph and
/// ingests the identical INSERT batch stream through its TCP front (the
/// cluster converges the cross-shard exchange after every batch), then
/// answers the identical read-heavy query stream.  Correctness bar: the
/// cluster's answers are byte-identical to standalone's.  `quick` shrinks
/// the query count, never the graph or the shard counts.
fn vary_shards(quick: bool) -> Vec<Measurement> {
    use gk_client::Client;
    use gk_cluster::{Cluster, ClusterOpts};
    use gk_server::{serve, Server};
    use std::time::Duration;

    let cfg = dataset_cfg('g', false)
        .with_scale(0.46)
        .with_chain(2)
        .with_radius(2);
    let w = generate(&cfg);
    let keys_text: String = w.keys.keys().iter().map(|k| format!("{k}\n")).collect();
    let triples = gk_graph::write_graph(&w.graph);
    let specs: Vec<&str> = triples.lines().filter(|l| !l.trim().is_empty()).collect();
    let num_triples = specs.len();
    let batches: Vec<String> = specs
        .chunks(64)
        .map(|c| format!("INSERT {}", c.join(" ; ")))
        .collect();

    let names: Vec<String> = w
        .graph
        .entities()
        .take(512)
        .map(|e| w.graph.entity_label(e))
        .collect();
    let total_queries = if quick { 1_000 } else { 8_000 };
    let queries: Vec<String> = (0..total_queries)
        .map(|i| {
            let a = &names[i % names.len()];
            let b = &names[(i * 7 + 13) % names.len()];
            match i % 3 {
                0 => format!("SAME {a} {b}"),
                1 => format!("REP {a}"),
                _ => format!("DUPS {a}"),
            }
        })
        .collect();

    /// Streams the whole workload through one front and measures it.
    struct FrontRun {
        ingest_secs: f64,
        query_secs: f64,
        answers: Vec<String>,
        identified: usize,
    }
    let drive = |addr: &str| -> FrontRun {
        let mut c = Client::lazy(addr);
        let t = Instant::now();
        for b in &batches {
            let r = c.request_line(b).expect("ingest request");
            assert!(r.starts_with("OK"), "ingest rejected: {r}");
        }
        let ingest_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let answers: Vec<String> = queries
            .iter()
            .map(|q| c.request_line(q).expect("query request"))
            .collect();
        let query_secs = t.elapsed().as_secs_f64();
        let stats = c.request_line("STATS").expect("stats");
        let identified = stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("identified_pairs="))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        FrontRun {
            ingest_secs,
            query_secs,
            answers,
            identified,
        }
    };

    let mut out = Vec::new();
    let mut emit = |x: &str, run: &FrontRun, correct: bool| {
        let base = |algo: &str, secs: f64| Measurement {
            experiment: "vary_shards".into(),
            dataset: w.name.clone(),
            algo: algo.into(),
            x: x.to_string(),
            seconds: secs,
            sim_seconds: 0.0,
            identified: run.identified,
            candidates: 0,
            rounds: 0,
            traffic: 0,
            correct,
            extra: Vec::new(),
        };
        let mut ingest = base("ingest_chase", run.ingest_secs);
        ingest
            .extra
            .push(("batches".into(), batches.len().to_string()));
        ingest
            .extra
            .push(("triples".into(), num_triples.to_string()));
        ingest.extra.push((
            "mean_batch_micros".into(),
            format!("{:.1}", run.ingest_secs * 1e6 / batches.len() as f64),
        ));
        out.push(ingest);
        let mut query = base("query_throughput", run.query_secs);
        query.traffic = total_queries as u64;
        query.extra.push((
            "rps".into(),
            format!("{:.0}", total_queries as f64 / run.query_secs.max(1e-9)),
        ));
        out.push(query);
    };

    // Standalone reference: same empty start, same op stream.
    let server = std::sync::Arc::new(Server::with_engine(
        gk_graph::parse_graph("").expect("empty graph"),
        gk_core::KeySet::parse(&keys_text).expect("keys round-trip"),
        gk_core::ChaseEngine::Incremental,
    ));
    let handle = serve(server, "127.0.0.1:0", 4).expect("bind standalone");
    let reference = drive(&handle.addr().to_string());
    handle.stop();
    emit("standalone", &reference, true);

    for shards in [1usize, 2, 4] {
        let cluster = Cluster::launch(
            "",
            &keys_text,
            "127.0.0.1:0",
            &ClusterOpts {
                shards,
                // No heartbeat: the measured path is each update's own
                // convergence, not a background sweep racing the clock.
                heartbeat: Duration::ZERO,
                ..ClusterOpts::default()
            },
        )
        .expect("launch cluster");
        let run = drive(cluster.router_addr());
        cluster.stop();
        emit(
            &format!("shards={shards}"),
            &run,
            run.answers == reference.answers,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_pipeline_is_2x_faster_with_identical_answers() {
        let ms = run_experiment("query_pipeline", true);
        assert_eq!(ms.len(), 2);
        assert!(
            ms.iter().all(|m| m.correct),
            "pipelined and sequential answers must be identical: {ms:?}"
        );
        // The ≥2× throughput acceptance claim is asserted only in release
        // (the CI recovery job runs it there); debug-mode server-side cost
        // per request drowns the framing difference being measured.
        #[cfg(not(debug_assertions))]
        {
            let pair = |ms: &[Measurement]| {
                let seq = ms
                    .iter()
                    .find(|m| m.algo.starts_with("sequential"))
                    .unwrap();
                let pipe = ms.iter().find(|m| m.algo.starts_with("pipelined")).unwrap();
                (pipe.seconds, seq.seconds)
            };
            // Best of up to 3 attempts guards the one-rep quick mode
            // against transient stalls on a loaded runner.
            let mut last = pair(&ms);
            for _ in 0..2 {
                if last.0 * 2.0 <= last.1 {
                    break;
                }
                last = pair(&run_experiment("query_pipeline", true));
            }
            assert!(
                last.0 * 2.0 <= last.1,
                "pipelined ({:.4}s) must be ≥2× faster than sequential \
                 round trips ({:.4}s)",
                last.0,
                last.1
            );
        }
    }

    /// The event-loop acceptance bar: at equal workers the epoll model
    /// holds ≥4× the threaded model's responsive idle connections (and
    /// ≥1000 absolute), and 1024 simultaneous pipelined clients get
    /// byte-identical answers from both models. Release-only: the bar
    /// is a capacity property, but 1024 debug-mode handshake storms on
    /// a loaded runner are noise, not signal.
    #[cfg(not(debug_assertions))]
    #[test]
    fn event_loop_sustains_4x_the_threaded_idle_capacity() {
        let check = |ms: &[Measurement]| -> Result<(), String> {
            let epoll = ms.iter().find(|m| m.algo == "epoll_idle").unwrap();
            let threaded = ms.iter().find(|m| m.algo == "threaded_idle").unwrap();
            if !ms.iter().all(|m| m.correct) {
                return Err(format!("answers must be byte-identical: {ms:?}"));
            }
            if epoll.identified < 1000 {
                return Err(format!(
                    "epoll held only {} idle connections (need ≥1000)",
                    epoll.identified
                ));
            }
            if epoll.identified < threaded.identified * 4 {
                return Err(format!(
                    "epoll idle capacity {} < 4× threaded capacity {}",
                    epoll.identified, threaded.identified
                ));
            }
            Ok(())
        };
        // Best of up to 3 attempts guards against transient stalls on a
        // loaded runner.
        let mut last = check(&run_experiment("concurrent_connections", true));
        for _ in 0..2 {
            if last.is_ok() {
                break;
            }
            last = check(&run_experiment("concurrent_connections", true));
        }
        last.unwrap();
    }

    #[test]
    fn metrics_overhead_is_under_5pct_with_identical_answers() {
        let ms = run_experiment("metrics_overhead", true);
        assert_eq!(ms.len(), 2);
        assert!(
            ms.iter().all(|m| m.correct),
            "instrumented and no-op answers must be identical: {ms:?}"
        );
        // The <5% throughput-cost acceptance claim is asserted only in
        // release (the CI recovery job runs it there); debug-mode atomics
        // and formatting dwarf the compiled no-op difference.
        #[cfg(not(debug_assertions))]
        {
            let pair = |ms: &[Measurement]| {
                let on = ms.iter().find(|m| m.algo == "metrics_on").unwrap();
                let off = ms.iter().find(|m| m.algo == "metrics_off").unwrap();
                (on.seconds, off.seconds)
            };
            // Best of up to 3 attempts guards the one-rep quick mode
            // against transient stalls on a loaded runner.
            let mut last = pair(&ms);
            for _ in 0..2 {
                if last.0 <= last.1 * 1.05 {
                    break;
                }
                last = pair(&run_experiment("metrics_overhead", true));
            }
            assert!(
                last.0 <= last.1 * 1.05,
                "metrics on ({:.4}s) must stay within 5% of the compiled \
                 no-op path ({:.4}s)",
                last.0,
                last.1
            );
        }
    }

    #[test]
    fn trace_overhead_is_under_5pct_with_identical_answers() {
        let ms = run_experiment("trace_overhead", true);
        assert_eq!(ms.len(), 2);
        assert!(
            ms.iter().all(|m| m.correct),
            "traced and untraced answers must be identical and the TRACE \
             DUPS probe must account for its wall time with live funnel \
             counters: {ms:?}"
        );
        // The <5% throughput-cost acceptance claim is asserted only in
        // release (the CI recovery job runs it there); debug-mode span
        // bookkeeping dwarfs the release-mode cost under test. The
        // recorder-on side pays for every span the disabled mode skips,
        // so the disabled-mode cost is bounded by the same 5%.
        #[cfg(not(debug_assertions))]
        {
            let pair = |ms: &[Measurement]| {
                let on = ms.iter().find(|m| m.algo == "trace_on").unwrap();
                let off = ms.iter().find(|m| m.algo == "trace_off").unwrap();
                (on.seconds, off.seconds)
            };
            // Best of up to 3 attempts guards the one-rep quick mode
            // against transient stalls on a loaded runner.
            let mut last = pair(&ms);
            for _ in 0..2 {
                if last.0 <= last.1 * 1.05 {
                    break;
                }
                last = pair(&run_experiment("trace_overhead", true));
            }
            assert!(
                last.0 <= last.1 * 1.05,
                "flight recorder on ({:.4}s) must stay within 5% of the \
                 disabled-span path ({:.4}s)",
                last.0,
                last.1
            );
        }
    }

    #[test]
    fn query_cached_is_2x_faster_with_identical_answers() {
        let ms = run_experiment("query_cached", true);
        assert_eq!(ms.len(), 2);
        assert!(
            ms.iter().all(|m| m.correct),
            "cached and uncached answers must be byte-identical: {ms:?}"
        );
        // The ≥2× hot-throughput acceptance claim is asserted only in
        // release (the CI recovery job runs it there); debug-mode chase
        // and rendering costs drown the hash-lookup difference measured.
        #[cfg(not(debug_assertions))]
        {
            let pair = |ms: &[Measurement]| {
                let on = ms.iter().find(|m| m.algo == "cache_on").unwrap();
                let off = ms.iter().find(|m| m.algo == "cache_off").unwrap();
                (on.seconds, off.seconds)
            };
            // Best of up to 3 attempts guards the quick mode against
            // transient stalls on a loaded runner.
            let mut last = pair(&ms);
            for _ in 0..2 {
                if last.0 * 2.0 <= last.1 {
                    break;
                }
                last = pair(&run_experiment("query_cached", true));
            }
            assert!(
                last.0 * 2.0 <= last.1,
                "cache-on ({:.4}s) must be ≥2× faster than cache-off \
                 ({:.4}s) on the skewed hot workload",
                last.0,
                last.1
            );
        }
    }

    #[test]
    fn matcher_prune_cuts_candidates_and_stays_correct() {
        let ms = run_experiment("matcher_prune", true);
        assert_eq!(ms.len(), 3);
        assert!(
            ms.iter().all(|m| m.correct),
            "pruned chase must recover exactly the planted pairs: {ms:?}"
        );
        let unpruned = ms.iter().find(|m| m.algo == "unpruned_type_pairs").unwrap();
        let pruned = ms.iter().find(|m| m.algo == "degree_pruned").unwrap();
        // Structural, not timing: holds in every build. The fixture is 20%
        // rich, so the pruned pair set is ~4% of the baseline |L|.
        assert!(
            pruned.candidates * 2 <= unpruned.candidates,
            "degree pruning must cut |L| at least in half: {} vs {}",
            pruned.candidates,
            unpruned.candidates
        );
    }

    #[test]
    fn startup_recovery_is_faster_and_correct() {
        let ms = run_experiment("startup_recovery", true);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.correct), "{ms:?}");
        // The strict speedup claim is asserted only in release (the CI
        // recovery job runs it there): a single debug-mode repetition on
        // a loaded runner can invert on scheduler noise alone.
        #[cfg(not(debug_assertions))]
        {
            let speedup = |ms: &[Measurement]| {
                let cold = ms.iter().find(|m| m.algo.starts_with("cold")).unwrap();
                let rec = ms.iter().find(|m| m.algo.starts_with("snapshot")).unwrap();
                (cold.seconds, rec.seconds)
            };
            // Best of up to 3 attempts guards the one-rep quick mode
            // against a transient stall.
            let mut last = speedup(&ms);
            for _ in 0..2 {
                if last.1 < last.0 {
                    break;
                }
                last = speedup(&run_experiment("startup_recovery", true));
            }
            assert!(
                last.1 < last.0,
                "snapshot+replay ({:.3}s) must beat cold reload+chase ({:.3}s)",
                last.1,
                last.0
            );
        }
    }

    #[test]
    fn ingest_overlay_is_faster_and_identical() {
        let ms = run_experiment("ingest_throughput", true);
        assert_eq!(ms.len(), 2);
        assert!(
            ms.iter().all(|m| m.correct),
            "overlay and rebuild answers must be identical: {ms:?}"
        );
        // The ≥5× steady-state acceptance claim is asserted only in
        // release (the CI recovery job runs it there); a debug build's
        // constant factors are not what the criterion measures.
        #[cfg(not(debug_assertions))]
        {
            let pair = |ms: &[Measurement]| {
                let ov = ms.iter().find(|m| m.algo.starts_with("overlay")).unwrap();
                let rb = ms.iter().find(|m| m.algo.starts_with("rebuild")).unwrap();
                (ov.seconds, rb.seconds)
            };
            // Best of up to 3 attempts guards the one-rep quick mode
            // against transient stalls on a loaded runner.
            let mut last = pair(&ms);
            for _ in 0..2 {
                if last.0 * 5.0 <= last.1 {
                    break;
                }
                last = pair(&run_experiment("ingest_throughput", true));
            }
            assert!(
                last.0 * 5.0 <= last.1,
                "overlay insert ({:.4}s) must be ≥5× faster than the \
                 from_graph rebuild path ({:.4}s)",
                last.0,
                last.1
            );
        }
    }

    #[test]
    fn vary_threads_agrees_with_truth() {
        let ms = run_experiment("vary_threads", true);
        assert_eq!(ms.len(), 5, "baseline + 4 thread counts");
        assert!(ms.iter().all(|m| m.correct), "{ms:?}");
        assert!(ms.iter().all(|m| m.identified == ms[0].identified));
    }

    #[test]
    fn quick_experiment_runs_and_is_correct() {
        let ms = run_experiment("gp_ratio", true);
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.correct), "{ms:?}");
    }

    #[test]
    fn all_ids_resolve() {
        // Just the cheap ones here; the figures binary exercises the rest.
        for id in ["table2", "gp_ratio"] {
            assert!(!run_experiment(id, true).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("fig9z", true);
    }
}
