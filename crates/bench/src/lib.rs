//! # gk-bench — benchmark harness for the Keys-for-Graphs evaluation
//!
//! Reproduces every table and figure of §6 (see DESIGN.md's experiment
//! index):
//!
//! * Fig. 8(a)(e)(i): varying the worker count `p`;
//! * Fig. 8(b)(f)(j): varying `|G|` via the generator scale factor;
//! * Fig. 8(c)(g)(k): varying the dependency-chain length `c`;
//! * Fig. 8(d)(h)(l): varying the maximum radius `d`;
//! * Table 2: candidate vs confirmed matches;
//! * in-text measurements: `|Gp| / |G|`, optimization effects, MapReduce
//!   round counts.
//!
//! Run the full suite with `cargo run -p gk-bench --release --bin figures
//! -- all`, or individual experiments by id (`fig8a` … `fig8l`, `table2`,
//! `gp_ratio`, `opt_mr`, `opt_vc`). Criterion micro-benchmarks live under
//! `benches/`.

#![warn(missing_docs)]

pub mod suite;

pub use suite::{run_experiment, AlgoKind, Measurement, ALL_EXPERIMENTS};
