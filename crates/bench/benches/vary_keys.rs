//! Criterion bench over key complexity — the micro version of
//! Fig. 8(c)(g)(k) (dependency chain `c`) and Fig. 8(d)(h)(l) (radius `d`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gk_bench::AlgoKind;
use gk_datagen::{generate, GenConfig};

fn bench_vary_c(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("vary_c_synthetic");
    group.sample_size(10);
    for c in [1usize, 2, 3] {
        let w = generate(
            &GenConfig::synthetic()
                .with_keys(30)
                .with_scale(0.2)
                .with_chain(c)
                .with_radius(2),
        );
        let keys = w.keys.compile(&w.graph);
        for algo in [AlgoKind::MrOpt, AlgoKind::VcOpt] {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), format!("c={c}")),
                &c,
                |b, _| {
                    b.iter(|| {
                        let out = algo.run(&w.graph, &keys, 4);
                        assert_eq!(out.identified_pairs(), w.truth);
                        out.report.rounds
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_vary_d(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("vary_d_synthetic");
    group.sample_size(10);
    for d in [1usize, 2, 3] {
        let w = generate(
            &GenConfig::synthetic()
                .with_keys(30)
                .with_scale(0.2)
                .with_chain(2)
                .with_radius(d),
        );
        let keys = w.keys.compile(&w.graph);
        for algo in [AlgoKind::MrOpt, AlgoKind::VcOpt] {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), format!("d={d}")),
                &d,
                |b, _| {
                    b.iter(|| {
                        let out = algo.run(&w.graph, &keys, 4);
                        assert_eq!(out.identified_pairs(), w.truth);
                        out.report.identified
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_c, bench_vary_d);
criterion_main!(benches);
