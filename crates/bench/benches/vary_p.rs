//! Criterion bench over the worker count `p` — the micro version of
//! Fig. 8(a)(e)(i). Absolute times are machine-specific; the interesting
//! output is the trend across `p` and the algorithm ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gk_bench::AlgoKind;
use gk_datagen::{generate, GenConfig};

fn bench_vary_p(cr: &mut Criterion) {
    let w = generate(
        &GenConfig::google()
            .with_scale(0.08)
            .with_chain(2)
            .with_radius(2),
    );
    let keys = w.keys.compile(&w.graph);
    let mut group = cr.benchmark_group("vary_p_google");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        for algo in [AlgoKind::Mr, AlgoKind::MrOpt, AlgoKind::Vc, AlgoKind::VcOpt] {
            group.bench_with_input(BenchmarkId::new(algo.label(), p), &p, |b, &p| {
                b.iter(|| {
                    let out = algo.run(&w.graph, &keys, p);
                    assert_eq!(out.identified_pairs(), w.truth);
                    out.report.identified
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_p);
criterion_main!(benches);
