//! Criterion bench for the TCP front-ends under many concurrent
//! pipelined clients on the 10k-entity Google-flavoured workload:
//!
//! * **epoll/Nconn** — the nonblocking event loop: N simultaneous
//!   `gk-client` connections, each pipelining its own deterministic
//!   request batch; the reactor multiplexes them over 4 request workers;
//! * **threaded/Nconn** — the blocking thread-per-connection pool at the
//!   same 4 workers: connections beyond the pool queue behind it.
//!
//! Both models answer the identical request stream byte-identically (the
//! `concurrent_connections` suite experiment asserts that); the measured
//! gap is how each front-end schedules many connections over few
//! workers. Client counts stay modest here — criterion repeats each
//! iteration many times, and the 1024-client capacity point lives in the
//! suite experiment, not the hot loop.

use criterion::{criterion_group, criterion_main, Criterion};
use gk_client::Client;
use gk_datagen::{generate, GenConfig};
use gk_graph::GraphBuilder;
use gk_server::{serve_with, NetModel, ServeOptions, Server};
use std::sync::{Arc, Barrier};

fn bench_concurrent_connections(cr: &mut Criterion) {
    // ~10k entities: the scale the PR's acceptance criterion names.
    let w = generate(
        &GenConfig::google()
            .with_scale(0.46)
            .with_chain(2)
            .with_radius(2),
    );
    let names: Vec<String> = w
        .graph
        .entities()
        .take(512)
        .map(|e| w.graph.entity_label(e))
        .collect();

    // Deterministic per-client request-line batches.
    const PER_CLIENT: usize = 32;
    let batch = |c: usize| -> Vec<String> {
        (0..PER_CLIENT)
            .map(|i| {
                let a = &names[(c * 31 + i * 7) % names.len()];
                let b = &names[(c * 17 + i * 13 + 5) % names.len()];
                match (c + i) % 4 {
                    0 => format!("SAME {a} {b}"),
                    1 => format!("REP {a}"),
                    2 => format!("DUPS {a}"),
                    _ => "PING".to_string(),
                }
            })
            .collect()
    };

    let mut group = cr.benchmark_group("concurrent_connections_google_10k");
    group.sample_size(10);

    for model in [NetModel::Epoll, NetModel::Threaded] {
        let server = Arc::new(Server::new(
            GraphBuilder::from_graph(&w.graph).freeze(),
            w.keys.clone(),
        ));
        let handle = serve_with(
            server,
            "127.0.0.1:0",
            &ServeOptions {
                threads: 4,
                model,
                max_conns: 0,
                metrics_addr: None,
            },
        )
        .expect("bind ephemeral port");
        let addr = handle.addr().to_string();

        for clients in [16usize, 64] {
            group.bench_with_input(
                criterion::BenchmarkId::new(model.to_string(), format!("{clients}conn")),
                &clients,
                |b, &clients| {
                    b.iter(|| {
                        // Fresh connections each iteration: connection
                        // churn is part of what a front-end schedules.
                        let barrier = Arc::new(Barrier::new(clients + 1));
                        let threads: Vec<_> = (0..clients)
                            .map(|c| {
                                let addr = addr.clone();
                                let barrier = Arc::clone(&barrier);
                                let lines = batch(c);
                                std::thread::spawn(move || {
                                    let mut client = Client::connect(&addr).expect("connect");
                                    barrier.wait();
                                    client
                                        .run_pipelined_raw(&lines, 8)
                                        .expect("pipelined batch")
                                })
                            })
                            .collect();
                        barrier.wait();
                        for t in threads {
                            t.join().expect("client thread");
                        }
                    });
                },
            );
        }
        handle.stop();
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_connections);
criterion_main!(benches);
