//! Criterion bench for the TCP query path on the 10k-entity
//! Google-flavoured workload:
//!
//! * **sequential_rtt** — one request line, one response paragraph, one
//!   round trip at a time over a persistent connection (what
//!   `graphkeys query` does per invocation);
//! * **pipelined_depth64** — the `gk-client` pipeline: 64 requests
//!   written ahead, answers drained in order.
//!
//! Both issue the identical deterministic request mix and receive
//! byte-identical answers; the measured gap is pure per-request framing
//! latency (syscalls + scheduler wake-ups), which pipelining amortizes.

use criterion::{criterion_group, criterion_main, Criterion};
use gk_client::Client;
use gk_datagen::{generate, GenConfig};
use gk_graph::GraphBuilder;
use gk_server::{serve, Request, Server};
use std::sync::Arc;

fn bench_query_pipeline(cr: &mut Criterion) {
    // ~10k entities: the scale the PR's acceptance criterion names.
    let w = generate(
        &GenConfig::google()
            .with_scale(0.46)
            .with_chain(2)
            .with_radius(2),
    );
    let server = Arc::new(Server::new(
        GraphBuilder::from_graph(&w.graph).freeze(),
        w.keys.clone(),
    ));
    let handle = serve(server, "127.0.0.1:0", 4).expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let names: Vec<String> = w
        .graph
        .entities()
        .take(512)
        .map(|e| w.graph.entity_label(e))
        .collect();
    let reqs: Vec<Request> = (0..256)
        .map(|i| {
            let a = names[i % names.len()].clone();
            let b = names[(i * 7 + 13) % names.len()].clone();
            match i % 4 {
                0 => Request::Same { a, b },
                1 => Request::Rep { entity: a },
                2 => Request::Dups { entity: a },
                _ => Request::Ping,
            }
        })
        .collect();

    let mut group = cr.benchmark_group("query_pipeline_google_10k");
    group.sample_size(20);

    let mut seq = Client::connect(&addr).expect("connect");
    group.bench_with_input(
        criterion::BenchmarkId::new("sequential_rtt", "256req"),
        &(),
        |b, ()| {
            b.iter(|| {
                for r in &reqs {
                    seq.request(r).expect("sequential request");
                }
            });
        },
    );

    let mut pipe = Client::connect(&addr).expect("connect");
    group.bench_with_input(
        criterion::BenchmarkId::new("pipelined_depth64", "256req"),
        &(),
        |b, ()| {
            b.iter(|| {
                pipe.run_pipelined(&reqs, 64).expect("pipelined batch");
            });
        },
    );

    group.finish();
    handle.stop();
}

criterion_group!(benches, bench_query_pipeline);
criterion_main!(benches);
