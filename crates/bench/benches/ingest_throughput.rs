//! Criterion bench for the steady-state `INSERT` write path on the
//! 10k-entity Google-flavoured workload:
//!
//! * **overlay_insert** — the epoch-based delta overlay: `EmIndex::insert`
//!   clones the bounded delta, appends in O(batch), and runs the monotone
//!   delta chase (compaction folds the delta at the configured threshold,
//!   so long runs measure true steady state);
//! * **rebuild_insert** — the pre-overlay path: re-open the whole frozen
//!   graph (`GraphBuilder::from_graph`), freeze a new CSR, recompile, then
//!   the same delta chase.
//!
//! The two paths produce identical equivalence classes; only the write
//! cost differs — O(batch + delta) vs O(|G| log |G|) per accepted batch.

use criterion::{criterion_group, criterion_main, Criterion};
use gk_core::{chase_incremental, ChaseEngine, ChaseOrder};
use gk_datagen::{generate, GenConfig};
use gk_graph::{parse_triple_specs, EntityId, Graph, GraphBuilder};
use gk_server::EmIndex;
use std::cell::RefCell;

fn reclone(g: &Graph) -> Graph {
    GraphBuilder::from_graph(g).freeze()
}

fn batch_text(i: usize) -> String {
    format!(
        "ing{i}a:ingest logged \"v{i}\"\ning{i}b:ingest logged \"v{i}\"\n\
         ing{i}a:ingest batch \"b{}\"",
        i % 4
    )
}

fn bench_ingest_throughput(cr: &mut Criterion) {
    // ~10k entities: the scale the PR's acceptance criterion names.
    let w = generate(
        &GenConfig::google()
            .with_scale(0.46)
            .with_chain(2)
            .with_radius(2),
    );
    let engine = ChaseEngine::default();

    let mut group = cr.benchmark_group("ingest_throughput_google_10k");
    group.sample_size(20);

    // Overlay path: one resident index; every iteration streams a fresh
    // batch (new entity names, so nothing is a no-op).
    let idx = EmIndex::with_engine(reclone(&w.graph), w.keys.clone(), engine);
    let counter = RefCell::new(0usize);
    group.bench_with_input(
        criterion::BenchmarkId::new("overlay_insert", "batch"),
        &(),
        |b, ()| {
            b.iter(|| {
                let i = {
                    let mut c = counter.borrow_mut();
                    *c += 1;
                    *c
                };
                idx.insert(&parse_triple_specs(&batch_text(i)).unwrap())
                    .expect("overlay insert");
            })
        },
    );

    // Rebuild path: every iteration pays the full from_graph + freeze +
    // recompile that each accepted batch used to cost.
    let state = RefCell::new({
        let g = reclone(&w.graph);
        let compiled = w.keys.compile(&g);
        let eq = engine
            .full_chase(&g, &compiled, ChaseOrder::Deterministic)
            .eq;
        (g, eq, 1_000_000usize)
    });
    group.bench_with_input(
        criterion::BenchmarkId::new("rebuild_insert", "batch"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut st = state.borrow_mut();
                st.2 += 1;
                let specs = parse_triple_specs(&batch_text(st.2)).unwrap();
                let mut bld = GraphBuilder::from_graph(&st.0);
                let mut touched: Vec<EntityId> = Vec::new();
                for s in &specs {
                    let (subj, obj) = s.apply(&mut bld);
                    touched.push(subj);
                    touched.extend(obj);
                }
                touched.sort_unstable();
                touched.dedup();
                let g2 = bld.freeze();
                let compiled2 = w.keys.compile(&g2);
                let r = chase_incremental(&g2, &compiled2, &st.1, &touched);
                st.0 = g2;
                st.1 = r.eq;
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_ingest_throughput);
criterion_main!(benches);
