//! Criterion bench for the distributed chase over the wire: a K-shard
//! `gk-cluster` (router + coordinator + K sharded servers on loopback)
//! versus one standalone server, both fed the identical traffic through
//! their TCP fronts.
//!
//! * **update_converge** — one `INSERT` batch of fresh entities; for the
//!   cluster this includes the full exchange to fixpoint (broadcast,
//!   per-shard slice chase, merge-log absorption, delta re-ship);
//! * **query_roundtrip** — one `SAME` over planted duplicates, answered
//!   from the already-converged view via the router's affinity shard.
//!
//! The standalone server is the `shards=0` row in each group.

use criterion::{criterion_group, criterion_main, Criterion};
use gk_client::Client;
use gk_cluster::{Cluster, ClusterOpts};
use gk_core::{ChaseEngine, KeySet};
use gk_datagen::{generate, GenConfig};
use gk_graph::write_graph;
use gk_server::{serve, Server};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// A front-end under test: one client into either a standalone server or a
/// cluster router, plus whatever must stay alive behind it.
struct Front {
    client: RefCell<Client>,
    label: String,
    _cluster: Option<Cluster>,
    _handle: Option<gk_server::ServeHandle>,
}

fn fronts(graph_text: &str, keys_text: &str) -> Vec<Front> {
    let mut out = Vec::new();
    let server = Arc::new(Server::with_engine(
        gk_graph::parse_graph(graph_text).expect("graph"),
        KeySet::parse(keys_text).expect("keys"),
        ChaseEngine::Incremental,
    ));
    let handle = serve(server, "127.0.0.1:0", 4).expect("bind standalone");
    out.push(Front {
        client: RefCell::new(Client::lazy(&handle.addr().to_string())),
        label: "standalone".into(),
        _cluster: None,
        _handle: Some(handle),
    });
    for shards in [1usize, 2, 4] {
        let cluster = Cluster::launch(
            graph_text,
            keys_text,
            "127.0.0.1:0",
            &ClusterOpts {
                shards,
                heartbeat: Duration::ZERO,
                ..ClusterOpts::default()
            },
        )
        .expect("launch cluster");
        out.push(Front {
            client: RefCell::new(Client::lazy(cluster.router_addr())),
            label: format!("shards={shards}"),
            _cluster: Some(cluster),
            _handle: None,
        });
    }
    out
}

fn bench_vary_shards(cr: &mut Criterion) {
    // ~10k entities: the scale the PR's acceptance criterion names.
    let w = generate(
        &GenConfig::google()
            .with_scale(0.46)
            .with_chain(2)
            .with_radius(2),
    );
    let graph_text = write_graph(&w.graph);
    let keys_text: String = w.keys.keys().iter().map(|k| format!("{k}\n")).collect();
    let names: Vec<String> = w
        .graph
        .entities()
        .take(256)
        .map(|e| w.graph.entity_label(e))
        .collect();

    let fronts = fronts(&graph_text, &keys_text);

    let mut group = cr.benchmark_group("vary_shards_google_10k");
    group.sample_size(20);

    for f in &fronts {
        let counter = RefCell::new(0usize);
        group.bench_with_input(
            criterion::BenchmarkId::new("update_converge", &f.label),
            &(),
            |b, ()| {
                b.iter(|| {
                    let i = {
                        let mut c = counter.borrow_mut();
                        *c += 1;
                        *c
                    };
                    let line = format!(
                        "INSERT vs{i}a:ingest logged \"v{i}\" ; \
                         vs{i}b:ingest logged \"v{i}\" ; \
                         vs{i}a:ingest batch \"b{}\"",
                        i % 4
                    );
                    let r = f.client.borrow_mut().request_line(&line).expect("insert");
                    assert!(r.starts_with("OK"), "insert rejected: {r}");
                })
            },
        );
    }

    for f in &fronts {
        let counter = RefCell::new(0usize);
        group.bench_with_input(
            criterion::BenchmarkId::new("query_roundtrip", &f.label),
            &(),
            |b, ()| {
                b.iter(|| {
                    let i = {
                        let mut c = counter.borrow_mut();
                        *c += 1;
                        *c
                    };
                    let a = &names[i % names.len()];
                    let z = &names[(i * 7 + 13) % names.len()];
                    let line = format!("SAME {a} {z}");
                    let r = f.client.borrow_mut().request_line(&line).expect("same");
                    assert!(r.starts_with("SAME"), "unexpected answer: {r}");
                })
            },
        );
    }
    group.finish();

    for f in fronts {
        if let Some(c) = f._cluster {
            c.stop();
        }
        if let Some(h) = f._handle {
            h.stop();
        }
    }
}

criterion_group!(benches, bench_vary_shards);
criterion_main!(benches);
