//! Criterion bench for the restart paths of the durable resident server,
//! on the 10k-entity Google-flavoured workload:
//!
//! * **cold_reload_chase** — what a restart cost before `gk-store`: load
//!   the graph and re-run the full startup chase;
//! * **snapshot_replay** — the durable path: load the newest snapshot and
//!   replay the WAL suffix through the incremental chase.
//!
//! Every recovery iteration asserts that the recovered equivalence
//! classes equal the cold rebuild's: a fast restart that answered
//! differently would fail loudly, not silently.

use criterion::{criterion_group, criterion_main, Criterion};
use gk_core::ChaseEngine;
use gk_datagen::{generate, GenConfig};
use gk_graph::{parse_triple_specs, Graph, GraphBuilder};
use gk_server::EmIndex;
use gk_store::Durability;

fn reclone(g: &Graph) -> Graph {
    GraphBuilder::from_graph(g).freeze()
}

fn bench_startup_recovery(cr: &mut Criterion) {
    // ~10k entities: the scale the PR's acceptance criterion names.
    let w = generate(
        &GenConfig::google()
            .with_scale(0.46)
            .with_chain(2)
            .with_radius(2),
    );
    let engine = ChaseEngine::default();
    let dir = std::env::temp_dir().join(format!("gk-crit-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dur = Durability::in_dir(&dir);

    // Prepare the data directory once: bootstrap (chase + snapshot), then
    // a stream of post-snapshot inserts that recovery must replay.
    let (index, _) =
        EmIndex::open_durable(reclone(&w.graph), w.keys.clone(), engine, &dur).unwrap();
    for i in 0..32 {
        let batch = format!("ing{i}a:ingest logged \"v{i}\"\ning{i}b:ingest logged \"v{i}\"");
        index.insert(&parse_triple_specs(&batch).unwrap()).unwrap();
    }
    // materialize() already yields an owned, independent frozen graph.
    let final_graph = index.snapshot().graph.materialize();
    let expected = index.snapshot().eq.classes();
    drop(index);

    let mut group = cr.benchmark_group("startup_recovery_google_10k");
    group.sample_size(10);
    group.bench_with_input(
        criterion::BenchmarkId::new("cold_reload_chase", "restart"),
        &(),
        |b, ()| {
            b.iter(|| {
                let idx = EmIndex::with_engine(reclone(&final_graph), w.keys.clone(), engine);
                assert_eq!(idx.snapshot().eq.classes(), expected);
            })
        },
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("snapshot_replay", "restart"),
        &(),
        |b, ()| {
            b.iter(|| {
                let (idx, report) = EmIndex::recover_durable(&dur, engine).unwrap().unwrap();
                assert!(report.recovered);
                assert_eq!(idx.snapshot().eq.classes(), expected);
            })
        },
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_startup_recovery);
criterion_main!(benches);
