//! Criterion bench over the graph size — the micro version of
//! Fig. 8(b)(f)(j): time should grow roughly linearly in the scale factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gk_bench::AlgoKind;
use gk_datagen::{generate, GenConfig};

fn bench_vary_scale(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("vary_scale_dbpedia");
    group.sample_size(10);
    for scale in [0.05f64, 0.1, 0.2] {
        let w = generate(
            &GenConfig::dbpedia()
                .with_scale(scale)
                .with_chain(2)
                .with_radius(2),
        );
        let keys = w.keys.compile(&w.graph);
        for algo in [AlgoKind::MrOpt, AlgoKind::VcOpt] {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), format!("scale={scale}")),
                &scale,
                |b, _| {
                    b.iter(|| {
                        let out = algo.run(&w.graph, &keys, 4);
                        assert_eq!(out.identified_pairs(), w.truth);
                        out.report.identified
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_scale);
criterion_main!(benches);
