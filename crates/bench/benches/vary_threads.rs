//! Criterion bench over the worker-thread count of the partitioned chase
//! (`chase_parallel`) on the 10k-entity Google-flavoured workload, with the
//! sequential `chase_reference` as the baseline.
//!
//! Two effects compose here and both are reported by the sweep:
//!
//! * **candidate reduction** — the parallel engine's value blocking plus
//!   dependency wake-up does a fraction of the reference engine's key
//!   evaluations, so even `--threads 1` beats the baseline (>1.3× on a
//!   single-core host);
//! * **sharded threading** — on multi-core hosts the per-round sweeps split
//!   across real OS threads, so the 2/4/8-thread points drop further.
//!
//! Every iteration asserts the planted ground truth: a speedup that broke
//! the Church–Rosser equivalence would fail loudly, not silently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gk_core::{chase_parallel, chase_reference, ChaseOrder, ParallelOpts};
use gk_datagen::{generate, GenConfig};

fn bench_vary_threads(cr: &mut Criterion) {
    // ~10k entities: the scale the PR's acceptance speedup is measured at.
    let w = generate(
        &GenConfig::google()
            .with_scale(0.46)
            .with_chain(2)
            .with_radius(2),
    );
    let keys = w.keys.compile(&w.graph);
    let mut group = cr.benchmark_group("vary_threads_google_10k");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("reference", "baseline"), &(), |b, ()| {
        b.iter(|| {
            let r = chase_reference(&w.graph, &keys, ChaseOrder::Deterministic);
            assert_eq!(r.identified_pairs(), w.truth);
            r.rounds
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("chase_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let r = chase_parallel(&w.graph, &keys, ParallelOpts::with_threads(threads));
                    assert_eq!(r.identified_pairs(), w.truth);
                    r.rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vary_threads);
criterion_main!(benches);
