//! Micro-benchmarks of the building blocks: neighborhood extraction,
//! pairing, the guided matcher vs the enumerate-all baseline, tours,
//! product-graph construction, and the union–find.

use criterion::{criterion_group, criterion_main, Criterion};
use gk_core::{prepare_opt, CandidateMode, EqRel, ProductGraph, Tour};
use gk_datagen::{generate, GenConfig};
use gk_graph::{d_neighborhood, EntityId};
use gk_isomorph::{eval_pair, eval_pair_enumerate, pairing_at, IdentityEq, MatchScope};

fn setup() -> (gk_datagen::Workload, gk_core::CompiledKeySet) {
    let w = generate(
        &GenConfig::google()
            .with_scale(0.1)
            .with_chain(2)
            .with_radius(2),
    );
    let keys = w.keys.compile(&w.graph);
    (w, keys)
}

fn bench_neighborhood(cr: &mut Criterion) {
    let (w, keys) = setup();
    let e = w.truth[0].0;
    let d = keys.radius_of_type(w.graph.entity_type(e));
    cr.bench_function("d_neighborhood", |b| {
        b.iter(|| d_neighborhood(&w.graph, e, d).len())
    });
}

fn bench_matchers(cr: &mut Criterion) {
    let (w, keys) = setup();
    // A ground-truth pair of the deepest (value-based) level: both the
    // guided matcher and the baseline succeed on it.
    let (a, b) = *w
        .truth
        .iter()
        .find(|&&(a, b)| {
            let t = w.graph.entity_type(a);
            keys.keys_on(t).iter().any(|&k| !keys.keys[k].recursive) && a != b
        })
        .expect("value-based truth pair");
    let t = w.graph.entity_type(a);
    let ki = *keys
        .keys_on(t)
        .iter()
        .find(|&&k| !keys.keys[k].recursive)
        .unwrap();
    let q = &keys.keys[ki].pattern;
    cr.bench_function("eval_pair_guided", |bch| {
        bch.iter(|| {
            assert!(eval_pair(
                &w.graph,
                q,
                a,
                b,
                &IdentityEq,
                MatchScope::whole_graph()
            ))
        })
    });
    cr.bench_function("eval_pair_enumerate_all", |bch| {
        bch.iter(|| {
            assert!(eval_pair_enumerate(
                &w.graph,
                q,
                a,
                b,
                &IdentityEq,
                None,
                None,
                usize::MAX
            ))
        })
    });
    cr.bench_function("pairing_at", |bch| {
        bch.iter(|| pairing_at(&w.graph, q, a, b, None, None).len())
    });
}

fn bench_tour_and_product(cr: &mut Criterion) {
    let (w, keys) = setup();
    cr.bench_function("tour_build_all_keys", |b| {
        b.iter(|| {
            keys.keys
                .iter()
                .map(|k| Tour::build(&k.pattern).len())
                .sum::<usize>()
        })
    });
    cr.bench_function("prepare_opt_plus_product", |b| {
        b.iter(|| {
            let prep = prepare_opt(&w.graph, &keys, CandidateMode::TypePairs);
            ProductGraph::build(&w.graph, &keys, &prep).num_nodes()
        })
    });
}

fn bench_union_find(cr: &mut Criterion) {
    cr.bench_function("eqrel_union_find_10k", |b| {
        b.iter(|| {
            let mut eq = EqRel::identity(10_000);
            for i in 0..9_999u32 {
                eq.union(EntityId(i), EntityId(i + 1));
            }
            eq.num_identified_pairs()
        })
    });
}

criterion_group!(
    benches,
    bench_neighborhood,
    bench_matchers,
    bench_tour_and_product,
    bench_union_find
);
criterion_main!(benches);
