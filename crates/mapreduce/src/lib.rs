//! # gk-mapreduce — an in-process MapReduce framework
//!
//! The paper's first entity-matching algorithm (`EM_MR`, §4) runs on
//! Hadoop. This crate is the substrate substitution documented in
//! DESIGN.md: a faithful, in-process MapReduce with `p` worker threads that
//! preserves exactly the properties the paper's analysis relies on —
//!
//! * **round structure**: map tasks, a barrier, a key-partitioned shuffle,
//!   reduce tasks, another barrier (stragglers block the round, §5's
//!   motivation);
//! * **key-partitioned reduce**: all values of one key meet in one reducer;
//! * **per-worker division of labour**: `p` map tasks and `p` reduce tasks
//!   per round, so work scales as `1/p` (parallel scalability, §3.3);
//! * **job metrics**: shuffled record counts and per-task skew, used by the
//!   experiment harness.
//!
//! Invariant inputs (the graph, neighborhoods, keys) are shared read-only
//! by `Arc` rather than re-shipped each round — the in-process analogue of
//! HaLoop-style caching the paper adopts for `G^d` and `Σ` (§4.1).
//!
//! ```
//! use gk_mapreduce::{Cluster, Emitter, MapReduce};
//!
//! struct WordCount;
//! impl MapReduce for WordCount {
//!     type KIn = ();       type VIn = String;
//!     type KMid = String;  type VMid = u64;
//!     type KOut = String;  type VOut = u64;
//!     fn map(&self, _: &(), line: &String, out: &mut Emitter<String, u64>) {
//!         for w in line.split_whitespace() {
//!             out.emit(w.to_string(), 1);
//!         }
//!     }
//!     fn reduce(&self, w: &String, counts: Vec<u64>, out: &mut Emitter<String, u64>) {
//!         out.emit(w.clone(), counts.into_iter().sum());
//!     }
//! }
//!
//! let cluster = Cluster::new(4);
//! let (mut counts, _stats) =
//!     cluster.run(&WordCount, vec![((), "a b a".to_string())]);
//! counts.sort();
//! assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 1)]);
//! ```

#![warn(missing_docs)]

use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// A MapReduce job: user-defined `map` and `reduce` functions.
///
/// `map` runs once per input record; emitted intermediate pairs are hash-
/// partitioned by key and grouped; `reduce` runs once per distinct key with
/// all of its values.
pub trait MapReduce: Sync {
    /// Input key type.
    type KIn: Send;
    /// Input value type.
    type VIn: Send;
    /// Intermediate key type (drives partitioning and grouping).
    type KMid: Send + Ord + Hash + Clone;
    /// Intermediate value type.
    type VMid: Send;
    /// Output key type.
    type KOut: Send;
    /// Output value type.
    type VOut: Send;

    /// The mapper. Called in parallel across input splits.
    fn map(&self, key: &Self::KIn, value: &Self::VIn, out: &mut Emitter<Self::KMid, Self::VMid>);

    /// The reducer. Called in parallel across key partitions; `values`
    /// contains every intermediate value emitted for `key`, in a
    /// deterministic order (map-task-major).
    fn reduce(
        &self,
        key: &Self::KMid,
        values: Vec<Self::VMid>,
        out: &mut Emitter<Self::KOut, Self::VOut>,
    );
}

/// Collects `(key, value)` emissions from a mapper or reducer.
pub struct Emitter<K, V> {
    buf: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    fn new() -> Self {
        Emitter { buf: Vec::new() }
    }

    /// Emits one record.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.buf.push((key, value));
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Metrics for one job execution (one MapReduce round).
#[derive(Clone, Debug, Default)]
pub struct JobStats {
    /// Number of map tasks (= worker count, unless input is smaller).
    pub map_tasks: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Input records.
    pub records_in: usize,
    /// Intermediate records moved through the shuffle.
    pub records_shuffled: usize,
    /// Output records.
    pub records_out: usize,
    /// Wall-clock time of the map phase (up to its barrier).
    pub map_time: Duration,
    /// Wall-clock time of shuffle grouping.
    pub shuffle_time: Duration,
    /// Wall-clock time of the reduce phase.
    pub reduce_time: Duration,
    /// Max-over-mean map-task time: >1 means stragglers held the barrier —
    /// the cost the vertex-centric model avoids (§5).
    pub straggler_skew: f64,
    /// Simulated round makespan assuming `p` truly parallel workers:
    /// slowest map task + shuffle + slowest reduce task. On machines with
    /// fewer cores than `p` this is the faithful scalability metric (the
    /// paper's `t(|G|, |Σ|)/p`); see DESIGN.md.
    pub sim_makespan: Duration,
}

impl JobStats {
    /// Accumulates another round's stats into a running total.
    pub fn accumulate(&mut self, other: &JobStats) {
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
        self.records_in += other.records_in;
        self.records_shuffled += other.records_shuffled;
        self.records_out += other.records_out;
        self.map_time += other.map_time;
        self.shuffle_time += other.shuffle_time;
        self.reduce_time += other.reduce_time;
        self.straggler_skew = self.straggler_skew.max(other.straggler_skew);
        self.sim_makespan += other.sim_makespan;
    }
}

/// How a [`Cluster`] executes its tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Real OS threads: one per map/reduce task (up to `p`).
    Threads,
    /// Deterministic single-threaded simulation: tasks run one at a time
    /// and their times feed [`JobStats::sim_makespan`] — the faithful
    /// scalability metric when `p` exceeds the host's core count.
    Simulate,
}

/// A simulated cluster of `p` workers executing MapReduce jobs.
#[derive(Clone, Copy, Debug)]
pub struct Cluster {
    workers: usize,
    mode: ExecMode,
}

impl Cluster {
    /// Creates a cluster with `p ≥ 1` workers running on real threads.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "a cluster needs at least one worker");
        Cluster {
            workers: p,
            mode: ExecMode::Threads,
        }
    }

    /// Creates a cluster with `p ≥ 1` *virtual* workers running in
    /// deterministic simulation (see [`ExecMode::Simulate`]).
    pub fn simulated(p: usize) -> Self {
        assert!(p >= 1, "a cluster needs at least one worker");
        Cluster {
            workers: p,
            mode: ExecMode::Simulate,
        }
    }

    /// The number of workers `p`.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Runs one job (one round): map over input splits, shuffle by key
    /// hash, reduce per partition. Returns outputs (partition-major,
    /// deterministic order) and the round's stats.
    #[allow(clippy::type_complexity)] // the tuples are the MapReduce contract
    pub fn run<J: MapReduce>(
        &self,
        job: &J,
        input: Vec<(J::KIn, J::VIn)>,
    ) -> (Vec<(J::KOut, J::VOut)>, JobStats) {
        let p = self.workers;
        let records_in = input.len();

        // ---- Map phase -------------------------------------------------
        let t0 = Instant::now();
        let splits = split_input(input, p);
        let map_tasks = splits.len();
        let mut task_times = Vec::with_capacity(map_tasks);
        // Each map task partitions its own output by reducer.
        let mut partitioned: Vec<Vec<Vec<(J::KMid, J::VMid)>>> = Vec::with_capacity(map_tasks);
        let run_map_task = |split: Vec<(J::KIn, J::VIn)>| {
            let t = Instant::now();
            let mut em = Emitter::new();
            for (k, v) in &split {
                job.map(k, v, &mut em);
            }
            let mut parts: Vec<Vec<(J::KMid, J::VMid)>> = (0..p).map(|_| Vec::new()).collect();
            for (k, v) in em.buf {
                let r = partition_of(&k, p);
                parts[r].push((k, v));
            }
            (parts, t.elapsed())
        };
        match self.mode {
            ExecMode::Threads => {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = splits
                        .into_iter()
                        .map(|split| scope.spawn(|| run_map_task(split)))
                        .collect();
                    for h in handles {
                        let (parts, dt) = h.join().expect("map task panicked");
                        partitioned.push(parts);
                        task_times.push(dt);
                    }
                });
            }
            ExecMode::Simulate => {
                for split in splits {
                    let (parts, dt) = run_map_task(split);
                    partitioned.push(parts);
                    task_times.push(dt);
                }
            }
        }
        let map_time = t0.elapsed();
        let straggler_skew = skew(&task_times);

        // ---- Shuffle: group per reducer partition ----------------------
        let t1 = Instant::now();
        let mut records_shuffled = 0usize;
        let mut reducer_inputs: Vec<Vec<(J::KMid, Vec<J::VMid>)>> = Vec::with_capacity(p);
        for r in 0..p {
            let mut bucket: Vec<(J::KMid, J::VMid)> = Vec::new();
            for task in &mut partitioned {
                bucket.append(&mut task[r]);
            }
            records_shuffled += bucket.len();
            // Deterministic grouping: stable sort by key keeps map-task
            // emission order within each key.
            bucket.sort_by(|a, b| a.0.cmp(&b.0));
            let mut grouped: Vec<(J::KMid, Vec<J::VMid>)> = Vec::new();
            for (k, v) in bucket {
                match grouped.last_mut() {
                    Some((gk, gv)) if *gk == k => gv.push(v),
                    _ => grouped.push((k, vec![v])),
                }
            }
            reducer_inputs.push(grouped);
        }
        let shuffle_time = t1.elapsed();

        // ---- Reduce phase ----------------------------------------------
        let t2 = Instant::now();
        let reduce_tasks = reducer_inputs.len();
        let mut outputs: Vec<Vec<(J::KOut, J::VOut)>> = Vec::with_capacity(reduce_tasks);
        let mut reduce_task_times = Vec::with_capacity(reduce_tasks);
        let run_reduce_task = |groups: Vec<(J::KMid, Vec<J::VMid>)>| {
            let t = Instant::now();
            let mut em = Emitter::new();
            for (k, vs) in groups {
                job.reduce(&k, vs, &mut em);
            }
            (em.buf, t.elapsed())
        };
        match self.mode {
            ExecMode::Threads => {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = reducer_inputs
                        .into_iter()
                        .map(|groups| scope.spawn(|| run_reduce_task(groups)))
                        .collect();
                    for h in handles {
                        let (buf, dt) = h.join().expect("reduce task panicked");
                        outputs.push(buf);
                        reduce_task_times.push(dt);
                    }
                });
            }
            ExecMode::Simulate => {
                for groups in reducer_inputs {
                    let (buf, dt) = run_reduce_task(groups);
                    outputs.push(buf);
                    reduce_task_times.push(dt);
                }
            }
        }
        let reduce_time = t2.elapsed();

        let out: Vec<(J::KOut, J::VOut)> = outputs.into_iter().flatten().collect();
        let sim_makespan = task_times.iter().max().copied().unwrap_or_default()
            + shuffle_time
            + reduce_task_times.iter().max().copied().unwrap_or_default();
        let stats = JobStats {
            map_tasks,
            reduce_tasks,
            records_in,
            records_shuffled,
            records_out: out.len(),
            map_time,
            shuffle_time,
            reduce_time,
            straggler_skew,
            sim_makespan,
        };
        (out, stats)
    }
}

/// Splits input into at most `p` contiguous chunks of near-equal size.
fn split_input<T>(mut input: Vec<T>, p: usize) -> Vec<Vec<T>> {
    if input.is_empty() {
        return Vec::new();
    }
    let n = input.len();
    let tasks = p.min(n);
    let base = n / tasks;
    let extra = n % tasks;
    let mut out = Vec::with_capacity(tasks);
    // Drain from the back to avoid repeated shifting.
    for i in (0..tasks).rev() {
        let take = base + usize::from(i < extra);
        let rest = input.split_off(input.len() - take);
        out.push(rest);
    }
    out.reverse();
    out
}

/// Hash partitioner (the Hadoop default scheme).
fn partition_of<K: Hash>(k: &K, p: usize) -> usize {
    let mut h = rustc_hash::FxHasher::default();
    k.hash(&mut h);
    (h.finish() % p as u64) as usize
}

fn skew(times: &[Duration]) -> f64 {
    if times.is_empty() {
        return 1.0;
    }
    let total: f64 = times.iter().map(Duration::as_secs_f64).sum();
    let mean = total / times.len() as f64;
    let max = times.iter().map(Duration::as_secs_f64).fold(0.0, f64::max);
    if mean <= f64::EPSILON {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WordCount;
    impl MapReduce for WordCount {
        type KIn = ();
        type VIn = String;
        type KMid = String;
        type VMid = u64;
        type KOut = String;
        type VOut = u64;
        fn map(&self, _: &(), line: &String, out: &mut Emitter<String, u64>) {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
        fn reduce(&self, w: &String, counts: Vec<u64>, out: &mut Emitter<String, u64>) {
            out.emit(w.clone(), counts.into_iter().sum());
        }
    }

    fn lines(ls: &[&str]) -> Vec<((), String)> {
        ls.iter().map(|l| ((), l.to_string())).collect()
    }

    #[test]
    fn word_count_is_correct() {
        let cluster = Cluster::new(3);
        let (mut out, stats) = cluster.run(&WordCount, lines(&["a b c", "a a", "b", ""]));
        out.sort();
        assert_eq!(
            out,
            vec![("a".into(), 3u64), ("b".into(), 2), ("c".into(), 1)]
        );
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.records_shuffled, 6);
        assert_eq!(stats.records_out, 3);
    }

    #[test]
    fn simulated_mode_matches_threads() {
        let input = lines(&["a b c", "a a", "b"]);
        let (mut t_out, _) = Cluster::new(4).run(&WordCount, input.clone());
        let (mut s_out, stats) = Cluster::simulated(4).run(&WordCount, input);
        t_out.sort();
        s_out.sort();
        assert_eq!(t_out, s_out);
        assert!(stats.sim_makespan <= stats.map_time + stats.shuffle_time + stats.reduce_time);
        assert_eq!(Cluster::simulated(4).mode(), ExecMode::Simulate);
    }

    #[test]
    fn result_is_independent_of_worker_count() {
        let input = lines(&["x y", "y z z", "w x y z"]);
        let mut expected = {
            let (mut out, _) = Cluster::new(1).run(&WordCount, input.clone());
            out.sort();
            out
        };
        expected.sort();
        for p in [2, 3, 4, 8, 16] {
            let (mut out, _) = Cluster::new(p).run(&WordCount, input.clone());
            out.sort();
            assert_eq!(out, expected, "p={p}");
        }
    }

    #[test]
    fn all_values_of_a_key_meet_in_one_reducer() {
        struct CollectAll;
        impl MapReduce for CollectAll {
            type KIn = u32;
            type VIn = u32;
            type KMid = u32;
            type VMid = u32;
            type KOut = u32;
            type VOut = usize;
            fn map(&self, k: &u32, v: &u32, out: &mut Emitter<u32, u32>) {
                out.emit(*k % 5, *v);
            }
            fn reduce(&self, k: &u32, vs: Vec<u32>, out: &mut Emitter<u32, usize>) {
                out.emit(*k, vs.len());
            }
        }
        let input: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let (out, _) = Cluster::new(7).run(&CollectAll, input);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&(_, n)| n == 20));
    }

    #[test]
    fn empty_input_runs_clean() {
        let (out, stats) = Cluster::new(4).run(&WordCount, Vec::new());
        assert!(out.is_empty());
        assert_eq!(stats.map_tasks, 0);
        assert_eq!(stats.records_shuffled, 0);
    }

    #[test]
    fn split_input_balances() {
        let chunks = split_input((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(chunks.len(), 4);
        let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let flat: Vec<i32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_fewer_records_than_workers() {
        let chunks = split_input(vec![1, 2], 8);
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for p in 1..10 {
            for k in 0..100u32 {
                let a = partition_of(&k, p);
                let b = partition_of(&k, p);
                assert_eq!(a, b);
                assert!(a < p);
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut total = JobStats::default();
        let (_, s1) = Cluster::new(2).run(&WordCount, lines(&["a b", "c"]));
        let (_, s2) = Cluster::new(2).run(&WordCount, lines(&["a"]));
        total.accumulate(&s1);
        total.accumulate(&s2);
        assert_eq!(total.records_in, 3);
        assert_eq!(
            total.records_shuffled,
            s1.records_shuffled + s2.records_shuffled
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Cluster::new(0);
    }

    #[test]
    fn reducer_sees_deterministic_value_order() {
        // Values for one key arrive map-task-major; with one worker the
        // order equals emission order.
        struct Order;
        impl MapReduce for Order {
            type KIn = ();
            type VIn = Vec<u32>;
            type KMid = ();
            type VMid = u32;
            type KOut = ();
            type VOut = Vec<u32>;
            fn map(&self, _: &(), vs: &Vec<u32>, out: &mut Emitter<(), u32>) {
                for &v in vs {
                    out.emit((), v);
                }
            }
            fn reduce(&self, _: &(), vs: Vec<u32>, out: &mut Emitter<(), Vec<u32>>) {
                out.emit((), vs);
            }
        }
        let (out, _) = Cluster::new(1).run(&Order, vec![((), vec![3, 1, 2])]);
        assert_eq!(out[0].1, vec![3, 1, 2]);
    }
}
