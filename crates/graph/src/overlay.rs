//! The epoch-based delta-overlay graph: `base frozen CSR + DeltaSegment`.
//!
//! The resident server's write path used to rebuild the whole CSR on every
//! accepted batch — O(|G| log |G|) per `INSERT`. An [`OverlayGraph`] makes
//! writes O(batch): the immutable base [`Graph`] is shared behind an `Arc`
//! across versions, and a [`DeltaSegment`] holds what changed since the
//! last compaction —
//!
//! * appended triples, in per-entity **sorted** adjacency (forward,
//!   reverse-by-entity, reverse-by-value) so reads stay merge-iterable;
//! * **tombstones** for deleted base triples (same three orientations);
//! * id-stable extensions of the entity table, the type buckets and the
//!   value/predicate/type interners (new ids continue after the base's,
//!   existing ids never move — which is what keeps a previously computed
//!   `Eq` valid across updates).
//!
//! Reads go through [`GraphView`]; every lookup is `base ⊖ tombstones ⊕
//! delta`. When the delta grows past a threshold (or on demand), a
//! **compaction** merges it into a fresh frozen CSR ([`materialize`]) and
//! bumps the epoch; only that path pays the O(|G|) rebuild.
//!
//! [`materialize`]: OverlayGraph::materialize

use crate::graph::{Graph, GraphBuilder, Triple};
use crate::ids::{EntityId, Obj, PredId, TypeId, ValueId};
use crate::interner::Interner;
use crate::view::{Edges, EntityList, GraphView};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Everything appended to or tombstoned from the base since the last
/// compaction. Cloned per published version (O(delta), bounded by the
/// compaction threshold), never O(|G|).
#[derive(Clone, Default, Debug)]
pub struct DeltaSegment {
    // --- entity-table extension (ids continue after the base) ---
    ent_types_ext: Vec<TypeId>,
    ent_names_ext: Vec<Option<Box<str>>>,
    ent_by_name_ext: FxHashMap<Box<str>, EntityId>,
    // --- interner extensions (local ids 0..; global id = base_len + local) ---
    values_ext: Interner,
    preds_ext: Interner,
    types_ext: Interner,
    // --- appended triples, per-node sorted adjacency ---
    out_add: FxHashMap<EntityId, Vec<(PredId, Obj)>>,
    in_e_add: FxHashMap<EntityId, Vec<(PredId, EntityId)>>,
    in_v_add: FxHashMap<ValueId, Vec<(PredId, EntityId)>>,
    /// Delta entities per type id (base types and new types alike);
    /// pushed in creation order, hence sorted by id.
    by_type_ext: Vec<Vec<EntityId>>,
    // --- tombstones over base triples ---
    out_del: FxHashMap<EntityId, Vec<(PredId, Obj)>>,
    in_e_del: FxHashMap<EntityId, Vec<(PredId, EntityId)>>,
    in_v_del: FxHashMap<ValueId, Vec<(PredId, EntityId)>>,
    /// Live appended triples (kept consistent with `out_add`).
    added: usize,
    /// Tombstoned base triples (kept consistent with `out_del`).
    dead: usize,
}

/// Inserts into a sorted vec, returning false on duplicates.
fn sorted_insert<T: Ord + Copy>(v: &mut Vec<T>, x: T) -> bool {
    match v.binary_search(&x) {
        Ok(_) => false,
        Err(i) => {
            v.insert(i, x);
            true
        }
    }
}

/// Removes from a sorted vec, returning false when absent.
fn sorted_remove<T: Ord + Copy>(v: &mut Vec<T>, x: &T) -> bool {
    match v.binary_search(x) {
        Ok(i) => {
            v.remove(i);
            true
        }
        Err(_) => false,
    }
}

static EMPTY_ENTS: &[EntityId] = &[];

/// A frozen CSR base plus a mutable-before-publish [`DeltaSegment`].
///
/// Cloning shares the base (`Arc`) and deep-copies only the delta, so the
/// snapshot-swap server pattern (`Arc<IndexState>` per version) keeps
/// working: build the next version off to the side in O(batch + delta),
/// publish, and old readers keep their fully consistent view.
#[derive(Clone, Debug)]
pub struct OverlayGraph {
    base: Arc<Graph>,
    delta: DeltaSegment,
    epoch: u64,
}

impl OverlayGraph {
    /// Wraps a frozen graph as epoch-0 overlay with an empty delta.
    pub fn new(base: Graph) -> Self {
        Self::from_arc(Arc::new(base), 0)
    }

    /// Wraps a shared frozen graph at the given epoch.
    pub fn from_arc(base: Arc<Graph>, epoch: u64) -> Self {
        OverlayGraph {
            base,
            delta: DeltaSegment::default(),
            epoch,
        }
    }

    /// The shared frozen base.
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Compaction generation: how many times the delta has been folded
    /// into a fresh base.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Triples in the frozen base (tombstoned ones included).
    pub fn base_triples(&self) -> usize {
        self.base.num_triples()
    }

    /// Live triples appended by the delta.
    pub fn delta_triples(&self) -> usize {
        self.delta.added
    }

    /// Base triples shadowed by tombstones.
    pub fn tombstones(&self) -> usize {
        self.delta.dead
    }

    /// `delta_triples + tombstones` — the quantity compaction thresholds
    /// are compared against.
    pub fn delta_size(&self) -> usize {
        self.delta.added + self.delta.dead
    }

    /// True iff the delta is empty (the view equals the base exactly).
    pub fn is_compact(&self) -> bool {
        self.delta.added == 0
            && self.delta.dead == 0
            && self.delta.ent_types_ext.is_empty()
            && self.delta.values_ext.is_empty()
            && self.delta.preds_ext.is_empty()
            && self.delta.types_ext.is_empty()
    }

    // ---------------------------------------------------------------
    // Write path (called on a private clone before it is published)
    // ---------------------------------------------------------------

    /// Interns a type name (base id if known there, extension otherwise).
    pub fn intern_type(&mut self, ty: &str) -> TypeId {
        match self.base.etype(ty) {
            Some(t) => t,
            None => TypeId(self.base.num_types() as u32 + self.delta.types_ext.intern(ty)),
        }
    }

    /// Interns a predicate name.
    pub fn intern_pred(&mut self, p: &str) -> PredId {
        match self.base.pred(p) {
            Some(p) => p,
            None => PredId(self.base.num_preds() as u32 + self.delta.preds_ext.intern(p)),
        }
    }

    /// Interns a data value.
    pub fn intern_value(&mut self, v: &str) -> ValueId {
        match self.base.value(v) {
            Some(v) => v,
            None => ValueId(self.base.num_values() as u32 + self.delta.values_ext.intern(v)),
        }
    }

    /// Returns the entity named `name`, creating it (in the delta) with
    /// type `ty` if new — the overlay analogue of
    /// [`GraphBuilder::entity`].
    ///
    /// # Panics
    /// Panics if `name` exists with a different type; validate untrusted
    /// input against [`GraphView::entity_named`]/[`GraphView::entity_type`]
    /// first (the server does).
    pub fn entity(&mut self, name: &str, ty: &str) -> EntityId {
        let tid = self.intern_type(ty);
        if let Some(e) = GraphView::entity_named(self, name) {
            assert_eq!(
                GraphView::entity_type(self, e),
                tid,
                "entity {name:?} re-declared with different type {ty:?}"
            );
            return e;
        }
        let e = self.fresh_entity(tid);
        self.delta.ent_names_ext[e.idx() - self.base.num_entities()] = Some(name.into());
        self.delta.ent_by_name_ext.insert(name.into(), e);
        e
    }

    /// Creates an anonymous delta entity of an already-interned type.
    pub fn fresh_entity(&mut self, ty: TypeId) -> EntityId {
        assert!(
            ty.idx() < GraphView::num_types(self),
            "type id {ty:?} was not interned by this overlay"
        );
        let e = EntityId((self.base.num_entities() + self.delta.ent_types_ext.len()) as u32);
        self.delta.ent_types_ext.push(ty);
        self.delta.ent_names_ext.push(None);
        if self.delta.by_type_ext.len() <= ty.idx() {
            self.delta.by_type_ext.resize_with(ty.idx() + 1, Vec::new);
        }
        self.delta.by_type_ext[ty.idx()].push(e);
        e
    }

    /// Adds the triple `(s, p, o)`; returns false when it is already live
    /// (a graph is a *set* of triples). Re-adding a tombstoned base triple
    /// clears the tombstone instead of duplicating the edge.
    pub fn insert_triple(&mut self, s: EntityId, p: PredId, o: Obj) -> bool {
        debug_assert!(s.idx() < GraphView::num_entities(self));
        if self.base_has_raw(s, p, o) {
            // Live in the base unless tombstoned; clearing the tombstone
            // restores it.
            let fwd = (p, o);
            let tomb = self
                .delta
                .out_del
                .get_mut(&s)
                .is_some_and(|v| sorted_remove(v, &fwd));
            if !tomb {
                return false; // duplicate of a live base triple
            }
            match o {
                Obj::Entity(oe) => {
                    let v = self.delta.in_e_del.get_mut(&oe).expect("reverse tombstone");
                    assert!(sorted_remove(v, &(p, s)), "reverse tombstone tracked");
                }
                Obj::Value(ov) => {
                    let v = self.delta.in_v_del.get_mut(&ov).expect("reverse tombstone");
                    assert!(sorted_remove(v, &(p, s)), "reverse tombstone tracked");
                }
            }
            self.delta.dead -= 1;
            return true;
        }
        if !sorted_insert(self.delta.out_add.entry(s).or_default(), (p, o)) {
            return false; // duplicate of a delta triple
        }
        match o {
            Obj::Entity(oe) => {
                sorted_insert(self.delta.in_e_add.entry(oe).or_default(), (p, s));
            }
            Obj::Value(ov) => {
                sorted_insert(self.delta.in_v_add.entry(ov).or_default(), (p, s));
            }
        }
        self.delta.added += 1;
        true
    }

    /// Deletes a live triple; returns false when it is not live. Delta
    /// triples are removed outright; base triples get a tombstone.
    pub fn delete_triple(&mut self, t: Triple) -> bool {
        let Triple { s, p, o } = t;
        // A delta triple: unlink it from the append-side adjacency.
        if self
            .delta
            .out_add
            .get_mut(&s)
            .is_some_and(|v| sorted_remove(v, &(p, o)))
        {
            match o {
                Obj::Entity(oe) => {
                    let v = self.delta.in_e_add.get_mut(&oe).expect("reverse append");
                    assert!(sorted_remove(v, &(p, s)), "reverse append tracked");
                }
                Obj::Value(ov) => {
                    let v = self.delta.in_v_add.get_mut(&ov).expect("reverse append");
                    assert!(sorted_remove(v, &(p, s)), "reverse append tracked");
                }
            }
            self.delta.added -= 1;
            return true;
        }
        // A live base triple: tombstone it (idempotently).
        if !self.base_has_raw(s, p, o) {
            return false;
        }
        if !sorted_insert(self.delta.out_del.entry(s).or_default(), (p, o)) {
            return false; // already tombstoned
        }
        match o {
            Obj::Entity(oe) => {
                sorted_insert(self.delta.in_e_del.entry(oe).or_default(), (p, s));
            }
            Obj::Value(ov) => {
                sorted_insert(self.delta.in_v_del.entry(ov).or_default(), (p, s));
            }
        }
        self.delta.dead += 1;
        true
    }

    /// Raw base membership, ignoring tombstones.
    fn base_has_raw(&self, s: EntityId, p: PredId, o: Obj) -> bool {
        s.idx() < self.base.num_entities() && self.base.has(s, p, o)
    }

    // ---------------------------------------------------------------
    // Compaction
    // ---------------------------------------------------------------

    /// Folds base + delta into a fresh frozen CSR (the O(|G|) path that
    /// rebuild-on-write used to pay per batch). Entity ids are preserved.
    pub fn materialize(&self) -> Graph {
        GraphBuilder::from_view(self).freeze()
    }

    /// This view compacted into a new epoch: fresh base, empty delta.
    /// When the delta is already empty, the base is shared, not rebuilt.
    pub fn compacted(&self) -> OverlayGraph {
        if self.is_compact() {
            return OverlayGraph::from_arc(Arc::clone(&self.base), self.epoch + 1);
        }
        OverlayGraph::from_arc(Arc::new(self.materialize()), self.epoch + 1)
    }

    // ---------------------------------------------------------------
    // Read-path helpers
    // ---------------------------------------------------------------

    fn slices<'a, K: std::hash::Hash + Eq, T>(map: &'a FxHashMap<K, Vec<T>>, k: &K) -> &'a [T] {
        map.get(k).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl GraphView for OverlayGraph {
    fn num_entities(&self) -> usize {
        self.base.num_entities() + self.delta.ent_types_ext.len()
    }

    fn num_values(&self) -> usize {
        self.base.num_values() + self.delta.values_ext.len()
    }

    fn num_preds(&self) -> usize {
        self.base.num_preds() + self.delta.preds_ext.len()
    }

    fn num_types(&self) -> usize {
        self.base.num_types() + self.delta.types_ext.len()
    }

    fn num_triples(&self) -> usize {
        self.base.num_triples() - self.delta.dead + self.delta.added
    }

    fn entity_type(&self, e: EntityId) -> TypeId {
        let nb = self.base.num_entities();
        if e.idx() < nb {
            self.base.entity_type(e)
        } else {
            self.delta.ent_types_ext[e.idx() - nb]
        }
    }

    fn entities_of_type(&self, t: TypeId) -> EntityList<'_> {
        let base = if t.idx() < self.base.num_types() {
            self.base.entities_of_type(t)
        } else {
            EMPTY_ENTS
        };
        let ext = self
            .delta
            .by_type_ext
            .get(t.idx())
            .map(Vec::as_slice)
            .unwrap_or(EMPTY_ENTS);
        EntityList::with_ext(base, ext)
    }

    fn out(&self, s: EntityId) -> Edges<'_, Obj> {
        let base = if s.idx() < self.base.num_entities() {
            self.base.out(s)
        } else {
            &[]
        };
        Edges::merged(
            base,
            Self::slices(&self.delta.out_add, &s),
            Self::slices(&self.delta.out_del, &s),
        )
    }

    fn in_entity(&self, o: EntityId) -> Edges<'_, EntityId> {
        let base = if o.idx() < self.base.num_entities() {
            self.base.in_entity(o)
        } else {
            &[]
        };
        Edges::merged(
            base,
            Self::slices(&self.delta.in_e_add, &o),
            Self::slices(&self.delta.in_e_del, &o),
        )
    }

    fn in_value(&self, o: ValueId) -> Edges<'_, EntityId> {
        let base = if o.idx() < self.base.num_values() {
            self.base.in_value(o)
        } else {
            &[]
        };
        Edges::merged(
            base,
            Self::slices(&self.delta.in_v_add, &o),
            Self::slices(&self.delta.in_v_del, &o),
        )
    }

    fn value_str(&self, v: ValueId) -> &str {
        let nb = self.base.num_values();
        if v.idx() < nb {
            self.base.value_str(v)
        } else {
            self.delta.values_ext.resolve((v.idx() - nb) as u32)
        }
    }

    fn value(&self, s: &str) -> Option<ValueId> {
        self.base.value(s).or_else(|| {
            self.delta
                .values_ext
                .get(s)
                .map(|local| ValueId(self.base.num_values() as u32 + local))
        })
    }

    fn pred_str(&self, p: PredId) -> &str {
        let nb = self.base.num_preds();
        if p.idx() < nb {
            self.base.pred_str(p)
        } else {
            self.delta.preds_ext.resolve((p.idx() - nb) as u32)
        }
    }

    fn pred(&self, s: &str) -> Option<PredId> {
        self.base.pred(s).or_else(|| {
            self.delta
                .preds_ext
                .get(s)
                .map(|local| PredId(self.base.num_preds() as u32 + local))
        })
    }

    fn type_str(&self, t: TypeId) -> &str {
        let nb = self.base.num_types();
        if t.idx() < nb {
            self.base.type_str(t)
        } else {
            self.delta.types_ext.resolve((t.idx() - nb) as u32)
        }
    }

    fn etype(&self, s: &str) -> Option<TypeId> {
        self.base.etype(s).or_else(|| {
            self.delta
                .types_ext
                .get(s)
                .map(|local| TypeId(self.base.num_types() as u32 + local))
        })
    }

    fn entity_named(&self, name: &str) -> Option<EntityId> {
        self.base
            .entity_named(name)
            .or_else(|| self.delta.ent_by_name_ext.get(name).copied())
    }

    fn entity_name(&self, e: EntityId) -> Option<&str> {
        let nb = self.base.num_entities();
        if e.idx() < nb {
            self.base.entity_name(e)
        } else {
            self.delta.ent_names_ext[e.idx() - nb].as_deref()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::parse::parse_graph;
    use crate::view::view_triples;

    fn base() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            "#,
        )
        .unwrap()
    }

    /// The oracle: a from-scratch frozen rebuild of the same triple set.
    fn frozen_equiv(o: &OverlayGraph) -> Graph {
        o.materialize()
    }

    fn assert_view_equals_frozen(o: &OverlayGraph) {
        let f = frozen_equiv(o);
        assert_eq!(GraphView::num_entities(o), f.num_entities());
        assert_eq!(GraphView::num_triples(o), f.num_triples());
        let ot: Vec<_> = view_triples(o).collect();
        let ft: Vec<_> = f.triples().collect();
        // Triple sets agree up to interner-id renaming: compare by strings.
        let label = |v: &dyn Fn(Triple) -> String, ts: &[Triple]| -> Vec<String> {
            let mut out: Vec<String> = ts.iter().map(|&t| v(t)).collect();
            out.sort();
            out
        };
        let of = |t: Triple| -> String {
            format!(
                "{} {} {}",
                GraphView::entity_label(o, t.s),
                GraphView::pred_str(o, t.p),
                GraphView::node_label(o, t.o.node())
            )
        };
        let ff = |t: Triple| -> String {
            format!(
                "{} {} {}",
                f.entity_label(t.s),
                f.pred_str(t.p),
                f.node_label(t.o.node())
            )
        };
        assert_eq!(label(&of, &ot), label(&ff, &ft));
    }

    #[test]
    fn empty_delta_mirrors_base() {
        let o = OverlayGraph::new(base());
        assert!(o.is_compact());
        assert_eq!(GraphView::num_triples(&o), 4);
        let a = GraphView::entity_named(&o, "alb1").unwrap();
        let p = GraphView::pred(&o, "name_of").unwrap();
        assert_eq!(GraphView::out_with(&o, a, p).len(), 1);
        assert_view_equals_frozen(&o);
    }

    #[test]
    fn append_extends_adjacency_and_interners() {
        let mut o = OverlayGraph::new(base());
        let alb2 = o.entity("alb2", "album");
        let p_name = o.intern_pred("name_of");
        let p_year = o.intern_pred("release_year");
        let v_name = o.intern_value("Anthology 2");
        let v_year = o.intern_value("1996");
        assert!(o.insert_triple(alb2, p_name, Obj::Value(v_name)));
        assert!(o.insert_triple(alb2, p_year, Obj::Value(v_year)));
        // New predicate + value through the extension interners.
        let p_new = o.intern_pred("label_of");
        let v_new = o.intern_value("EMI");
        assert!(o.insert_triple(alb2, p_new, Obj::Value(v_new)));
        assert_eq!(o.delta_triples(), 3);
        assert_eq!(GraphView::num_triples(&o), 7);
        assert_eq!(GraphView::pred_str(&o, p_new), "label_of");
        assert_eq!(GraphView::value_str(&o, v_new), "EMI");
        assert_eq!(GraphView::pred(&o, "label_of"), Some(p_new));

        // Reverse-by-value finds both albums under the shared name.
        let ins: Vec<_> = GraphView::in_with(&o, NodeId::value(v_name), p_name)
            .iter()
            .map(|&(_, s)| s)
            .collect();
        assert_eq!(ins.len(), 2);
        // Type bucket includes the delta entity after the base ones.
        let t = GraphView::etype(&o, "album").unwrap();
        let ents: Vec<_> = GraphView::entities_of_type(&o, t).iter().collect();
        assert_eq!(ents.len(), 2);
        assert_eq!(*ents.last().unwrap(), alb2);
        assert_view_equals_frozen(&o);
    }

    #[test]
    fn duplicate_appends_are_rejected() {
        let mut o = OverlayGraph::new(base());
        let a = GraphView::entity_named(&o, "alb1").unwrap();
        let p = GraphView::pred(&o, "name_of").unwrap();
        let v = GraphView::value(&o, "Anthology 2").unwrap();
        assert!(!o.insert_triple(a, p, Obj::Value(v)), "base duplicate");
        let p2 = o.intern_pred("fresh");
        assert!(o.insert_triple(a, p2, Obj::Value(v)));
        assert!(!o.insert_triple(a, p2, Obj::Value(v)), "delta duplicate");
        assert_eq!(o.delta_triples(), 1);
    }

    #[test]
    fn tombstones_shadow_base_triples() {
        let mut o = OverlayGraph::new(base());
        let a = GraphView::entity_named(&o, "alb1").unwrap();
        let r = GraphView::entity_named(&o, "art1").unwrap();
        let p = GraphView::pred(&o, "recorded_by").unwrap();
        assert!(GraphView::has(&o, a, p, Obj::Entity(r)));
        assert!(o.delete_triple(Triple {
            s: a,
            p,
            o: Obj::Entity(r)
        }));
        assert!(!GraphView::has(&o, a, p, Obj::Entity(r)));
        assert_eq!(o.tombstones(), 1);
        assert_eq!(GraphView::num_triples(&o), 3);
        // Forward and reverse views both hide it.
        assert!(GraphView::out_with(&o, a, p).is_empty());
        assert!(GraphView::in_with(&o, NodeId::entity(r), p).is_empty());
        // Idempotent.
        assert!(!o.delete_triple(Triple {
            s: a,
            p,
            o: Obj::Entity(r)
        }));
        assert_eq!(o.tombstones(), 1);
        assert_view_equals_frozen(&o);

        // Re-inserting clears the tombstone instead of duplicating.
        assert!(o.insert_triple(a, p, Obj::Entity(r)));
        assert_eq!(o.tombstones(), 0);
        assert_eq!(o.delta_triples(), 0);
        assert!(GraphView::has(&o, a, p, Obj::Entity(r)));
        assert_view_equals_frozen(&o);
    }

    #[test]
    fn delete_of_delta_triple_removes_it() {
        let mut o = OverlayGraph::new(base());
        let a = GraphView::entity_named(&o, "alb1").unwrap();
        let p = o.intern_pred("note");
        let v = o.intern_value("temp");
        assert!(o.insert_triple(a, p, Obj::Value(v)));
        assert!(o.delete_triple(Triple {
            s: a,
            p,
            o: Obj::Value(v)
        }));
        assert_eq!(o.delta_triples(), 0);
        assert_eq!(o.tombstones(), 0);
        assert!(!GraphView::has(&o, a, p, Obj::Value(v)));
    }

    #[test]
    fn compaction_preserves_ids_and_resets_delta() {
        let mut o = OverlayGraph::new(base());
        let alb2 = o.entity("alb2", "album");
        let p = o.intern_pred("name_of");
        let v = o.intern_value("Anthology 2");
        o.insert_triple(alb2, p, Obj::Value(v));
        let a = GraphView::entity_named(&o, "alb1").unwrap();
        let py = GraphView::pred(&o, "release_year").unwrap();
        let vy = GraphView::value(&o, "1996").unwrap();
        o.delete_triple(Triple {
            s: a,
            p: py,
            o: Obj::Value(vy),
        });

        let c = o.compacted();
        assert_eq!(c.epoch(), 1);
        assert!(c.is_compact());
        assert_eq!(GraphView::num_triples(&c), GraphView::num_triples(&o));
        assert_eq!(GraphView::entity_named(&c, "alb2"), Some(alb2));
        assert_eq!(GraphView::entity_named(&c, "alb1"), Some(a));
        let pn = GraphView::pred(&c, "name_of").unwrap();
        assert_eq!(GraphView::out_with(&c, alb2, pn).len(), 1);
        // The deleted triple is physically gone — with it the only use of
        // its predicate, which compaction (like a filtered rebuild) drops
        // from the interner.
        match GraphView::pred(&c, "release_year") {
            None => {}
            Some(py2) => assert!(GraphView::out_with(&c, a, py2).is_empty()),
        }
        // Compacting a compact overlay shares the base.
        let c2 = c.compacted();
        assert!(Arc::ptr_eq(c2.base(), c.base()));
        assert_eq!(c2.epoch(), 2);
    }

    #[test]
    fn clone_shares_base_and_isolates_delta() {
        let mut o = OverlayGraph::new(base());
        let a = GraphView::entity_named(&o, "alb1").unwrap();
        let p = o.intern_pred("note");
        let v = o.intern_value("v1");
        o.insert_triple(a, p, Obj::Value(v));
        let published = o.clone();
        assert!(Arc::ptr_eq(published.base(), o.base()));
        // Further writes to `o` do not leak into the published clone.
        let v2 = o.intern_value("v2");
        o.insert_triple(a, p, Obj::Value(v2));
        assert_eq!(published.delta_triples(), 1);
        assert_eq!(o.delta_triples(), 2);
    }
}
