//! d-neighborhoods and node scopes.
//!
//! The MapReduce algorithm checks `(G, Σ) |= (e1, e2)` against only the
//! *d-neighbors* `G^d_1 ∪ G^d_2` of the pair, where `d` is the maximum radius
//! of the keys defined on the pair's type — the paper's data-locality
//! property (§4.1). A [`NodeSet`] is such a neighborhood: a set of nodes that
//! restricts which triples a matcher may use.

use crate::ids::{EntityId, NodeId};
use crate::view::GraphView;
use rayon::prelude::*;
use rustc_hash::{FxHashMap, FxHashSet};

/// A set of graph nodes, used as the *scope* of a matching problem.
///
/// Stored sorted for cache-friendly binary-search membership tests; the hot
/// path of the guided matcher calls [`contains`](NodeSet::contains) once per
/// candidate expansion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSet {
    sorted: Box<[NodeId]>,
}

impl NodeSet {
    /// Builds a set from an arbitrary collection of nodes (dedup + sort).
    pub fn from_nodes(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet {
            sorted: nodes.into_boxed_slice(),
        }
    }

    /// The empty scope.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.sorted.binary_search(&n).is_ok()
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Iterates the nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sorted.iter().copied()
    }

    /// Set union, used to form `G^d_1 ∪ G^d_2` for a candidate pair.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        out.extend_from_slice(&self.sorted);
        out.extend_from_slice(&other.sorted);
        NodeSet::from_nodes(out)
    }

    /// Set intersection (used by optimization diagnostics).
    pub fn intersect(&self, other: &NodeSet) -> NodeSet {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let out: Vec<NodeId> = small.iter().filter(|&n| large.contains(n)).collect();
        NodeSet::from_nodes(out)
    }

    /// Retains only nodes satisfying `keep`, returning a new set.
    pub fn filter(&self, mut keep: impl FnMut(NodeId) -> bool) -> NodeSet {
        NodeSet {
            sorted: self.iter().filter(|&n| keep(n)).collect(),
        }
    }

    /// Number of triples of `g` with **both** endpoints inside this set —
    /// the size `|G^d|` of the induced subgraph, reported by the
    /// optimization-effect experiments (§6 Exp-1/Exp-3).
    pub fn induced_triples<V: GraphView>(&self, g: &V) -> usize {
        self.iter()
            .filter_map(NodeId::as_entity)
            .map(|s| {
                g.out(s)
                    .iter()
                    .filter(|&&(_, o)| self.contains(o.node()))
                    .count()
            })
            .sum()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_nodes(iter.into_iter().collect())
    }
}

/// Collects all nodes within `d` hops of `e`, ignoring edge direction —
/// the paper's d-neighbor `G^d` of an entity (§4.1).
///
/// `d = 0` yields just `{e}`.
pub fn d_neighborhood<V: GraphView>(g: &V, e: EntityId, d: usize) -> NodeSet {
    let start = NodeId::entity(e);
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    seen.insert(start);
    let mut frontier = vec![start];
    let mut next = Vec::new();
    for _ in 0..d {
        for &n in &frontier {
            g.for_each_undirected_neighbor(n, |m| {
                if seen.insert(m) {
                    next.push(m);
                }
            });
        }
        if next.is_empty() {
            break;
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    seen.into_iter().collect()
}

/// Computes [`d_neighborhood`] for many entities in parallel (rayon).
///
/// `radius(e)` supplies the per-entity bound: the paper uses the maximum
/// radius of the keys defined on `e`'s type.
pub fn d_neighborhoods<V: GraphView>(
    g: &V,
    entities: &[EntityId],
    radius: impl Fn(EntityId) -> usize + Sync,
) -> Vec<NodeSet> {
    entities
        .par_iter()
        .map(|&e| d_neighborhood(g, e, radius(e)))
        .collect()
}

/// True iff the graph is a forest when edge directions are ignored
/// (no undirected cycles, no parallel edges between two nodes).
///
/// Relevant to Proposition 5 of the paper: on trees, entity matching is in
/// PTIME — though it remains hard to parallelize (Theorem 4 holds even on
/// trees). Callers can use this to pick cheaper settings for tree-shaped
/// data (e.g. skip the VF2 safety caps).
pub fn is_forest<V: GraphView>(g: &V) -> bool {
    // Union-find over packed node ids; any edge joining two already-
    // connected nodes closes a cycle.
    let mut parent: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    fn find(parent: &mut FxHashMap<NodeId, NodeId>, mut x: NodeId) -> NodeId {
        loop {
            let p = *parent.entry(x).or_insert(x);
            if p == x {
                return x;
            }
            let gp = *parent.entry(p).or_insert(p);
            parent.insert(x, gp); // path halving
            x = gp;
        }
    }
    for s in g.entities() {
        for &(_, o) in g.out(s) {
            let a = find(&mut parent, NodeId::entity(s));
            let b = find(&mut parent, o.node());
            if a == b {
                return false;
            }
            parent.insert(a, b);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphBuilder};

    /// A path a -> b -> c -> d$ plus an attribute on b.
    fn path_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let ea = b.entity("a", "t");
        let eb = b.entity("b", "t");
        let ec = b.entity("c", "t");
        let ed = b.entity("d", "t");
        b.link(ea, "p", eb);
        b.link(eb, "p", ec);
        b.link(ec, "p", ed);
        b.attr(eb, "q", "val");
        b.freeze()
    }

    #[test]
    fn zero_hop_is_self() {
        let g = path_graph();
        let a = g.entity_named("a").unwrap();
        let n = d_neighborhood(&g, a, 0);
        assert_eq!(n.len(), 1);
        assert!(n.contains(NodeId::entity(a)));
    }

    #[test]
    fn one_hop_from_middle_is_undirected() {
        let g = path_graph();
        let b = g.entity_named("b").unwrap();
        let n = d_neighborhood(&g, b, 1);
        // b itself, a (incoming), c (outgoing), value "val".
        assert_eq!(n.len(), 4);
        assert!(n.contains(NodeId::entity(g.entity_named("a").unwrap())));
        assert!(n.contains(NodeId::entity(g.entity_named("c").unwrap())));
        assert!(n.contains(NodeId::value(g.value("val").unwrap())));
    }

    #[test]
    fn radius_grows_monotonically() {
        let g = path_graph();
        let a = g.entity_named("a").unwrap();
        let sizes: Vec<usize> = (0..=4).map(|d| d_neighborhood(&g, a, d).len()).collect();
        assert_eq!(sizes, vec![1, 2, 4, 5, 5]);
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn whole_graph_reached_at_diameter() {
        let g = path_graph();
        let a = g.entity_named("a").unwrap();
        let n = d_neighborhood(&g, a, 10);
        assert_eq!(n.len(), g.num_nodes());
    }

    #[test]
    fn induced_triples_counts_only_internal_edges() {
        let g = path_graph();
        let b = g.entity_named("b").unwrap();
        let n = d_neighborhood(&g, b, 1);
        // Edges fully inside {a,b,c,val}: a->b, b->c, b->val ; c->d is cut.
        assert_eq!(n.induced_triples(&g), 3);
        let all = d_neighborhood(&g, b, 10);
        assert_eq!(all.induced_triples(&g), g.num_triples());
    }

    #[test]
    fn union_and_intersection() {
        let g = path_graph();
        let a = g.entity_named("a").unwrap();
        let d = g.entity_named("d").unwrap();
        let na = d_neighborhood(&g, a, 1);
        let nd = d_neighborhood(&g, d, 1);
        let u = na.union(&nd);
        assert_eq!(u.len(), na.len() + nd.len()); // disjoint: {a,b} vs {c,d}
        let i = na.intersect(&nd);
        assert!(i.is_empty());
        let nb = d_neighborhood(&g, g.entity_named("b").unwrap(), 1);
        assert!(!na.intersect(&nb).is_empty());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let g = path_graph();
        let ents: Vec<EntityId> = g.entities().collect();
        let batch = d_neighborhoods(&g, &ents, |_| 2);
        for (i, &e) in ents.iter().enumerate() {
            assert_eq!(batch[i], d_neighborhood(&g, e, 2));
        }
    }

    #[test]
    fn forest_detection() {
        // A path is a forest.
        assert!(is_forest(&path_graph()));
        // A diamond (two subjects sharing a value node) is not.
        let mut b = GraphBuilder::new();
        let x = b.entity("x", "t");
        let y = b.entity("y", "t");
        b.attr(x, "p", "shared");
        b.attr(y, "p", "shared");
        b.link(x, "q", y);
        assert!(!is_forest(&b.freeze()));
        // An empty graph is a forest.
        assert!(is_forest(&GraphBuilder::new().freeze()));
        // A directed 2-cycle is an undirected cycle (parallel edges).
        let mut b2 = GraphBuilder::new();
        let a = b2.entity("a", "t");
        let c = b2.entity("c", "t");
        b2.link(a, "p", c);
        b2.link(c, "p", a);
        assert!(!is_forest(&b2.freeze()));
    }

    #[test]
    fn filter_keeps_subset() {
        let g = path_graph();
        let b = g.entity_named("b").unwrap();
        let n = d_neighborhood(&g, b, 1);
        let only_entities = n.filter(|x| x.is_entity());
        assert_eq!(only_entities.len(), 3);
        assert!(only_entities.iter().all(|x| x.is_entity()));
    }
}
