//! A small text format for graphs, used by examples and test fixtures.
//!
//! One triple per line:
//!
//! ```text
//! # Fragment of the paper's Fig. 2, G1.
//! alb1:album   name_of       "Anthology 2"
//! alb1:album   recorded_by   art1:artist
//! ```
//!
//! * entity tokens are `name:Type`;
//! * value tokens are double-quoted strings (`\"`, `\\`, `\n`, `\t` escapes);
//! * `#` starts a comment; blank lines are ignored.

use crate::graph::{Graph, GraphBuilder};
use std::fmt::Write as _;

/// An error produced while parsing the triple text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// The object position of a parsed triple, before interning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjSpec {
    /// An entity reference `name:Type`.
    Entity {
        /// External entity name.
        name: String,
        /// Type annotation.
        ty: String,
    },
    /// A quoted data value.
    Value(String),
}

/// One triple of the text format, before interning — the unit streamed into
/// a [`GraphBuilder`]. Because [`GraphBuilder::from_graph`] preserves entity
/// ids, feeding specs into a re-opened builder is the stable-id ingest path
/// used by incremental matching and the resolution server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleSpec {
    /// Subject entity name.
    pub subject: String,
    /// Subject type annotation.
    pub subject_type: String,
    /// Predicate label.
    pub pred: String,
    /// Object: entity reference or value.
    pub object: ObjSpec,
}

impl TripleSpec {
    /// Applies this spec to a builder, returning the subject and (for
    /// entity objects) the object ids it touched.
    ///
    /// # Panics
    /// Panics if an entity name is re-declared with a different type — use
    /// [`Graph::entity_named`] plus batch-local bookkeeping to validate
    /// first when the input is untrusted.
    pub fn apply(
        &self,
        b: &mut GraphBuilder,
    ) -> (crate::ids::EntityId, Option<crate::ids::EntityId>) {
        let s = b.entity(&self.subject, &self.subject_type);
        match &self.object {
            ObjSpec::Entity { name, ty } => {
                let o = b.entity(name, ty);
                b.link(s, &self.pred, o);
                (s, Some(o))
            }
            ObjSpec::Value(v) => {
                b.attr(s, &self.pred, v);
                (s, None)
            }
        }
    }

    /// Applies this spec to a delta overlay in O(1) amortized — the
    /// streaming-ingest analogue of [`apply`](Self::apply). Returns the
    /// subject, the entity object (if any), and whether the triple was
    /// actually new (a duplicate of a live triple adds nothing).
    ///
    /// # Panics
    /// Panics on an entity-type clash, like [`apply`](Self::apply).
    pub fn apply_overlay(
        &self,
        g: &mut crate::OverlayGraph,
    ) -> (crate::ids::EntityId, Option<crate::ids::EntityId>, bool) {
        use crate::ids::Obj;
        let s = g.entity(&self.subject, &self.subject_type);
        let p = g.intern_pred(&self.pred);
        match &self.object {
            ObjSpec::Entity { name, ty } => {
                let o = g.entity(name, ty);
                let added = g.insert_triple(s, p, Obj::Entity(o));
                (s, Some(o), added)
            }
            ObjSpec::Value(v) => {
                let vid = g.intern_value(v);
                let added = g.insert_triple(s, p, Obj::Value(vid));
                (s, None, added)
            }
        }
    }
}

/// Parses triple-format text into [`TripleSpec`]s without building a graph.
///
/// Accepts the same syntax as [`parse_graph`] (comments, blank lines,
/// quoted values). This is the parsing half of [`parse_graph`], exposed so
/// that streaming ingest can validate and apply triples against an existing
/// graph instead of a fresh one.
pub fn parse_triple_specs(text: &str) -> Result<Vec<TripleSpec>, ParseError> {
    let mut specs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let toks = tokenize(line, line_no)?;
        if toks.len() != 3 {
            return Err(ParseError {
                line: line_no,
                msg: format!(
                    "expected 3 tokens (subject predicate object), got {}",
                    toks.len()
                ),
            });
        }
        let (subject, subject_type) = match &toks[0] {
            Tok::Entity(name, ty) if !ty.is_empty() => (name.clone(), ty.clone()),
            Tok::Entity(name, _) => {
                return Err(ParseError {
                    line: line_no,
                    msg: format!("subject entity {name:?} is missing its :Type annotation"),
                })
            }
            Tok::Value(_) => {
                return Err(ParseError {
                    line: line_no,
                    msg: "subject must be an entity (name:Type), not a value".into(),
                })
            }
        };
        let pred = match &toks[1] {
            Tok::Entity(name, ty) if ty.is_empty() => name.clone(),
            Tok::Entity(..) => {
                return Err(ParseError {
                    line: line_no,
                    msg: "predicate must be a bare identifier".into(),
                })
            }
            Tok::Value(_) => {
                return Err(ParseError {
                    line: line_no,
                    msg: "predicate cannot be a value".into(),
                })
            }
        };
        let object = match &toks[2] {
            Tok::Entity(name, ty) if !ty.is_empty() => ObjSpec::Entity {
                name: name.clone(),
                ty: ty.clone(),
            },
            Tok::Entity(name, _) => {
                return Err(ParseError {
                    line: line_no,
                    msg: format!("object entity {name:?} is missing its :Type annotation"),
                })
            }
            Tok::Value(v) => ObjSpec::Value(v.clone()),
        };
        specs.push(TripleSpec {
            subject,
            subject_type,
            pred,
            object,
        });
    }
    Ok(specs)
}

/// Parses a graph from the triple text format.
///
/// # Example
/// ```
/// let g = gk_graph::parse_graph(r#"
///     alb1:album  name_of      "Anthology 2"
///     alb1:album  recorded_by  art1:artist
/// "#).unwrap();
/// assert_eq!(g.num_triples(), 2);
/// ```
pub fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut b = GraphBuilder::new();
    for spec in parse_triple_specs(text)? {
        spec.apply(&mut b);
    }
    Ok(b.freeze())
}

/// Serializes a graph back to the triple text format (stable order).
pub fn write_graph(g: &Graph) -> String {
    let mut out = String::new();
    for t in g.triples() {
        let sl = g.entity_label(t.s);
        let st = g.type_str(g.entity_type(t.s));
        let p = g.pred_str(t.p);
        match t.o {
            crate::ids::Obj::Entity(o) => {
                let ol = g.entity_label(o);
                let ot = g.type_str(g.entity_type(o));
                let _ = writeln!(out, "{sl}:{st}\t{p}\t{ol}:{ot}");
            }
            crate::ids::Obj::Value(v) => {
                let _ = writeln!(out, "{sl}:{st}\t{p}\t{}", quote(g.value_str(v)));
            }
        }
    }
    out
}

fn strip_comment(line: &str) -> &str {
    // A '#' inside a quoted value does not start a comment.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// `name:Type` or a bare identifier (empty type).
    Entity(String, String),
    /// A quoted value.
    Value(String),
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == '"' {
            chars.next();
            let mut v = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '"' => {
                        closed = true;
                        break;
                    }
                    '\\' => match chars.next() {
                        Some('"') => v.push('"'),
                        Some('\\') => v.push('\\'),
                        Some('n') => v.push('\n'),
                        Some('t') => v.push('\t'),
                        other => {
                            return Err(ParseError {
                                line: line_no,
                                msg: format!("bad escape sequence \\{other:?}"),
                            })
                        }
                    },
                    _ => v.push(c),
                }
            }
            if !closed {
                return Err(ParseError {
                    line: line_no,
                    msg: "unterminated string".into(),
                });
            }
            toks.push(Tok::Value(v));
        } else {
            let mut word = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                word.push(c);
                chars.next();
            }
            match word.split_once(':') {
                Some((name, ty)) => {
                    if name.is_empty() || ty.is_empty() {
                        return Err(ParseError {
                            line: line_no,
                            msg: format!("malformed entity token {word:?}"),
                        });
                    }
                    toks.push(Tok::Entity(name.to_owned(), ty.to_owned()));
                }
                None => toks.push(Tok::Entity(word, String::new())),
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_g1_fragment() {
        let g = parse_graph(
            r#"
            # G1 of Fig. 2
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb1:album  recorded_by   art1:artist
            art1:artist name_of       "The Beatles"
            "#,
        )
        .unwrap();
        assert_eq!(g.num_entities(), 2);
        assert_eq!(g.num_triples(), 4);
        assert!(g.entity_named("alb1").is_some());
        assert!(g.value("Anthology 2").is_some());
    }

    #[test]
    fn roundtrip_through_writer() {
        let src = r#"
            a:t p b:t
            a:t q "hello \"world\"\n"
        "#;
        let g = parse_graph(src).unwrap();
        let text = write_graph(&g);
        let g2 = parse_graph(&text).unwrap();
        assert_eq!(g2.num_triples(), g.num_triples());
        assert_eq!(g2.num_entities(), g.num_entities());
        assert!(g2.value("hello \"world\"\n").is_some());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_graph("# just a comment\n\n  \n a:t p b:t # trailing\n").unwrap();
        assert_eq!(g.num_triples(), 1);
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let g = parse_graph(r##"a:t p "issue #42""##).unwrap();
        assert!(g.value("issue #42").is_some());
    }

    #[test]
    fn error_on_value_subject() {
        let err = parse_graph(r#""v" p b:t"#).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("subject"));
    }

    #[test]
    fn error_on_wrong_arity() {
        let err = parse_graph("a:t p").unwrap_err();
        assert!(err.msg.contains("3 tokens"));
    }

    #[test]
    fn error_on_untyped_object_entity() {
        let err = parse_graph("a:t p b").unwrap_err();
        assert!(err.msg.contains("missing its :Type"));
    }

    #[test]
    fn error_on_unterminated_string() {
        let err = parse_graph(r#"a:t p "oops"#).unwrap_err();
        assert!(err.msg.contains("unterminated"));
    }

    #[test]
    fn error_display_includes_line() {
        let err = parse_graph("a:t p b:t\nbroken").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("line 2:"));
    }
}
