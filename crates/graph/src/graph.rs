//! The graph itself: a frozen, fully indexed set of triples.
//!
//! A [`Graph`] is built once through a [`GraphBuilder`] and then immutable.
//! Freezing compiles the triples into CSR (compressed sparse row) adjacency
//! arrays — forward edges per entity, reverse edges per entity and per value —
//! plus a type index, so that the matching algorithms of the paper can do all
//! of their *guided expansion* lookups (§4.1) as binary-searched slices.

use crate::ids::{EntityId, NodeId, Obj, PredId, TypeId, ValueId};
use crate::interner::Interner;
use rustc_hash::FxHashMap;

/// A single edge of the graph: subject entity, predicate, object.
///
/// This is the paper's triple `(s, p, o)` with `s ∈ E`, `p ∈ P`,
/// `o ∈ E ∪ D` (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Triple {
    /// Subject entity.
    pub s: EntityId,
    /// Predicate label.
    pub p: PredId,
    /// Object: entity or value.
    pub o: Obj,
}

/// Incrementally assembles a [`Graph`].
///
/// Entities are registered with a type (and optional external name); triples
/// may be added in any order and duplicates are removed on
/// [`freeze`](GraphBuilder::freeze) — a graph is a *set* of triples.
///
/// # Example
/// ```
/// use gk_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// let alb = b.entity("alb1", "album");
/// let art = b.entity("art1", "artist");
/// b.attr(alb, "name_of", "Anthology 2");
/// b.link(alb, "recorded_by", art);
/// let g = b.freeze();
/// assert_eq!(g.num_entities(), 2);
/// assert_eq!(g.num_triples(), 2);
/// ```
#[derive(Default)]
pub struct GraphBuilder {
    values: Interner,
    preds: Interner,
    types: Interner,
    ent_types: Vec<TypeId>,
    ent_names: Vec<Option<Box<str>>>,
    ent_by_name: FxHashMap<Box<str>, EntityId>,
    triples: Vec<Triple>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the entity named `name`, creating it with type `ty` if new.
    ///
    /// # Panics
    /// Panics if `name` already exists with a *different* type: entity names
    /// are unique handles, and a type clash is a bug in the calling code.
    pub fn entity(&mut self, name: &str, ty: &str) -> EntityId {
        let tid = TypeId(self.types.intern(ty));
        if let Some(&e) = self.ent_by_name.get(name) {
            assert_eq!(
                self.ent_types[e.idx()],
                tid,
                "entity {name:?} re-declared with different type {ty:?}"
            );
            return e;
        }
        let e = self.fresh_entity(tid);
        self.ent_names[e.idx()] = Some(name.into());
        self.ent_by_name.insert(name.into(), e);
        e
    }

    /// Creates an anonymous entity of an already-interned type.
    ///
    /// This is the allocation-free path used by the workload generators.
    pub fn fresh_entity(&mut self, ty: TypeId) -> EntityId {
        assert!(
            ty.idx() < self.types.len(),
            "type id {ty:?} was not interned by this builder"
        );
        let e = EntityId(self.ent_types.len() as u32);
        self.ent_types.push(ty);
        self.ent_names.push(None);
        e
    }

    /// Re-opens a frozen graph for extension.
    ///
    /// Entity ids are preserved: entity `i` of the graph is entity `i` of
    /// the builder, and entities added afterwards get fresh, larger ids.
    /// This is what allows equivalence relations computed on the old graph
    /// to be reused after updates (incremental matching).
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_view(g)
    }

    /// Like [`from_graph`](Self::from_graph), but copies only the triples
    /// `keep` accepts. Entities (and their ids and names) are **always**
    /// preserved — dropping a triple never garbage-collects its endpoints —
    /// which is what lets triple deletion keep equivalence relations
    /// id-compatible.
    pub fn from_graph_filtered(g: &Graph, keep: impl FnMut(Triple) -> bool) -> Self {
        Self::from_view_filtered(g, keep)
    }

    /// Re-opens any [`GraphView`](crate::GraphView) — frozen or overlaid —
    /// for extension, preserving entity ids exactly like
    /// [`from_graph`](Self::from_graph). This is the compaction path: an
    /// overlay materializes into a fresh frozen CSR through it.
    pub fn from_view<V: crate::GraphView>(v: &V) -> Self {
        Self::from_view_filtered(v, |_| true)
    }

    /// The shared copy loop behind [`from_graph`](Self::from_graph),
    /// [`from_graph_filtered`](Self::from_graph_filtered) and
    /// [`from_view`](Self::from_view): entity ids (and names) are always
    /// preserved; only triples `keep` accepts are copied.
    fn from_view_filtered<V: crate::GraphView>(
        v: &V,
        mut keep: impl FnMut(Triple) -> bool,
    ) -> Self {
        let mut b = GraphBuilder::new();
        for e in v.entities() {
            let ty = b.intern_type(v.type_str(v.entity_type(e)));
            let fresh = b.fresh_entity(ty);
            debug_assert_eq!(fresh, e);
            if let Some(name) = v.entity_name(e) {
                b.set_entity_name(fresh, name);
            }
        }
        for s in v.entities() {
            for &(p, o) in v.out(s) {
                if !keep(Triple { s, p, o }) {
                    continue;
                }
                let p2 = b.intern_pred(v.pred_str(p));
                match o {
                    Obj::Entity(o) => b.link_ids(s, p2, o),
                    Obj::Value(val) => {
                        let nv = b.intern_value(v.value_str(val));
                        b.attr_ids(s, p2, nv);
                    }
                }
            }
        }
        b
    }

    /// Registers `name` as the external name of the (so far anonymous)
    /// entity `e`. Used with [`fresh_entity`](Self::fresh_entity) when
    /// re-building a graph with stable ids, e.g. to drop triples.
    ///
    /// # Panics
    /// Panics if `e` already has a name or `name` is taken.
    pub fn set_entity_name(&mut self, e: EntityId, name: &str) {
        assert!(
            self.ent_names[e.idx()].is_none(),
            "entity {e:?} already has a name"
        );
        assert!(
            !self.ent_by_name.contains_key(name),
            "entity name {name:?} is already registered"
        );
        self.ent_names[e.idx()] = Some(name.into());
        self.ent_by_name.insert(name.into(), e);
    }

    /// Interns a type name.
    pub fn intern_type(&mut self, ty: &str) -> TypeId {
        TypeId(self.types.intern(ty))
    }

    /// Interns a predicate name.
    pub fn intern_pred(&mut self, p: &str) -> PredId {
        PredId(self.preds.intern(p))
    }

    /// Interns a data value.
    pub fn intern_value(&mut self, v: &str) -> ValueId {
        ValueId(self.values.intern(v))
    }

    /// Adds the triple `(s, p, o)` where the object is an entity.
    pub fn link(&mut self, s: EntityId, p: &str, o: EntityId) {
        let p = self.intern_pred(p);
        self.link_ids(s, p, o);
    }

    /// Adds the triple `(s, p, "value")`.
    pub fn attr(&mut self, s: EntityId, p: &str, value: &str) {
        let p = self.intern_pred(p);
        let v = self.intern_value(value);
        self.attr_ids(s, p, v);
    }

    /// Id-based variant of [`link`](Self::link) for hot generator loops.
    pub fn link_ids(&mut self, s: EntityId, p: PredId, o: EntityId) {
        debug_assert!(s.idx() < self.ent_types.len() && o.idx() < self.ent_types.len());
        self.triples.push(Triple {
            s,
            p,
            o: Obj::Entity(o),
        });
    }

    /// Id-based variant of [`attr`](Self::attr) for hot generator loops.
    pub fn attr_ids(&mut self, s: EntityId, p: PredId, v: ValueId) {
        debug_assert!(s.idx() < self.ent_types.len());
        self.triples.push(Triple {
            s,
            p,
            o: Obj::Value(v),
        });
    }

    /// Number of entities registered so far.
    pub fn num_entities(&self) -> usize {
        self.ent_types.len()
    }

    /// Number of triples added so far (duplicates included until freeze).
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Compiles the builder into an immutable, indexed [`Graph`].
    pub fn freeze(self) -> Graph {
        let GraphBuilder {
            values,
            preds,
            types,
            ent_types,
            ent_names,
            ent_by_name,
            mut triples,
        } = self;
        let ne = ent_types.len();
        let nv = values.len();

        triples.sort_unstable();
        triples.dedup();

        // Forward CSR: out edges per entity, sorted by (p, o) — the sort
        // above already ordered by (s, p, o).
        let mut out_off = vec![0u32; ne + 1];
        for t in &triples {
            out_off[t.s.idx() + 1] += 1;
        }
        for i in 0..ne {
            out_off[i + 1] += out_off[i];
        }
        let out_edg: Vec<(PredId, Obj)> = triples.iter().map(|t| (t.p, t.o)).collect();

        // Reverse CSR for entity objects and value objects, sorted by (p, s)
        // within each object via counting + sort of (o, p, s) triples.
        let mut rev_e: Vec<(EntityId, PredId, EntityId)> = Vec::new();
        let mut rev_v: Vec<(ValueId, PredId, EntityId)> = Vec::new();
        for t in &triples {
            match t.o {
                Obj::Entity(o) => rev_e.push((o, t.p, t.s)),
                Obj::Value(o) => rev_v.push((o, t.p, t.s)),
            }
        }
        rev_e.sort_unstable();
        rev_v.sort_unstable();
        let mut in_e_off = vec![0u32; ne + 1];
        for &(o, _, _) in &rev_e {
            in_e_off[o.idx() + 1] += 1;
        }
        for i in 0..ne {
            in_e_off[i + 1] += in_e_off[i];
        }
        let in_e_edg: Vec<(PredId, EntityId)> = rev_e.iter().map(|&(_, p, s)| (p, s)).collect();
        let mut in_v_off = vec![0u32; nv + 1];
        for &(o, _, _) in &rev_v {
            in_v_off[o.idx() + 1] += 1;
        }
        for i in 0..nv {
            in_v_off[i + 1] += in_v_off[i];
        }
        let in_v_edg: Vec<(PredId, EntityId)> = rev_v.iter().map(|&(_, p, s)| (p, s)).collect();

        let mut by_type: Vec<Vec<EntityId>> = vec![Vec::new(); types.len()];
        for (i, &t) in ent_types.iter().enumerate() {
            by_type[t.idx()].push(EntityId(i as u32));
        }

        Graph {
            ent_types,
            ent_names,
            ent_by_name,
            num_triples: triples.len(),
            out_off,
            out_edg,
            in_e_off,
            in_e_edg,
            in_v_off,
            in_v_edg,
            by_type,
            values,
            preds,
            types,
        }
    }
}

/// An immutable, fully indexed graph of triples (the paper's `G`, §2.1).
///
/// Provides the lookups the matching algorithms need:
/// * forward edges `out(s)` / `out_with(s, p)`;
/// * reverse edges `in_node(o)` / `in_with(o, p)` for entities *and* values;
/// * triple membership `has(s, p, o)`;
/// * the type index `entities_of_type(τ)`.
pub struct Graph {
    ent_types: Vec<TypeId>,
    ent_names: Vec<Option<Box<str>>>,
    ent_by_name: FxHashMap<Box<str>, EntityId>,
    num_triples: usize,
    out_off: Vec<u32>,
    out_edg: Vec<(PredId, Obj)>,
    in_e_off: Vec<u32>,
    in_e_edg: Vec<(PredId, EntityId)>,
    in_v_off: Vec<u32>,
    in_v_edg: Vec<(PredId, EntityId)>,
    by_type: Vec<Vec<EntityId>>,
    values: Interner,
    preds: Interner,
    types: Interner,
}

impl Graph {
    /// Number of entity nodes.
    pub fn num_entities(&self) -> usize {
        self.ent_types.len()
    }

    /// Number of distinct value nodes.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of nodes (entities + values), the paper's `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.num_entities() + self.num_values()
    }

    /// Number of triples, the paper's `|G|`.
    pub fn num_triples(&self) -> usize {
        self.num_triples
    }

    /// Number of distinct predicates.
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// Number of distinct entity types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// The type of entity `e`.
    #[inline]
    pub fn entity_type(&self, e: EntityId) -> TypeId {
        self.ent_types[e.idx()]
    }

    /// All entities of type `t`, in ascending id order.
    pub fn entities_of_type(&self, t: TypeId) -> &[EntityId] {
        &self.by_type[t.idx()]
    }

    /// Iterates over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.ent_types.len() as u32).map(EntityId)
    }

    /// Forward edges of `s`, sorted by `(p, o)`.
    #[inline]
    pub fn out(&self, s: EntityId) -> &[(PredId, Obj)] {
        let lo = self.out_off[s.idx()] as usize;
        let hi = self.out_off[s.idx() + 1] as usize;
        &self.out_edg[lo..hi]
    }

    /// Forward edges of `s` labeled `p` (a contiguous sorted subslice).
    pub fn out_with(&self, s: EntityId, p: PredId) -> &[(PredId, Obj)] {
        let all = self.out(s);
        let lo = all.partition_point(|&(q, _)| q < p);
        let hi = all.partition_point(|&(q, _)| q <= p);
        &all[lo..hi]
    }

    /// Reverse edges into entity `o`, sorted by `(p, s)`.
    #[inline]
    pub fn in_entity(&self, o: EntityId) -> &[(PredId, EntityId)] {
        let lo = self.in_e_off[o.idx()] as usize;
        let hi = self.in_e_off[o.idx() + 1] as usize;
        &self.in_e_edg[lo..hi]
    }

    /// Reverse edges into value `o`, sorted by `(p, s)`.
    #[inline]
    pub fn in_value(&self, o: ValueId) -> &[(PredId, EntityId)] {
        let lo = self.in_v_off[o.idx()] as usize;
        let hi = self.in_v_off[o.idx() + 1] as usize;
        &self.in_v_edg[lo..hi]
    }

    /// Reverse edges into any node.
    pub fn in_node(&self, n: NodeId) -> &[(PredId, EntityId)] {
        match n.as_entity() {
            Some(e) => self.in_entity(e),
            None => self.in_value(n.as_value().expect("value node")),
        }
    }

    /// Reverse edges into node `o` labeled `p`.
    pub fn in_with(&self, o: NodeId, p: PredId) -> &[(PredId, EntityId)] {
        let all = self.in_node(o);
        let lo = all.partition_point(|&(q, _)| q < p);
        let hi = all.partition_point(|&(q, _)| q <= p);
        &all[lo..hi]
    }

    /// True iff the triple `(s, p, o)` is in the graph.
    pub fn has(&self, s: EntityId, p: PredId, o: Obj) -> bool {
        self.out(s).binary_search(&(p, o)).is_ok()
    }

    /// Total degree (in + out) of entity `e`.
    pub fn degree(&self, e: EntityId) -> usize {
        self.out(e).len() + self.in_entity(e).len()
    }

    /// Calls `f` for every undirected neighbor of `n` (edge direction
    /// ignored, as in the paper's d-neighborhood definition §4.1).
    pub fn for_each_undirected_neighbor(&self, n: NodeId, mut f: impl FnMut(NodeId)) {
        if let Some(e) = n.as_entity() {
            for &(_, o) in self.out(e) {
                f(o.node());
            }
            for &(_, s) in self.in_entity(e) {
                f(NodeId::entity(s));
            }
        } else {
            for &(_, s) in self.in_node(n) {
                f(NodeId::entity(s));
            }
        }
    }

    /// Resolves a value id to its string.
    pub fn value_str(&self, v: ValueId) -> &str {
        self.values.resolve(v.0)
    }

    /// Looks up a value by string, if present in the graph.
    pub fn value(&self, s: &str) -> Option<ValueId> {
        self.values.get(s).map(ValueId)
    }

    /// Resolves a predicate id to its name.
    pub fn pred_str(&self, p: PredId) -> &str {
        self.preds.resolve(p.0)
    }

    /// Looks up a predicate by name, if present.
    pub fn pred(&self, s: &str) -> Option<PredId> {
        self.preds.get(s).map(PredId)
    }

    /// Resolves a type id to its name.
    pub fn type_str(&self, t: TypeId) -> &str {
        self.types.resolve(t.0)
    }

    /// Looks up a type by name, if present.
    pub fn etype(&self, s: &str) -> Option<TypeId> {
        self.types.get(s).map(TypeId)
    }

    /// Looks up an entity by its external name.
    pub fn entity_named(&self, name: &str) -> Option<EntityId> {
        self.ent_by_name.get(name).copied()
    }

    /// The registered external name of `e`, if any.
    pub fn entity_name(&self, e: EntityId) -> Option<&str> {
        self.ent_names[e.idx()].as_deref()
    }

    /// Human-readable label for entity `e`: its registered name, or `e<id>`.
    pub fn entity_label(&self, e: EntityId) -> String {
        match &self.ent_names[e.idx()] {
            Some(n) => n.to_string(),
            None => format!("e{}", e.0),
        }
    }

    /// Human-readable label for any node.
    pub fn node_label(&self, n: NodeId) -> String {
        match n.as_entity() {
            Some(e) => self.entity_label(e),
            None => format!("{:?}", self.value_str(n.as_value().expect("value node"))),
        }
    }

    /// Iterates over all triples in `(s, p, o)` order.
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.entities()
            .flat_map(move |s| self.out(s).iter().map(move |&(p, o)| Triple { s, p, o }))
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("entities", &self.num_entities())
            .field("values", &self.num_values())
            .field("triples", &self.num_triples())
            .field("types", &self.num_types())
            .field("preds", &self.num_preds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.entity("alb1", "album");
        let r = b.entity("art1", "artist");
        b.attr(a, "name_of", "Anthology 2");
        b.attr(a, "release_year", "1996");
        b.link(a, "recorded_by", r);
        b.attr(r, "name_of", "The Beatles");
        b.freeze()
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.num_entities(), 2);
        assert_eq!(g.num_values(), 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_triples(), 4);
        assert_eq!(g.num_types(), 2);
        assert_eq!(g.num_preds(), 3);
    }

    #[test]
    fn duplicate_triples_are_removed() {
        let mut b = GraphBuilder::new();
        let a = b.entity("a", "t");
        let c = b.entity("c", "t");
        b.link(a, "p", c);
        b.link(a, "p", c);
        b.attr(a, "q", "v");
        b.attr(a, "q", "v");
        let g = b.freeze();
        assert_eq!(g.num_triples(), 2);
    }

    #[test]
    fn entity_reuse_by_name() {
        let mut b = GraphBuilder::new();
        let a1 = b.entity("x", "t");
        let a2 = b.entity("x", "t");
        assert_eq!(a1, a2);
        assert_eq!(b.num_entities(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn entity_type_clash_panics() {
        let mut b = GraphBuilder::new();
        b.entity("x", "t1");
        b.entity("x", "t2");
    }

    #[test]
    fn reopen_preserves_ids_and_extends() {
        let g = tiny();
        let alb = g.entity_named("alb1").unwrap();
        let mut b = GraphBuilder::from_graph(&g);
        // Existing entities keep their ids and names.
        assert_eq!(b.num_entities(), g.num_entities());
        let new_art = b.entity("art2", "artist");
        b.link(alb, "recorded_by", new_art);
        let g2 = b.freeze();
        assert_eq!(g2.entity_named("alb1"), Some(alb));
        assert_eq!(g2.num_entities(), g.num_entities() + 1);
        assert_eq!(g2.num_triples(), g.num_triples() + 1);
        // Old triples survive.
        let p = g2.pred("name_of").unwrap();
        assert!(g2
            .out_with(alb, p)
            .iter()
            .any(|&(_, o)| o.as_value().map(|v| g2.value_str(v)) == Some("Anthology 2")));
    }

    #[test]
    fn forward_lookup() {
        let g = tiny();
        let a = g.entity_named("alb1").unwrap();
        let p = g.pred("name_of").unwrap();
        let hits = g.out_with(a, p);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].1.as_value().map(|v| g.value_str(v)),
            Some("Anthology 2")
        );
        assert_eq!(g.out(a).len(), 3);
    }

    #[test]
    fn reverse_lookup_entity() {
        let g = tiny();
        let r = g.entity_named("art1").unwrap();
        let p = g.pred("recorded_by").unwrap();
        let ins = g.in_with(NodeId::entity(r), p);
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].1, g.entity_named("alb1").unwrap());
    }

    #[test]
    fn reverse_lookup_value() {
        let g = tiny();
        let v = g.value("name_of").map(|_| ()).is_none();
        assert!(v, "predicate names are not values");
        let beatles = g.value("The Beatles").unwrap();
        let p = g.pred("name_of").unwrap();
        let ins = g.in_with(NodeId::value(beatles), p);
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].1, g.entity_named("art1").unwrap());
    }

    #[test]
    fn has_triple() {
        let g = tiny();
        let a = g.entity_named("alb1").unwrap();
        let r = g.entity_named("art1").unwrap();
        let p = g.pred("recorded_by").unwrap();
        assert!(g.has(a, p, Obj::Entity(r)));
        assert!(!g.has(r, p, Obj::Entity(a)));
    }

    #[test]
    fn type_index() {
        let g = tiny();
        let t = g.etype("album").unwrap();
        assert_eq!(g.entities_of_type(t), &[g.entity_named("alb1").unwrap()]);
    }

    #[test]
    fn undirected_neighbors_cover_both_directions() {
        let g = tiny();
        let a = g.entity_named("alb1").unwrap();
        let mut n = Vec::new();
        g.for_each_undirected_neighbor(NodeId::entity(a), |x| n.push(x));
        assert_eq!(n.len(), 3); // two values + artist
        let r = g.entity_named("art1").unwrap();
        let mut n2 = Vec::new();
        g.for_each_undirected_neighbor(NodeId::entity(r), |x| n2.push(x));
        assert_eq!(n2.len(), 2); // its name value + incoming from album
    }

    #[test]
    fn triples_iterator_matches_count() {
        let g = tiny();
        assert_eq!(g.triples().count(), g.num_triples());
    }

    #[test]
    fn labels() {
        let g = tiny();
        let a = g.entity_named("alb1").unwrap();
        assert_eq!(g.entity_label(a), "alb1");
        let v = g.value("1996").unwrap();
        assert_eq!(g.node_label(NodeId::value(v)), "\"1996\"");
    }
}
