//! Deterministic entity sharding for the partitioned parallel algorithms.
//!
//! The multi-threaded chase partitions work by *entity*: every candidate
//! pair is owned by the shard of its smaller endpoint, so all pairs
//! anchored at one entity are evaluated by the same worker (and hit the
//! same adjacency cache lines). The assignment is a hash, not a range
//! split: entity ids are allocated in insertion order, which correlates
//! with type and therefore with key workload — range splits would put all
//! heavy pairs on one worker.

use crate::ids::EntityId;

/// The shard (in `0..shards`) owning entity `e`. Deterministic across runs
/// and processes: a splitmix64 finalizer over the raw id.
///
/// # Panics
/// Panics if `shards == 0`.
#[inline]
pub fn entity_shard(e: EntityId, shards: usize) -> usize {
    assert!(shards > 0, "shards must be positive");
    let mut z = (e.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for i in 0..100u32 {
                let s = entity_shard(EntityId(i), shards);
                assert!(s < shards);
                assert_eq!(s, entity_shard(EntityId(i), shards));
            }
        }
    }

    #[test]
    fn hash_sharding_is_roughly_balanced() {
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0usize; shards];
            for i in 0..4096u32 {
                counts[entity_shard(EntityId(i), shards)] += 1;
            }
            let ideal = 4096 / shards;
            for c in counts {
                // Within 25% of ideal is plenty for work balancing.
                assert!(
                    c > ideal * 3 / 4 && c < ideal * 5 / 4,
                    "shard size {c} far from ideal {ideal} at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        for i in 0..50u32 {
            assert_eq!(entity_shard(EntityId(i), 1), 0);
        }
    }
}
