//! The read abstraction every matcher and chase engine consumes.
//!
//! [`GraphView`] is the uniform lens over the two physical graph layouts:
//! the frozen CSR [`Graph`](crate::Graph) and the epoch-based
//! [`OverlayGraph`](crate::OverlayGraph) (`base CSR + delta segment +
//! tombstones`). Adjacency is served as [`Edges`] — a three-way sorted
//! merge of a base CSR slice, a delta slice and a tombstone slice — so
//! readers keep the sorted-order guarantees the guided matcher's
//! merge-intersections rely on, while writers append in O(batch) instead
//! of rebuilding the CSR in O(|G|).

use crate::graph::Graph;
use crate::ids::{EntityId, NodeId, Obj, PredId, TypeId, ValueId};

/// Sorted adjacency of one node under a view: `base − dead + delta`.
///
/// Invariants (maintained by the overlay writer):
/// * all three slices are sorted by `(PredId, T)`;
/// * `dead ⊆ base` (tombstones only shadow base edges);
/// * `delta ∩ base = ∅` (re-inserting a base edge un-tombstones it
///   instead of duplicating it).
///
/// Iteration therefore yields every live edge exactly once, in sorted
/// order — byte-compatible with iterating a frozen CSR slice.
#[derive(Clone, Copy, Debug)]
pub struct Edges<'a, T> {
    base: &'a [(PredId, T)],
    delta: &'a [(PredId, T)],
    dead: &'a [(PredId, T)],
}

impl<'a, T: Copy + Ord> Edges<'a, T> {
    /// A view of a plain CSR slice (no delta, no tombstones).
    #[inline]
    pub fn frozen(base: &'a [(PredId, T)]) -> Self {
        Edges {
            base,
            delta: &[],
            dead: &[],
        }
    }

    /// A merged view over base, delta and tombstone slices.
    #[inline]
    pub fn merged(
        base: &'a [(PredId, T)],
        delta: &'a [(PredId, T)],
        dead: &'a [(PredId, T)],
    ) -> Self {
        debug_assert!(base.is_sorted() && delta.is_sorted() && dead.is_sorted());
        Edges { base, delta, dead }
    }

    /// Number of live edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.base.len() - self.dead.len() + self.delta.len()
    }

    /// True iff no live edge remains.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the live edges in `(p, t)` order.
    #[inline]
    pub fn iter(&self) -> EdgeIter<'a, T> {
        EdgeIter {
            base: self.base.iter(),
            delta: self.delta.iter().peekable(),
            dead: self.dead.iter().peekable(),
            pending: None,
        }
    }

    /// Membership test (binary search on both layers).
    pub fn contains(&self, e: &(PredId, T)) -> bool {
        (self.base.binary_search(e).is_ok() && self.dead.binary_search(e).is_err())
            || self.delta.binary_search(e).is_ok()
    }

    /// Restricts to the edges labeled `p` (each layer is contiguous).
    pub fn with_pred(&self, p: PredId) -> Edges<'a, T> {
        fn range<T>(all: &[(PredId, T)], p: PredId) -> &[(PredId, T)] {
            let lo = all.partition_point(|&(q, _)| q < p);
            let hi = all.partition_point(|&(q, _)| q <= p);
            &all[lo..hi]
        }
        Edges {
            base: range(self.base, p),
            delta: range(self.delta, p),
            dead: range(self.dead, p),
        }
    }
}

impl<'a, T: Copy + Ord> IntoIterator for Edges<'a, T> {
    type Item = &'a (PredId, T);
    type IntoIter = EdgeIter<'a, T>;

    fn into_iter(self) -> EdgeIter<'a, T> {
        self.iter()
    }
}

impl<'a, T: Copy + Ord> IntoIterator for &Edges<'a, T> {
    type Item = &'a (PredId, T);
    type IntoIter = EdgeIter<'a, T>;

    fn into_iter(self) -> EdgeIter<'a, T> {
        self.iter()
    }
}

/// Iterator over [`Edges`]: merges base (minus tombstones) with delta.
pub struct EdgeIter<'a, T> {
    base: std::slice::Iter<'a, (PredId, T)>,
    delta: std::iter::Peekable<std::slice::Iter<'a, (PredId, T)>>,
    dead: std::iter::Peekable<std::slice::Iter<'a, (PredId, T)>>,
    /// A live base edge fetched but not yet emitted (lost a merge race).
    pending: Option<&'a (PredId, T)>,
}

impl<'a, T: Copy + Ord> EdgeIter<'a, T> {
    /// Next base edge that is not tombstoned.
    fn next_live_base(&mut self) -> Option<&'a (PredId, T)> {
        if let Some(b) = self.pending.take() {
            return Some(b);
        }
        'outer: for b in self.base.by_ref() {
            // `dead ⊆ base` and both are sorted: advance the tombstone
            // cursor past everything smaller, drop `b` on an exact hit.
            while let Some(&&d) = self.dead.peek() {
                match d.cmp(b) {
                    std::cmp::Ordering::Less => {
                        self.dead.next();
                    }
                    std::cmp::Ordering::Equal => {
                        self.dead.next();
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            return Some(b);
        }
        None
    }
}

impl<'a, T: Copy + Ord> Iterator for EdgeIter<'a, T> {
    type Item = &'a (PredId, T);

    fn next(&mut self) -> Option<&'a (PredId, T)> {
        match (self.next_live_base(), self.delta.peek().copied()) {
            (Some(b), Some(d)) => {
                if *b <= *d {
                    Some(b)
                } else {
                    self.pending = Some(b);
                    self.delta.next()
                }
            }
            (Some(b), None) => Some(b),
            (None, _) => self.delta.next(),
        }
    }
}

/// The entities of one type under a view: the base CSR's sorted run plus
/// the (strictly larger-id) entities appended by the delta.
#[derive(Clone, Copy, Debug, Default)]
pub struct EntityList<'a> {
    base: &'a [EntityId],
    ext: &'a [EntityId],
}

impl<'a> EntityList<'a> {
    /// A list over a frozen slice.
    #[inline]
    pub fn frozen(base: &'a [EntityId]) -> Self {
        EntityList { base, ext: &[] }
    }

    /// A list over a base slice plus a delta extension (all ext ids are
    /// larger than every base id, so concatenation stays sorted).
    #[inline]
    pub fn with_ext(base: &'a [EntityId], ext: &'a [EntityId]) -> Self {
        EntityList { base, ext }
    }

    /// Number of entities.
    #[inline]
    pub fn len(&self) -> usize {
        self.base.len() + self.ext.len()
    }

    /// True iff the type has no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th entity in ascending id order.
    #[inline]
    pub fn get(&self, i: usize) -> EntityId {
        if i < self.base.len() {
            self.base[i]
        } else {
            self.ext[i - self.base.len()]
        }
    }

    /// Iterates in ascending id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + 'a {
        self.base.iter().chain(self.ext.iter()).copied()
    }
}

impl<'a> IntoIterator for EntityList<'a> {
    type Item = EntityId;
    type IntoIter = std::iter::Copied<
        std::iter::Chain<std::slice::Iter<'a, EntityId>, std::slice::Iter<'a, EntityId>>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.base.iter().chain(self.ext.iter()).copied()
    }
}

/// Read access to a graph — frozen or overlaid.
///
/// Every matcher, chase engine and query path is generic over this trait,
/// so the resident server can serve reads from `base + delta` without
/// rebuilding the CSR on each write. Implementations must present the
/// *same* logical graph semantics as a frozen [`Graph`]:
/// sorted adjacency, set-of-triples (no duplicates), stable entity ids.
pub trait GraphView: Sync {
    /// Number of entity nodes.
    fn num_entities(&self) -> usize;
    /// Number of distinct value nodes.
    fn num_values(&self) -> usize;
    /// Number of distinct predicates.
    fn num_preds(&self) -> usize;
    /// Number of distinct entity types.
    fn num_types(&self) -> usize;
    /// Number of live triples, the paper's `|G|`.
    fn num_triples(&self) -> usize;

    /// Number of nodes (entities + values), the paper's `|V|`.
    fn num_nodes(&self) -> usize {
        self.num_entities() + self.num_values()
    }

    /// The type of entity `e`.
    fn entity_type(&self, e: EntityId) -> TypeId;

    /// All entities of type `t`, in ascending id order.
    fn entities_of_type(&self, t: TypeId) -> EntityList<'_>;

    /// Iterates over all entity ids.
    fn entities(&self) -> EntityIdIter {
        EntityIdIter(0..self.num_entities() as u32)
    }

    /// Forward edges of `s`, sorted by `(p, o)`.
    fn out(&self, s: EntityId) -> Edges<'_, Obj>;

    /// Forward edges of `s` labeled `p`.
    fn out_with(&self, s: EntityId, p: PredId) -> Edges<'_, Obj> {
        self.out(s).with_pred(p)
    }

    /// Reverse edges into entity `o`, sorted by `(p, s)`.
    fn in_entity(&self, o: EntityId) -> Edges<'_, EntityId>;

    /// Reverse edges into value `o`, sorted by `(p, s)`.
    fn in_value(&self, o: ValueId) -> Edges<'_, EntityId>;

    /// Reverse edges into any node.
    fn in_node(&self, n: NodeId) -> Edges<'_, EntityId> {
        match n.as_entity() {
            Some(e) => self.in_entity(e),
            None => self.in_value(n.as_value().expect("value node")),
        }
    }

    /// Reverse edges into node `o` labeled `p`.
    fn in_with(&self, o: NodeId, p: PredId) -> Edges<'_, EntityId> {
        self.in_node(o).with_pred(p)
    }

    /// True iff the triple `(s, p, o)` is live in the view.
    fn has(&self, s: EntityId, p: PredId, o: Obj) -> bool {
        self.out(s).contains(&(p, o))
    }

    /// Total degree (in + out) of entity `e`.
    fn degree(&self, e: EntityId) -> usize {
        self.out(e).len() + self.in_entity(e).len()
    }

    /// Calls `f` for every undirected neighbor of `n` (§4.1).
    fn for_each_undirected_neighbor(&self, n: NodeId, mut f: impl FnMut(NodeId))
    where
        Self: Sized,
    {
        if let Some(e) = n.as_entity() {
            for &(_, o) in self.out(e) {
                f(o.node());
            }
            for &(_, s) in self.in_entity(e) {
                f(NodeId::entity(s));
            }
        } else {
            for &(_, s) in self.in_node(n) {
                f(NodeId::entity(s));
            }
        }
    }

    /// Resolves a value id to its string.
    fn value_str(&self, v: ValueId) -> &str;
    /// Looks up a value by string, if present.
    fn value(&self, s: &str) -> Option<ValueId>;
    /// Resolves a predicate id to its name.
    fn pred_str(&self, p: PredId) -> &str;
    /// Looks up a predicate by name, if present.
    fn pred(&self, s: &str) -> Option<PredId>;
    /// Resolves a type id to its name.
    fn type_str(&self, t: TypeId) -> &str;
    /// Looks up a type by name, if present.
    fn etype(&self, s: &str) -> Option<TypeId>;
    /// Looks up an entity by its external name.
    fn entity_named(&self, name: &str) -> Option<EntityId>;
    /// The registered external name of `e`, if any.
    fn entity_name(&self, e: EntityId) -> Option<&str>;

    /// Human-readable label for entity `e`: its name, or `e<id>`.
    fn entity_label(&self, e: EntityId) -> String {
        match self.entity_name(e) {
            Some(n) => n.to_string(),
            None => format!("e{}", e.0),
        }
    }

    /// Human-readable label for any node.
    fn node_label(&self, n: NodeId) -> String {
        match n.as_entity() {
            Some(e) => self.entity_label(e),
            None => format!("{:?}", self.value_str(n.as_value().expect("value node"))),
        }
    }
}

/// Iterator over all entity ids of a view.
pub struct EntityIdIter(std::ops::Range<u32>);

impl Iterator for EntityIdIter {
    type Item = EntityId;

    fn next(&mut self) -> Option<EntityId> {
        self.0.next().map(EntityId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for EntityIdIter {}

impl GraphView for Graph {
    fn num_entities(&self) -> usize {
        Graph::num_entities(self)
    }

    fn num_values(&self) -> usize {
        Graph::num_values(self)
    }

    fn num_preds(&self) -> usize {
        Graph::num_preds(self)
    }

    fn num_types(&self) -> usize {
        Graph::num_types(self)
    }

    fn num_triples(&self) -> usize {
        Graph::num_triples(self)
    }

    fn entity_type(&self, e: EntityId) -> TypeId {
        Graph::entity_type(self, e)
    }

    fn entities_of_type(&self, t: TypeId) -> EntityList<'_> {
        EntityList::frozen(Graph::entities_of_type(self, t))
    }

    fn out(&self, s: EntityId) -> Edges<'_, Obj> {
        Edges::frozen(Graph::out(self, s))
    }

    fn out_with(&self, s: EntityId, p: PredId) -> Edges<'_, Obj> {
        Edges::frozen(Graph::out_with(self, s, p))
    }

    fn in_entity(&self, o: EntityId) -> Edges<'_, EntityId> {
        Edges::frozen(Graph::in_entity(self, o))
    }

    fn in_value(&self, o: ValueId) -> Edges<'_, EntityId> {
        Edges::frozen(Graph::in_value(self, o))
    }

    fn in_with(&self, o: NodeId, p: PredId) -> Edges<'_, EntityId> {
        Edges::frozen(Graph::in_with(self, o, p))
    }

    fn has(&self, s: EntityId, p: PredId, o: Obj) -> bool {
        Graph::has(self, s, p, o)
    }

    fn value_str(&self, v: ValueId) -> &str {
        Graph::value_str(self, v)
    }

    fn value(&self, s: &str) -> Option<ValueId> {
        Graph::value(self, s)
    }

    fn pred_str(&self, p: PredId) -> &str {
        Graph::pred_str(self, p)
    }

    fn pred(&self, s: &str) -> Option<PredId> {
        Graph::pred(self, s)
    }

    fn type_str(&self, t: TypeId) -> &str {
        Graph::type_str(self, t)
    }

    fn etype(&self, s: &str) -> Option<TypeId> {
        Graph::etype(self, s)
    }

    fn entity_named(&self, name: &str) -> Option<EntityId> {
        Graph::entity_named(self, name)
    }

    fn entity_name(&self, e: EntityId) -> Option<&str> {
        Graph::entity_name(self, e)
    }
}

/// Iterates all live triples of a view in `(s, p, o)` order.
pub fn view_triples<V: GraphView>(v: &V) -> impl Iterator<Item = crate::Triple> + '_ {
    v.entities().flat_map(move |s| {
        v.out(s)
            .iter()
            .map(move |&(p, o)| crate::Triple { s, p, o })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(p: u32, o: u32) -> (PredId, EntityId) {
        (PredId(p), EntityId(o))
    }

    #[test]
    fn merge_iterates_sorted_union_minus_dead() {
        let base = [pe(0, 1), pe(0, 3), pe(1, 0), pe(2, 5)];
        let delta = [pe(0, 2), pe(1, 9), pe(3, 0)];
        let dead = [pe(0, 3), pe(2, 5)];
        let e = Edges::merged(&base, &delta, &dead);
        let got: Vec<_> = e.iter().copied().collect();
        assert_eq!(got, vec![pe(0, 1), pe(0, 2), pe(1, 0), pe(1, 9), pe(3, 0)]);
        assert_eq!(e.len(), got.len());
        assert!(e.contains(&pe(0, 2)));
        assert!(e.contains(&pe(0, 1)));
        assert!(!e.contains(&pe(0, 3)), "tombstoned");
        assert!(!e.contains(&pe(2, 5)), "tombstoned");
        assert!(!e.contains(&pe(7, 7)));
    }

    #[test]
    fn with_pred_restricts_every_layer() {
        let base = [pe(0, 1), pe(1, 2), pe(1, 4)];
        let delta = [pe(1, 3)];
        let dead = [pe(1, 2)];
        let e = Edges::merged(&base, &delta, &dead).with_pred(PredId(1));
        let got: Vec<_> = e.iter().copied().collect();
        assert_eq!(got, vec![pe(1, 3), pe(1, 4)]);
        assert!(Edges::merged(&base, &delta, &dead)
            .with_pred(PredId(9))
            .is_empty());
    }

    #[test]
    fn entity_list_concatenates_in_order() {
        let base = [EntityId(0), EntityId(4)];
        let ext = [EntityId(7), EntityId(9)];
        let l = EntityList::with_ext(&base, &ext);
        assert_eq!(l.len(), 4);
        assert_eq!(l.get(1), EntityId(4));
        assert_eq!(l.get(2), EntityId(7));
        let all: Vec<_> = l.iter().collect();
        assert_eq!(
            all,
            vec![EntityId(0), EntityId(4), EntityId(7), EntityId(9)]
        );
    }
}
