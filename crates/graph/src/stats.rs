//! Summary statistics over a graph, used by the benchmark harness when
//! reporting workload shapes (|G|, type counts, degree distribution).

use crate::graph::Graph;
use serde::Serialize;

/// Aggregate shape of a graph.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct GraphStats {
    /// Number of entity nodes.
    pub entities: usize,
    /// Number of value nodes.
    pub values: usize,
    /// Number of nodes (entities + values).
    pub nodes: usize,
    /// Number of triples, the paper's `|G|`.
    pub triples: usize,
    /// Number of distinct entity types.
    pub types: usize,
    /// Number of distinct predicates.
    pub preds: usize,
    /// Maximum total (in+out) entity degree.
    pub max_degree: usize,
    /// Mean total entity degree.
    pub mean_degree: f64,
}

impl GraphStats {
    /// Computes the statistics for `g`.
    pub fn of(g: &Graph) -> Self {
        let mut max_degree = 0usize;
        let mut total = 0usize;
        for e in g.entities() {
            let d = g.degree(e);
            max_degree = max_degree.max(d);
            total += d;
        }
        let n = g.num_entities();
        GraphStats {
            entities: n,
            values: g.num_values(),
            nodes: g.num_nodes(),
            triples: g.num_triples(),
            types: g.num_types(),
            preds: g.num_preds(),
            max_degree,
            mean_degree: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entities, {} values, {} triples, {} types, {} preds, degree max={} mean={:.1}",
            self.entities,
            self.values,
            self.triples,
            self.types,
            self.preds,
            self.max_degree,
            self.mean_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        let x = b.entity("x", "t");
        let y = b.entity("y", "u");
        b.link(x, "p", y);
        b.attr(x, "q", "v");
        let g = b.freeze();
        let s = GraphStats::of(&g);
        assert_eq!(s.entities, 2);
        assert_eq!(s.values, 1);
        assert_eq!(s.triples, 2);
        assert_eq!(s.types, 2);
        assert_eq!(s.preds, 2);
        assert_eq!(s.max_degree, 2); // x: out-degree 2
        assert!((s.mean_degree - 1.5).abs() < 1e-9); // degrees 2 and 1
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = GraphBuilder::new().freeze();
        let s = GraphStats::of(&g);
        assert_eq!(s.entities, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn display_is_humane() {
        let g = GraphBuilder::new().freeze();
        let text = GraphStats::of(&g).to_string();
        assert!(text.contains("0 entities"));
    }
}
