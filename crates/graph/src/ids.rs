//! Compact identifier types for the graph substrate.
//!
//! Entities, values, predicates and entity types each get their own index
//! space, following the data model of the paper (§2.1): a graph is a set of
//! triples `(s, p, o)` where the subject `s` is an entity, `p` is a predicate
//! and the object `o` is either an entity or a value.
//!
//! All identifiers are `u32` newtypes so that adjacency lists and candidate
//! tables stay small and hash quickly (see the type-size guidance in the Rust
//! performance guide).

use std::fmt;

/// Identifier of an entity node (element of the paper's set `E`).
///
/// Two entities are *node-identical* (`e1 ⇔ e2`) iff their `EntityId`s are
/// equal. Entity matching computes which **distinct** `EntityId`s denote the
/// same real-world entity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Identifier of an interned data value (element of the paper's set `D`).
///
/// Values are deduplicated at interning time, so *value equality* (`d1 = d2`)
/// is `ValueId` equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifier of an interned predicate / edge label (element of `P`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

/// Identifier of an interned entity type (element of `Θ`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl EntityId {
    /// Index into per-entity arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ValueId {
    /// Index into per-value arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PredId {
    /// Index into per-predicate arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl TypeId {
    /// Index into per-type arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The object position of a triple: an entity or a value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Obj {
    /// Object is an entity node.
    Entity(EntityId),
    /// Object is a data-value node.
    Value(ValueId),
}

impl Obj {
    /// The packed node reference for this object.
    #[inline]
    pub fn node(self) -> NodeId {
        match self {
            Obj::Entity(e) => NodeId::entity(e),
            Obj::Value(v) => NodeId::value(v),
        }
    }

    /// Returns the entity id if this object is an entity.
    #[inline]
    pub fn as_entity(self) -> Option<EntityId> {
        match self {
            Obj::Entity(e) => Some(e),
            Obj::Value(_) => None,
        }
    }

    /// Returns the value id if this object is a value.
    #[inline]
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Obj::Value(v) => Some(v),
            Obj::Entity(_) => None,
        }
    }
}

impl From<EntityId> for Obj {
    fn from(e: EntityId) -> Self {
        Obj::Entity(e)
    }
}

impl From<ValueId> for Obj {
    fn from(v: ValueId) -> Self {
        Obj::Value(v)
    }
}

/// A packed reference to *any* node of the graph — entity or value — in a
/// single `u32`.
///
/// Bit 31 distinguishes the two kinds: `0` for entities, `1` for values.
/// Used wherever node sets mix the two kinds, e.g. d-neighborhoods (§4.1)
/// and product-graph vertices (§5.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

const VALUE_TAG: u32 = 1 << 31;

impl NodeId {
    /// Packs an entity id.
    #[inline]
    pub fn entity(e: EntityId) -> Self {
        debug_assert!(e.0 < VALUE_TAG, "entity id overflow");
        NodeId(e.0)
    }

    /// Packs a value id.
    #[inline]
    pub fn value(v: ValueId) -> Self {
        debug_assert!(v.0 < VALUE_TAG, "value id overflow");
        NodeId(v.0 | VALUE_TAG)
    }

    /// True iff this node is an entity.
    #[inline]
    pub fn is_entity(self) -> bool {
        self.0 & VALUE_TAG == 0
    }

    /// True iff this node is a value.
    #[inline]
    pub fn is_value(self) -> bool {
        !self.is_entity()
    }

    /// Unpacks to an entity id, if this is an entity node.
    #[inline]
    pub fn as_entity(self) -> Option<EntityId> {
        self.is_entity().then_some(EntityId(self.0))
    }

    /// Unpacks to a value id, if this is a value node.
    #[inline]
    pub fn as_value(self) -> Option<ValueId> {
        self.is_value().then_some(ValueId(self.0 & !VALUE_TAG))
    }

    /// The raw packed representation (stable within one `Graph`).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Converts back to a triple object.
    #[inline]
    pub fn to_obj(self) -> Obj {
        match self.as_entity() {
            Some(e) => Obj::Entity(e),
            None => Obj::Value(ValueId(self.0 & !VALUE_TAG)),
        }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_entity() {
            Some(e) => write!(f, "{e:?}"),
            None => write!(f, "{:?}", self.as_value().expect("value node")),
        }
    }
}

impl From<Obj> for NodeId {
    fn from(o: Obj) -> Self {
        o.node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_entities() {
        let e = EntityId(42);
        let n = NodeId::entity(e);
        assert!(n.is_entity());
        assert!(!n.is_value());
        assert_eq!(n.as_entity(), Some(e));
        assert_eq!(n.as_value(), None);
    }

    #[test]
    fn node_id_roundtrips_values() {
        let v = ValueId(7);
        let n = NodeId::value(v);
        assert!(n.is_value());
        assert_eq!(n.as_value(), Some(v));
        assert_eq!(n.as_entity(), None);
    }

    #[test]
    fn entity_and_value_with_same_index_differ() {
        assert_ne!(NodeId::entity(EntityId(5)), NodeId::value(ValueId(5)));
    }

    #[test]
    fn obj_conversions() {
        let e: Obj = EntityId(3).into();
        let v: Obj = ValueId(9).into();
        assert_eq!(e.as_entity(), Some(EntityId(3)));
        assert_eq!(e.as_value(), None);
        assert_eq!(v.as_value(), Some(ValueId(9)));
        assert_eq!(NodeId::from(v), NodeId::value(ValueId(9)));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", EntityId(1)), "e1");
        assert_eq!(format!("{:?}", NodeId::value(ValueId(2))), "v2");
    }
}
