//! String interning for values, predicates and types.
//!
//! Graphs at the scale of the paper's experiments repeat the same predicate
//! and value strings millions of times; interning collapses each distinct
//! string to a `u32` so triples are 12 bytes and equality checks are integer
//! compares. This is what makes the paper's *value equality* (`d1 = d2`)
//! test O(1) during matching.

use rustc_hash::FxHashMap;

/// A deduplicating string table handing out dense `u32` ids.
///
/// Ids are assigned in first-seen order starting at 0, so they can index
/// side arrays directly.
#[derive(Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, u32>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Looks up the id of `s` without interning it.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }
}

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("name_of");
        let b = i.intern("name_of");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let id = i.intern("Anthology 2");
        assert_eq!(i.resolve(id), "Anthology 2");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let id = i.intern("x");
        assert_eq!(i.get("x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        i.intern("p");
        i.intern("q");
        let collected: Vec<_> = i.iter().map(|(id, s)| (id, s.to_owned())).collect();
        assert_eq!(collected, vec![(0, "p".to_owned()), (1, "q".to_owned())]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.get("anything"), None);
    }
}
