//! Per-type degree buckets for candidate pruning (§4.2 spirit).
//!
//! The optimized chase wins by shrinking the candidate set `L` before any
//! isomorphism work. A key `Q(x)` imposes purely *structural* demands on
//! any entity bound to a pattern slot: a slot with `k` distinct outgoing
//! pattern triples can only match an entity with out-degree ≥ `k`, because
//! the matcher's injectivity rule forces distinct pattern triples onto
//! distinct graph edges. [`DegreeBuckets`] precomputes per-entity out-,
//! in- and self-loop-degrees plus a per-type capped histogram, so
//! candidate enumeration can discard topologically implausible entities
//! in O(1) per entity — before any subgraph-isomorphism search runs.
//!
//! The index is cheap to maintain across the delta overlay: a batch of
//! inserted or tombstoned triples only changes the degrees of its
//! incident entities, so [`DegreeBuckets::update_entities`] refreshes
//! exactly those rows (and grows the arrays for freshly appended
//! entities) instead of rebuilding from scratch.

use crate::ids::{EntityId, Obj, TypeId};
use crate::view::GraphView;
use rayon::prelude::*;

/// Histogram bucket cap: degrees ≥ `BUCKET_CAP` share the last bucket.
const BUCKET_CAP: u32 = 32;

/// The structural degree demand a pattern slot places on any entity bound
/// to it: `out` distinct non-loop outgoing triples, `inc` distinct
/// non-loop incoming triples, and `loops` distinct self-loop triples.
///
/// Each loop triple consumes one edge in *both* adjacency directions, so
/// an entity satisfies the requirement iff
/// `out_degree ≥ out + loops`, `in_degree ≥ inc + loops` and
/// `loop_degree ≥ loops`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegreeReq {
    /// Distinct outgoing pattern triples whose object is another slot.
    pub out: u32,
    /// Distinct incoming pattern triples whose subject is another slot.
    pub inc: u32,
    /// Distinct self-loop pattern triples on the slot.
    pub loops: u32,
}

impl DegreeReq {
    /// True iff the requirement excludes nothing (every entity passes).
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.out == 0 && self.inc == 0 && self.loops == 0
    }
}

/// Per-entity degree rows plus per-type capped degree histograms.
///
/// Built from any [`GraphView`] in one parallel pass; maintained
/// incrementally across overlay epochs with [`update_entities`]
/// (entity ids are stable, so rows survive compaction unchanged).
///
/// [`update_entities`]: DegreeBuckets::update_entities
#[derive(Clone, Debug, Default)]
pub struct DegreeBuckets {
    out: Vec<u32>,
    inc: Vec<u32>,
    loops: Vec<u32>,
    /// `hist[t]` — degree histograms for the entities of type `t`.
    hist: Vec<TypeHist>,
}

/// Capped exact-degree histogram of one entity type.
#[derive(Clone, Debug, Default)]
struct TypeHist {
    /// `out[d]` = entities of the type with `min(out_degree, CAP) == d`.
    out: Vec<u32>,
    /// `inc[d]` = entities of the type with `min(in_degree, CAP) == d`.
    inc: Vec<u32>,
}

impl TypeHist {
    fn add(&mut self, out: u32, inc: u32) {
        let cap = BUCKET_CAP as usize;
        if self.out.is_empty() {
            self.out = vec![0; cap + 1];
            self.inc = vec![0; cap + 1];
        }
        self.out[out.min(BUCKET_CAP) as usize] += 1;
        self.inc[inc.min(BUCKET_CAP) as usize] += 1;
    }

    fn remove(&mut self, out: u32, inc: u32) {
        self.out[out.min(BUCKET_CAP) as usize] -= 1;
        self.inc[inc.min(BUCKET_CAP) as usize] -= 1;
    }

    fn at_least(counts: &[u32], d: u32) -> u32 {
        counts.iter().skip(d.min(BUCKET_CAP) as usize).sum::<u32>()
    }
}

impl DegreeBuckets {
    /// Builds the index over every entity of `g` (one parallel pass over
    /// the adjacency lists).
    pub fn build<V: GraphView>(g: &V) -> Self {
        let n = g.num_entities();
        let ids: Vec<u32> = (0..n as u32).collect();
        let rows: Vec<(u32, u32, u32)> =
            ids.par_iter().map(|&i| Self::row(g, EntityId(i))).collect();
        let mut this = DegreeBuckets {
            out: Vec::with_capacity(n),
            inc: Vec::with_capacity(n),
            loops: Vec::with_capacity(n),
            hist: Vec::new(),
        };
        for (i, &(o, inc, l)) in rows.iter().enumerate() {
            this.out.push(o);
            this.inc.push(inc);
            this.loops.push(l);
            let t = g.entity_type(EntityId(i as u32));
            this.hist_for(t).add(o, inc);
        }
        this
    }

    /// Number of entities covered by the index.
    #[inline]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True iff the index covers no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Out-degree of `e` (all predicates, values included).
    #[inline]
    pub fn out_degree(&self, e: EntityId) -> u32 {
        self.out[e.idx()]
    }

    /// In-degree of `e` (edges from other entities).
    #[inline]
    pub fn in_degree(&self, e: EntityId) -> u32 {
        self.inc[e.idx()]
    }

    /// Number of self-loop edges `(e, p, e)` on `e`.
    #[inline]
    pub fn loop_degree(&self, e: EntityId) -> u32 {
        self.loops[e.idx()]
    }

    /// True iff `e` has enough edges in every direction to satisfy `req`.
    #[inline]
    pub fn satisfies(&self, e: EntityId, req: DegreeReq) -> bool {
        let i = e.idx();
        self.out[i] >= req.out + req.loops
            && self.inc[i] >= req.inc + req.loops
            && self.loops[i] >= req.loops
    }

    /// Number of entities of type `t` with out-degree ≥ `d` (exact below
    /// the bucket cap, conservative above it).
    pub fn count_out_at_least(&self, t: TypeId, d: u32) -> u32 {
        match self.hist.get(t.idx()) {
            Some(h) if !h.out.is_empty() => TypeHist::at_least(&h.out, d),
            _ => 0,
        }
    }

    /// Number of entities of type `t` with in-degree ≥ `d`.
    pub fn count_in_at_least(&self, t: TypeId, d: u32) -> u32 {
        match self.hist.get(t.idx()) {
            Some(h) if !h.inc.is_empty() => TypeHist::at_least(&h.inc, d),
            _ => 0,
        }
    }

    /// True iff *some* entity of type `t` could satisfy `req` — a whole
    /// type can be skipped when its histogram proves the requirement
    /// unsatisfiable.
    pub fn possible(&self, t: TypeId, req: DegreeReq) -> bool {
        self.count_out_at_least(t, req.out + req.loops) > 0
            && self.count_in_at_least(t, req.inc + req.loops) > 0
    }

    /// Refreshes the rows of `touched` entities and appends rows for any
    /// entity created since the last build — O(Σ degree(touched)), not
    /// O(|G|). Histograms are kept consistent; duplicate ids in `touched`
    /// are harmless.
    pub fn update_entities<V: GraphView>(&mut self, g: &V, touched: &[EntityId]) {
        let old_len = self.out.len();
        let n = g.num_entities();
        for i in old_len..n {
            let e = EntityId(i as u32);
            let (o, inc, l) = Self::row(g, e);
            self.out.push(o);
            self.inc.push(inc);
            self.loops.push(l);
            let t = g.entity_type(e);
            self.hist_for(t).add(o, inc);
        }
        for &e in touched {
            if e.idx() >= old_len {
                continue; // freshly appended above
            }
            let t = g.entity_type(e);
            self.hist[t.idx()].remove(self.out[e.idx()], self.inc[e.idx()]);
            let (o, inc, l) = Self::row(g, e);
            self.out[e.idx()] = o;
            self.inc[e.idx()] = inc;
            self.loops[e.idx()] = l;
            self.hist_for(t).add(o, inc);
        }
    }

    fn hist_for(&mut self, t: TypeId) -> &mut TypeHist {
        if self.hist.len() <= t.idx() {
            self.hist.resize_with(t.idx() + 1, TypeHist::default);
        }
        &mut self.hist[t.idx()]
    }

    fn row<V: GraphView>(g: &V, e: EntityId) -> (u32, u32, u32) {
        let out = g.out(e);
        let out_deg = out.len() as u32;
        let in_deg = g.in_entity(e).len() as u32;
        let mut loops = 0u32;
        for &(_, o) in out {
            if o == Obj::Entity(e) {
                loops += 1;
            }
        }
        (out_deg, in_deg, loops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayGraph;
    use crate::parse::parse_graph;

    const G: &str = r#"
        alb1:album  name_of       "Anthology 2"
        alb1:album  release_year  "1996"
        alb1:album  recorded_by   art1:artist
        art1:artist name_of       "The Beatles"
        art1:artist influenced_by art1:artist
        hermit:artist name_of     "Hermit"
    "#;

    fn assert_same(a: &DegreeBuckets, b: &DegreeBuckets, g: &impl GraphView) {
        assert_eq!(a.len(), b.len());
        for e in g.entities() {
            assert_eq!(a.out_degree(e), b.out_degree(e), "{e:?} out");
            assert_eq!(a.in_degree(e), b.in_degree(e), "{e:?} in");
            assert_eq!(a.loop_degree(e), b.loop_degree(e), "{e:?} loops");
        }
        for t in 0..GraphView::num_types(g) as u32 {
            for d in 0..=BUCKET_CAP + 1 {
                let t = TypeId(t);
                assert_eq!(a.count_out_at_least(t, d), b.count_out_at_least(t, d));
                assert_eq!(a.count_in_at_least(t, d), b.count_in_at_least(t, d));
            }
        }
    }

    #[test]
    fn counts_out_in_and_loop_degrees() {
        let g = parse_graph(G).unwrap();
        let idx = DegreeBuckets::build(&g);
        let alb1 = g.entity_named("alb1").unwrap();
        let art1 = g.entity_named("art1").unwrap();
        let hermit = g.entity_named("hermit").unwrap();
        assert_eq!(idx.out_degree(alb1), 3);
        assert_eq!(idx.in_degree(alb1), 0);
        assert_eq!(idx.loop_degree(alb1), 0);
        // art1: name_of + self-loop out; recorded_by + self-loop in.
        assert_eq!(idx.out_degree(art1), 2);
        assert_eq!(idx.in_degree(art1), 2);
        assert_eq!(idx.loop_degree(art1), 1);
        assert_eq!(idx.out_degree(hermit), 1);
    }

    #[test]
    fn satisfies_checks_all_three_directions() {
        let g = parse_graph(G).unwrap();
        let idx = DegreeBuckets::build(&g);
        let art1 = g.entity_named("art1").unwrap();
        let hermit = g.entity_named("hermit").unwrap();
        let req = DegreeReq {
            out: 1,
            inc: 1,
            loops: 1,
        };
        assert!(idx.satisfies(art1, req));
        assert!(!idx.satisfies(hermit, req));
        assert!(idx.satisfies(hermit, DegreeReq::default()));
    }

    #[test]
    fn histograms_answer_per_type_plausibility() {
        let g = parse_graph(G).unwrap();
        let idx = DegreeBuckets::build(&g);
        let artist = g.etype("artist").unwrap();
        let album = g.etype("album").unwrap();
        assert_eq!(idx.count_out_at_least(artist, 1), 2);
        assert_eq!(idx.count_out_at_least(artist, 2), 1);
        assert_eq!(idx.count_in_at_least(artist, 2), 1);
        assert!(idx.possible(
            album,
            DegreeReq {
                out: 3,
                inc: 0,
                loops: 0
            }
        ));
        assert!(!idx.possible(
            album,
            DegreeReq {
                out: 4,
                inc: 0,
                loops: 0
            }
        ));
        // Unknown / entity-less types are never plausible.
        assert!(!idx.possible(TypeId(99), DegreeReq::default()));
    }

    #[test]
    fn degrees_above_the_bucket_cap_stay_conservative() {
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("hub:node p{i} leaf{i}:node\n"));
        }
        let g = parse_graph(&text).unwrap();
        let idx = DegreeBuckets::build(&g);
        let node = g.etype("node").unwrap();
        // 40 > BUCKET_CAP: the capped histogram still counts the hub for
        // every requirement up to (and beyond) the cap.
        assert_eq!(idx.count_out_at_least(node, BUCKET_CAP), 1);
        assert_eq!(idx.count_out_at_least(node, BUCKET_CAP + 5), 1);
        let hub = g.entity_named("hub").unwrap();
        assert_eq!(idx.out_degree(hub), 40);
    }

    #[test]
    fn incremental_update_matches_fresh_build_across_overlay_epochs() {
        let g = parse_graph(G).unwrap();
        let mut ov = OverlayGraph::new(g);
        let mut idx = DegreeBuckets::build(&ov);

        // Epoch 1: append a new album plus an edge into an existing artist.
        let alb2 = ov.entity("alb2", "album");
        let art1 = GraphView::entity_named(&ov, "art1").unwrap();
        let p = ov.intern_pred("recorded_by");
        let v = ov.intern_value("Anthology 2");
        let name = ov.intern_pred("name_of");
        ov.insert_triple(alb2, name, Obj::Value(v));
        ov.insert_triple(alb2, p, Obj::Entity(art1));
        idx.update_entities(&ov, &[alb2, art1]);
        assert_same(&idx, &DegreeBuckets::build(&ov), &ov);

        // Epoch 2: tombstone a base triple (art1 loses its self-loop).
        let infl = GraphView::pred(&ov, "influenced_by").unwrap();
        ov.delete_triple(crate::Triple {
            s: art1,
            p: infl,
            o: Obj::Entity(art1),
        });
        idx.update_entities(&ov, &[art1]);
        assert_same(&idx, &DegreeBuckets::build(&ov), &ov);
        assert_eq!(idx.loop_degree(art1), 0);

        // Duplicate ids in the touched set are harmless.
        idx.update_entities(&ov, &[art1, art1, alb2]);
        assert_same(&idx, &DegreeBuckets::build(&ov), &ov);
    }
}
