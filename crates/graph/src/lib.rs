//! # gk-graph — graph substrate for *Keys for Graphs*
//!
//! The data model of Fan et al., *Keys for Graphs* (PVLDB 2015), §2.1:
//! a graph is a set of triples `(s, p, o)` where the subject is an **entity**
//! (with a unique id and a type), the predicate is a label, and the object is
//! an entity or a **data value**. Two equality notions coexist:
//!
//! * **node identity** `e1 ⇔ e2` on entities — same [`EntityId`];
//! * **value equality** `d1 = d2` on values — same interned [`ValueId`].
//!
//! This crate provides the storage and index layer every other crate builds
//! on: interning, CSR adjacency (forward and reverse, value nodes included),
//! type indexes, d-neighborhood extraction (§4.1 data locality) and a small
//! text format for fixtures.
//!
//! ## Quick start
//! ```
//! use gk_graph::{GraphBuilder, d_neighborhood, NodeId};
//!
//! let mut b = GraphBuilder::new();
//! let alb = b.entity("alb1", "album");
//! let art = b.entity("art1", "artist");
//! b.attr(alb, "name_of", "Anthology 2");
//! b.link(alb, "recorded_by", art);
//! let g = b.freeze();
//!
//! let hood = d_neighborhood(&g, alb, 1);
//! assert!(hood.contains(NodeId::entity(art)));
//! ```

#![warn(missing_docs)]

mod degree;
mod graph;
mod ids;
mod interner;
mod neighborhood;
mod overlay;
mod parse;
mod shard;
mod stats;
mod view;

pub use degree::{DegreeBuckets, DegreeReq};
pub use graph::{Graph, GraphBuilder, Triple};
pub use ids::{EntityId, NodeId, Obj, PredId, TypeId, ValueId};
pub use interner::Interner;
pub use neighborhood::{d_neighborhood, d_neighborhoods, is_forest, NodeSet};
pub use overlay::{DeltaSegment, OverlayGraph};
pub use parse::{parse_graph, parse_triple_specs, write_graph, ObjSpec, ParseError, TripleSpec};
pub use shard::entity_shard;
pub use stats::GraphStats;
pub use view::{view_triples, Edges, EntityIdIter, EntityList, GraphView};
