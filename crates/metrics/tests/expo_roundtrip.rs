//! Property test: the METRICS exposition grammar round-trips — any
//! snapshot a registry can produce renders to text that parses back to
//! the identical snapshot (names, kinds, help, every value).

use gk_metrics::{parse_exposition, HIST_BUCKETS};
use proptest::prelude::*;

/// A generated metric: name index (mapped to a fixed valid-name table),
/// kind tag, and raw values.
fn registries() -> impl Strategy<Value = Vec<(u8, u8, Vec<u64>)>> {
    prop::collection::vec(
        (
            0u8..12,
            0u8..3,
            prop::collection::vec(0u64..u64::MAX / (HIST_BUCKETS as u64 + 2), 0..24),
        ),
        0..8,
    )
}

const NAMES: [&str; 12] = [
    "a",
    "b_total",
    "c_micros",
    "gk_x",
    "gk_y_total",
    "_under",
    "zz9",
    "q_sum_like",
    "bucketish",
    "count_like",
    "histo",
    "mix_3_z",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exposition_parses_back(spec in registries()) {
        let reg = gk_metrics::Registry::new();
        let mut used = std::collections::HashSet::new();
        for (ni, kind, values) in &spec {
            let name = NAMES[*ni as usize];
            // A name registers once with one kind; later duplicates in the
            // generated spec would conflict — skip them (the registry
            // panics on kind conflicts by design).
            if !used.insert(name) {
                continue;
            }
            match kind % 3 {
                0 => {
                    let c = reg.counter(name, "A generated counter.");
                    for v in values {
                        c.add(v % 1_000_003);
                    }
                }
                1 => {
                    let g = reg.gauge(name, "A generated gauge.");
                    for v in values {
                        g.set(*v);
                    }
                }
                _ => {
                    let h = reg.histogram(name, "A generated histogram.");
                    for v in values {
                        h.observe(*v);
                    }
                }
            }
        }
        let snap = reg.snapshot();
        let text = reg.render();
        prop_assert_eq!(parse_exposition(&text), Ok(snap));
    }
}
