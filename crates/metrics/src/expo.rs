//! Text exposition: Prometheus-style rendering and its lossless inverse.
//!
//! The grammar is the subset of the Prometheus text format this workspace
//! emits — no labels except the histogram `le`, integer values only:
//!
//! ```text
//! # HELP <name> <one line of help>
//! # TYPE <name> counter|gauge|histogram
//! <name> <u64>                          (counter, gauge)
//! <name>_bucket{le="<2^i>"} <u64>       (histogram, cumulative)
//! <name>_bucket{le="+Inf"} <u64>
//! <name>_sum <u64>
//! <name>_count <u64>
//! ```
//!
//! [`parse_exposition`] inverts [`render`] exactly:
//! `parse_exposition(&render(&snap)) == Ok(snap)` for every snapshot a
//! [`Registry`](crate::Registry) can produce — the property the golden
//! `METRICS` transcript and the round-trip proptest pin down.

use crate::HIST_BUCKETS;
use std::fmt::Write as _;

/// The kind of a metric, as named on its `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone counter.
    Counter,
    /// A settable gauge.
    Gauge,
    /// A log2-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` token.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A point-in-time value of one metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram cells (buckets are raw per-bucket counts, not
    /// cumulative; rendering accumulates, parsing de-accumulates).
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of all observed values.
        sum: u64,
        /// Per-bucket counts, `HIST_BUCKETS` of them.
        buckets: Vec<u64>,
    },
}

impl MetricValue {
    /// The kind this value renders as.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram { .. } => MetricKind::Histogram,
        }
    }
}

/// One metric of a [`Registry::snapshot`](crate::Registry::snapshot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Metric name (`[a-z_][a-z0-9_]*`).
    pub name: String,
    /// One-line help string.
    pub help: String,
    /// The value.
    pub value: MetricValue,
}

/// Renders snapshots in order; inverse of [`parse_exposition`]. The
/// output has no blank lines (it must travel as one response paragraph of
/// the line protocol) and ends with a newline iff it is non-empty.
pub fn render(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for s in snaps {
        let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
        let _ = writeln!(out, "# TYPE {} {}", s.name, s.value.kind().name());
        match &s.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{} {}", s.name, v);
            }
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                let mut cum = 0u64;
                for (i, b) in buckets.iter().take(HIST_BUCKETS - 1).enumerate() {
                    cum += b;
                    let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", s.name, 1u64 << i, cum);
                }
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", s.name, count);
                let _ = writeln!(out, "{}_sum {}", s.name, sum);
                let _ = writeln!(out, "{}_count {}", s.name, count);
            }
        }
    }
    out
}

/// Parses an exposition back into snapshots (inverse of [`render`]).
/// Rejects anything outside the grammar: unknown kinds, missing or
/// misordered histogram series, non-cumulative buckets, stray lines.
pub fn parse_exposition(text: &str) -> Result<Vec<MetricSnapshot>, String> {
    let mut out = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(help_line) = lines.next() {
        let (name, help) = split2(
            help_line
                .strip_prefix("# HELP ")
                .ok_or_else(|| format!("expected '# HELP', got {help_line:?}"))?,
        )?;
        let type_line = lines.next().ok_or("missing '# TYPE' line")?;
        let (tname, kind) = split2(
            type_line
                .strip_prefix("# TYPE ")
                .ok_or_else(|| format!("expected '# TYPE', got {type_line:?}"))?,
        )?;
        if tname != name {
            return Err(format!("TYPE name {tname:?} does not match HELP {name:?}"));
        }
        let value = match kind {
            "counter" | "gauge" => {
                let line = lines.next().ok_or("missing sample line")?;
                let (sname, v) = split2(line)?;
                if sname != name {
                    return Err(format!("sample {sname:?} does not match {name:?}"));
                }
                let v = parse_u64(v)?;
                if kind == "counter" {
                    MetricValue::Counter(v)
                } else {
                    MetricValue::Gauge(v)
                }
            }
            "histogram" => parse_histogram(name, &mut lines)?,
            other => return Err(format!("unknown metric kind {other:?}")),
        };
        out.push(MetricSnapshot {
            name: name.to_string(),
            help: help.to_string(),
            value,
        });
    }
    Ok(out)
}

/// Parses the bucket/sum/count series of one histogram.
fn parse_histogram<'a, I: Iterator<Item = &'a str>>(
    name: &str,
    lines: &mut I,
) -> Result<MetricValue, String> {
    let mut cum = Vec::with_capacity(HIST_BUCKETS - 1);
    for i in 0..HIST_BUCKETS - 1 {
        let line = lines.next().ok_or("truncated histogram buckets")?;
        let want = format!("{}_bucket{{le=\"{}\"}} ", name, 1u64 << i);
        let v = line
            .strip_prefix(&want)
            .ok_or_else(|| format!("expected {want:?}…, got {line:?}"))?;
        cum.push(parse_u64(v)?);
    }
    let inf_line = lines.next().ok_or("missing +Inf bucket")?;
    let count = parse_u64(
        inf_line
            .strip_prefix(&format!("{name}_bucket{{le=\"+Inf\"}} "))
            .ok_or_else(|| format!("expected +Inf bucket, got {inf_line:?}"))?,
    )?;
    let sum_line = lines.next().ok_or("missing _sum line")?;
    let sum = parse_u64(
        sum_line
            .strip_prefix(&format!("{name}_sum "))
            .ok_or_else(|| format!("expected _sum, got {sum_line:?}"))?,
    )?;
    let count_line = lines.next().ok_or("missing _count line")?;
    let count2 = parse_u64(
        count_line
            .strip_prefix(&format!("{name}_count "))
            .ok_or_else(|| format!("expected _count, got {count_line:?}"))?,
    )?;
    if count2 != count {
        return Err(format!("{name}: _count {count2} != +Inf bucket {count}"));
    }
    // De-accumulate; the overflow bucket is whatever +Inf adds on top.
    let mut buckets = Vec::with_capacity(HIST_BUCKETS);
    let mut prev = 0u64;
    for c in &cum {
        buckets.push(
            c.checked_sub(prev)
                .ok_or_else(|| format!("{name}: buckets are not cumulative"))?,
        );
        prev = *c;
    }
    buckets.push(
        count
            .checked_sub(prev)
            .ok_or_else(|| format!("{name}: +Inf below last finite bucket"))?,
    );
    Ok(MetricValue::Histogram {
        count,
        sum,
        buckets,
    })
}

/// Splits `"<token> <rest>"`; the rest may contain spaces (help text).
fn split2(s: &str) -> Result<(&str, &str), String> {
    s.split_once(' ')
        .ok_or_else(|| format!("expected two fields in {s:?}"))
}

fn parse_u64(v: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("not a u64: {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn exposition_round_trips() {
        let reg = Registry::new();
        reg.counter("reqs_total", "Total requests.").add(41);
        reg.gauge("active", "Active connections.").set(3);
        let h = reg.histogram("lat_micros", "Request latency in micros.");
        for v in [0, 1, 5, 5, 900, 1 << 40] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let text = render(&snap);
        assert_eq!(parse_exposition(&text), Ok(snap));
    }

    #[test]
    fn empty_exposition_parses_to_nothing() {
        assert_eq!(parse_exposition(""), Ok(Vec::new()));
    }

    #[test]
    fn foreign_text_is_rejected() {
        assert!(parse_exposition("hello world").is_err());
        assert!(parse_exposition("# HELP x y\n# TYPE x widget\nx 1\n").is_err());
        // Non-cumulative buckets are rejected.
        let reg = Registry::new();
        reg.histogram("h", "H.").observe(3);
        let text = render(&reg.snapshot());
        // le="4" jumps to 5 while le="8" stays 1: not cumulative.
        let broken = text.replacen("le=\"4\"} 1", "le=\"4\"} 5", 1);
        assert!(parse_exposition(&broken).is_err());
    }
}
