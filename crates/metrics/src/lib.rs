//! # gk-metrics — the observability substrate
//!
//! A zero-dependency metrics registry plus a small structured-logging
//! facade, shared by every layer of the server (no registry crates are
//! available in this build environment, so both are written by hand —
//! same vendoring constraint as the rest of the workspace).
//!
//! ## Metrics
//!
//! A [`Registry`] owns named metrics of three kinds:
//!
//! * [`Counter`] — a monotone `u64`;
//! * [`Gauge`] — a settable `u64` (e.g. currently-active connections);
//! * [`Histogram`] — a fixed-bucket **log2** latency/size distribution:
//!   bucket `i` counts observations `v ≤ 2^i`, plus a total count and sum.
//!
//! Every cell is a plain [`AtomicU64`]; recording is lock-free and
//! wait-free. Handles are `Copy` — they are references to leaked cells,
//! so hot paths carry them by value and never touch the registry (the
//! cells of a process-lifetime registry are a few hundred bytes; leaking
//! them is what makes `Copy` handles possible without generation counts
//! or `Arc` traffic).
//!
//! A **disabled** registry ([`Registry::disabled`]) hands out no-op
//! handles whose record methods compile to a null test — the measured
//! instrumentation overhead baseline (see the `query_pipeline` bench).
//!
//! [`Registry::render`] produces Prometheus-style text exposition;
//! [`parse_exposition`] parses it back losslessly (golden transcripts and
//! property tests rely on the round trip).
//!
//! ## Logging
//!
//! [`error!`]/[`warn!`]/[`info!`]/[`debug!`] emit one `key=value` line per
//! event to stderr (or a file via [`log_to_file`]), filtered by a runtime
//! [`Level`] — see the [`mod@log`] module.

#![warn(missing_docs)]

mod expo;
pub mod log;
pub mod trace;

pub use expo::{
    parse_exposition, render as render_exposition, MetricKind, MetricSnapshot, MetricValue,
};
pub use log::{log_enabled, log_line, log_to_file, log_to_stderr, max_level, set_level, Level};
pub use trace::{Span, TraceNode};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets. Bucket `i < HIST_BUCKETS - 1` counts
/// observations `v ≤ 2^i`; the last bucket is the overflow (rendered only
/// through the `+Inf` cumulative line). With 28 buckets the largest finite
/// bound is `2^26` ≈ 67 s in microseconds — comfortably past any request
/// this server should ever answer.
pub const HIST_BUCKETS: usize = 28;

/// The bucket an observation falls into: the smallest `i` with `v ≤ 2^i`,
/// clamped to the overflow bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((u64::BITS - (v - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The backing cells of one histogram.
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A monotone counter. `Copy` — pass it by value into hot paths. A no-op
/// handle (from a disabled registry or [`Counter::noop`]) records nothing.
#[derive(Clone, Copy)]
pub struct Counter(Option<&'static AtomicU64>);

impl Counter {
    /// A handle that records nothing (the compiled no-op path).
    pub const fn noop() -> Self {
        Counter(None)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(self, n: u64) {
        if let Some(cell) = self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    #[inline]
    pub fn get(self) -> u64 {
        self.0.map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A settable gauge (a current-level value, e.g. active connections).
#[derive(Clone, Copy)]
pub struct Gauge(Option<&'static AtomicU64>);

impl Gauge {
    /// A handle that records nothing.
    pub const fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the value.
    #[inline]
    pub fn set(self, v: u64) {
        if let Some(cell) = self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(self) {
        if let Some(cell) = self.0 {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Subtracts 1 (saturating: a stray double-decrement must not wrap a
    /// connection gauge to 2^64).
    #[inline]
    pub fn dec(self) {
        if let Some(cell) = self.0 {
            let mut cur = cell.load(Ordering::Relaxed);
            while cur > 0 {
                match cell.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The current value (0 for a no-op handle).
    #[inline]
    pub fn get(self) -> u64 {
        self.0.map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 histogram.
#[derive(Clone, Copy)]
pub struct Histogram(Option<&'static HistCells>);

impl Histogram {
    /// A handle that records nothing.
    pub const fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(self, v: u64) {
        if let Some(cells) = self.0 {
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
            cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a duration in whole microseconds.
    #[inline]
    pub fn observe_micros(self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations (0 for a no-op handle).
    #[inline]
    pub fn count(self) -> u64 {
        self.0.map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all observations (0 for a no-op handle).
    #[inline]
    pub fn sum(self) -> u64 {
        self.0.map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }
}

/// The kind + cell of one registered metric.
enum Cell {
    Counter(&'static AtomicU64),
    Gauge(&'static AtomicU64),
    Histogram(&'static HistCells),
}

struct Entry {
    name: String,
    help: String,
    cell: Cell,
}

/// A named collection of metrics. Registration (startup-time) takes a
/// lock; recording through the returned handles never does. Registration
/// is idempotent: re-registering a name of the same kind returns the
/// existing handle, so layers can share metrics without threading handles
/// through constructors.
pub struct Registry {
    enabled: bool,
    entries: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An active registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// A disabled registry: every registration returns a no-op handle and
    /// [`Registry::render`]/[`Registry::snapshot`] are empty. This is the
    /// compiled no-op path the instrumentation-overhead bench compares
    /// against.
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or finds) a counter.
    ///
    /// # Panics
    /// On an invalid name (`[a-z_][a-z0-9_]*`), an empty or multi-line
    /// help string, or a name already registered as a different kind —
    /// all programmer errors caught at startup.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        Counter(Some(self.cell(name, help, false)))
    }

    /// Registers (or finds) a gauge. Panics as [`Registry::counter`] does.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        Gauge(Some(self.cell(name, help, true)))
    }

    /// Registers (or finds) a histogram. Panics as [`Registry::counter`]
    /// does.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        validate(name, help);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match e.cell {
                Cell::Histogram(cells) => return Histogram(Some(cells)),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let cells: &'static HistCells = Box::leak(Box::new(HistCells::new()));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            cell: Cell::Histogram(cells),
        });
        Histogram(Some(cells))
    }

    fn cell(&self, name: &str, help: &str, gauge: bool) -> &'static AtomicU64 {
        validate(name, help);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match (&e.cell, gauge) {
                (Cell::Counter(cell), false) | (Cell::Gauge(cell), true) => return cell,
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            cell: if gauge {
                Cell::Gauge(cell)
            } else {
                Cell::Counter(cell)
            },
        });
        cell
    }

    /// A point-in-time copy of every metric, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                value: match &e.cell {
                    Cell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(c) => MetricValue::Gauge(c.load(Ordering::Relaxed)),
                    Cell::Histogram(h) => MetricValue::Histogram {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    },
                },
            })
            .collect()
    }

    /// Prometheus-style text exposition of the current snapshot; inverse
    /// of [`parse_exposition`].
    pub fn render(&self) -> String {
        expo::render(&self.snapshot())
    }
}

fn validate(name: &str, help: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
    assert!(
        head_ok
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "invalid metric name {name:?} (want [a-z_][a-z0-9_]*)"
    );
    assert!(
        !help.is_empty() && !help.contains('\n'),
        "metric {name:?} needs a non-empty single-line help string"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 26), HIST_BUCKETS - 2);
        assert_eq!(bucket_index((1 << 26) + 1), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn counters_and_gauges_record() {
        let reg = Registry::new();
        let c = reg.counter("reqs_total", "Requests.");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Idempotent registration returns the same cell.
        assert_eq!(reg.counter("reqs_total", "Requests.").get(), 3);

        let g = reg.gauge("active", "Active connections.");
        g.set(5);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 5);
        // Saturating decrement cannot wrap.
        g.set(0);
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let reg = Registry::new();
        let h = reg.histogram("lat_micros", "Latency.");
        for v in [0, 1, 2, 3, 100, 1 << 30] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 106 + (1 << 30));
        let snap = reg.snapshot();
        let MetricValue::Histogram { count, buckets, .. } = &snap[0].value else {
            panic!("histogram expected");
        };
        assert_eq!(*count, 6);
        assert_eq!(buckets.iter().sum::<u64>(), 6);
        assert_eq!(buckets[0], 2, "0 and 1 share the first bucket");
        assert_eq!(buckets[HIST_BUCKETS - 1], 1, "overflow bucket");
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let reg = Registry::disabled();
        let c = reg.counter("reqs_total", "Requests.");
        let h = reg.histogram("lat", "Latency.");
        c.inc();
        h.observe(7);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(reg.snapshot().is_empty());
        assert!(reg.render().is_empty());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        let _ = reg.counter("x", "A counter.");
        let _ = reg.gauge("x", "Now a gauge.");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        let _ = Registry::new().counter("Bad-Name", "Nope.");
    }

    /// The satellite requirement: hammering one histogram from 8 threads
    /// must never lose a count (every cell update is a single atomic RMW).
    #[test]
    fn histogram_is_lossless_under_8_threads() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50_000;
        let reg = Registry::new();
        let h = reg.histogram("hammer", "Concurrency test.");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.observe(t * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS * PER_THREAD);
        let snap = reg.snapshot();
        let MetricValue::Histogram {
            count,
            sum,
            buckets,
        } = &snap[0].value
        else {
            panic!("histogram expected");
        };
        assert_eq!(*count, THREADS * PER_THREAD);
        assert_eq!(buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(*sum, n * (n - 1) / 2, "every observed value accounted");
    }
}
