//! A tiny leveled structured-logging facade.
//!
//! Events are single `key=value` lines — machine-parseable, grep-able,
//! and cheap enough for a per-request slow-query log:
//!
//! ```text
//! level=warn event=conn_read_error kind="connection reset by peer"
//! level=info event=slow_query verb=SAME micros=12843 version=7
//! ```
//!
//! The sink is process-global: stderr by default, a file via
//! [`log_to_file`]. The [`Level`] filter is runtime-settable
//! ([`set_level`]); the [`error!`]/[`warn!`]/[`info!`]/[`debug!`] macros
//! check it before formatting anything, so a filtered-out `debug!` costs
//! one relaxed atomic load.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The server cannot do what was asked of it.
    Error = 1,
    /// Something went wrong but the server carries on (e.g. a
    /// per-connection I/O error).
    Warn = 2,
    /// Lifecycle events: startup, shutdown, slow queries.
    Info = 3,
    /// Per-request chatter; off by default.
    Debug = 4,
}

impl Level {
    /// The `level=` token this level logs as.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (`error`, `warn`, `info`, `debug`).
    pub fn parse(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level {other:?} (want error|warn|info|debug)"
            )),
        }
    }
}

/// The runtime filter; events above it are dropped.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// The sink: `None` = stderr.
static SINK: Mutex<Option<std::fs::File>> = Mutex::new(None);

/// Sets the runtime level filter.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current level filter.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        4 => Level::Debug,
        _ => Level::Info,
    }
}

/// Whether an event at `level` would currently be written.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Redirects log output to a file (append mode, created if missing).
pub fn log_to_file(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(file);
    Ok(())
}

/// Restores the default stderr sink.
pub fn log_to_stderr() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Writes one event line. Prefer the macros, which check the level before
/// evaluating their field expressions. Values with whitespace, quotes or
/// `=` are quoted so the line stays splittable on spaces.
pub fn log_line(level: Level, event: &str, fields: &[(&str, String)]) {
    if !log_enabled(level) {
        return;
    }
    let mut line = format!("level={} event={}", level.name(), event);
    for (k, v) in fields {
        let needs_quotes =
            v.is_empty() || v.contains(|c: char| c.is_whitespace() || c == '"' || c == '=');
        if needs_quotes {
            line.push_str(&format!(" {k}={v:?}"));
        } else {
            line.push_str(&format!(" {k}={v}"));
        }
    }
    line.push('\n');
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    match sink.as_mut() {
        Some(f) => {
            let _ = f.write_all(line.as_bytes());
        }
        None => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

/// Logs at a given level: `log_event!(Level::Warn, "event", k = v, …)`.
#[macro_export]
macro_rules! log_event {
    ($lvl:expr, $event:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log_enabled($lvl) {
            $crate::log_line(
                $lvl,
                $event,
                &[$((stringify!($k), ::std::string::ToString::to_string(&$v))),*],
            );
        }
    };
}

/// Logs an `error`-level event: `error!("event", key = value, …)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Error, $($t)*) };
}

/// Logs a `warn`-level event.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Warn, $($t)*) };
}

/// Logs an `info`-level event.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Info, $($t)*) };
}

/// Logs a `debug`-level event.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::log_event!($crate::Level::Debug, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Ok(Level::Warn));
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn filter_controls_enabled() {
        // Serialize against other tests via the sink lock not being held:
        // the filter is global, so save and restore it.
        let saved = max_level();
        set_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_level(saved);
    }

    #[test]
    fn lines_go_to_the_file_sink() {
        let path = std::env::temp_dir().join(format!("gk-metrics-log-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        log_to_file(&path).unwrap();
        crate::warn!("test_event", code = 7, msg = "two words");
        log_to_stderr();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(
            text.contains("level=warn event=test_event code=7 msg=\"two words\""),
            "unexpected line: {text:?}"
        );
    }
}
