//! Per-request span tracing: cheap monotonic-clock span trees.
//!
//! A [`Span`] is a named region of work with a wall-clock duration,
//! merged per-span counters (candidate pairs examined, iso checks,
//! bytes fsynced, ...) and child spans. Like the rest of this crate it
//! follows the disabled-mode pattern of `Registry::disabled()`: a
//! disabled span is a `None` and every operation on it is a null test
//! that the optimizer folds away, so tracing can stay compiled into
//! every hot path at near-zero cost.
//!
//! The finished tree snapshots into a [`TraceNode`], which renders to
//! (and reparses losslessly from) an indented text form used by the
//! `TRACE`/`TRACES` protocol verbs and the `/traces` HTTP endpoint:
//!
//! ```text
//! span=dups micros=184 candidates=42 pruned=37 iso_checks=5
//!   span=resolve micros=2
//!   span=analyze micros=170 candidates=42 pruned=37 iso_checks=5
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A handle to one span of a request trace, or a disabled no-op.
///
/// Cloning is cheap (an `Arc` bump); clones refer to the same span, so
/// a span can be handed to worker threads which record counters and
/// child spans concurrently.
#[derive(Clone)]
pub struct Span(Option<Arc<SpanInner>>);

struct SpanInner {
    name: &'static str,
    start: Instant,
    /// Wall time in microseconds, written once by [`Span::finish`].
    micros: AtomicU64,
    counters: Mutex<Vec<(&'static str, u64)>>,
    children: Mutex<Vec<Arc<SpanInner>>>,
}

impl SpanInner {
    fn new(name: &'static str) -> SpanInner {
        SpanInner {
            name,
            start: Instant::now(),
            micros: AtomicU64::new(0),
            counters: Mutex::new(Vec::new()),
            children: Mutex::new(Vec::new()),
        }
    }

    fn to_node(&self) -> TraceNode {
        TraceNode {
            name: self.name.to_string(),
            micros: self.micros.load(Ordering::Acquire),
            counters: self
                .counters
                .lock()
                .expect("span counters lock")
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
            children: self
                .children
                .lock()
                .expect("span children lock")
                .iter()
                .map(|c| c.to_node())
                .collect(),
        }
    }
}

impl Span {
    /// The no-op span: every method is a null test. This is what every
    /// traced code path receives when tracing is off.
    pub const fn disabled() -> Span {
        Span(None)
    }

    /// Starts a new root span. The clock starts immediately.
    pub fn root(name: &'static str) -> Span {
        Span(Some(Arc::new(SpanInner::new(name))))
    }

    /// Whether this span records anything. Lets callers skip building
    /// expensive inputs (label strings, snapshots) when tracing is off.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a child span. On a disabled span this returns another
    /// disabled span and records nothing.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.0 {
            Some(inner) => {
                let c = Arc::new(SpanInner::new(name));
                inner
                    .children
                    .lock()
                    .expect("span children lock")
                    .push(c.clone());
                Span(Some(c))
            }
            None => Span(None),
        }
    }

    /// Adds `n` to the named per-span counter (created on first use;
    /// repeated counts on the same key merge by addition).
    pub fn count(&self, key: &'static str, n: u64) {
        let Some(inner) = &self.0 else { return };
        if n == 0 {
            return;
        }
        let mut counters = inner.counters.lock().expect("span counters lock");
        match counters.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += n,
            None => counters.push((key, n)),
        }
    }

    /// Stops the clock: records wall time since the span was opened.
    /// Later calls win (the last `finish` sets the duration), but spans
    /// are conventionally finished exactly once.
    pub fn finish(&self) {
        if let Some(inner) = &self.0 {
            let micros = inner.start.elapsed().as_micros() as u64;
            // A span that finishes within the clock tick still took
            // *some* time; round up so durations are never zero.
            inner.micros.store(micros.max(1), Ordering::Release);
        }
    }

    /// Snapshots the span tree. `None` for a disabled span.
    pub fn to_node(&self) -> Option<TraceNode> {
        self.0.as_ref().map(|inner| inner.to_node())
    }
}

/// An immutable snapshot of one span: name, wall micros, merged
/// counters and child snapshots. Renders to / parses from the indented
/// `span=...` text form losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name (no whitespace, no `=`).
    pub name: String,
    /// Wall time in microseconds.
    pub micros: u64,
    /// Merged counters in first-use order.
    pub counters: Vec<(String, u64)>,
    /// Child spans in open order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total number of spans in this tree (itself plus descendants).
    pub fn total_spans(&self) -> usize {
        1 + self.children.iter().map(|c| c.total_spans()).sum::<usize>()
    }

    /// Sum of the direct children's wall micros — the "phase total"
    /// that EXPLAIN ANALYZE compares against the root's own micros.
    pub fn child_micros(&self) -> u64 {
        self.children.iter().map(|c| c.micros).sum()
    }

    /// Looks up a counter by key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Sums a counter over this span and all descendants.
    pub fn counter_deep(&self, key: &str) -> u64 {
        self.counter(key).unwrap_or(0)
            + self
                .children
                .iter()
                .map(|c| c.counter_deep(key))
                .sum::<u64>()
    }

    /// Renders the tree at `depth` (two spaces of indent per level),
    /// one span per line, each line `\n`-terminated.
    pub fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str("span=");
        out.push_str(&self.name);
        out.push_str(&format!(" micros={}", self.micros));
        for (k, v) in &self.counters {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// Renders the tree rooted at depth 0.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    /// Parses a forest of sibling trees at exactly `depth`, consuming
    /// lines until one at a shallower depth (or the end) is reached.
    /// Returns the trees and the number of lines consumed, or `None`
    /// on any malformed line.
    pub fn parse_forest(lines: &[&str], depth: usize) -> Option<(Vec<TraceNode>, usize)> {
        let mut nodes = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            let Some(d) = line_depth(lines[i]) else {
                break; // not a span line: end of forest
            };
            if d < depth {
                break;
            }
            if d > depth {
                return None; // child without a parent
            }
            let mut node = parse_line(&lines[i][depth * 2..])?;
            i += 1;
            let (children, used) = TraceNode::parse_forest(&lines[i..], depth + 1)?;
            node.children = children;
            i += used;
            nodes.push(node);
        }
        Some((nodes, i))
    }
}

/// Depth of a span line (two spaces per level), or `None` if the line
/// is not a span line.
fn line_depth(line: &str) -> Option<usize> {
    let trimmed = line.trim_start_matches(' ');
    if !trimmed.starts_with("span=") {
        return None;
    }
    let indent = line.len() - trimmed.len();
    if !indent.is_multiple_of(2) {
        return None;
    }
    Some(indent / 2)
}

/// Parses one de-indented span line: `span=<name> micros=<n> [k=v ...]`.
fn parse_line(line: &str) -> Option<TraceNode> {
    let mut toks = line.split_ascii_whitespace();
    let name = toks.next()?.strip_prefix("span=")?;
    if name.is_empty() {
        return None;
    }
    let micros = toks.next()?.strip_prefix("micros=")?.parse().ok()?;
    let mut counters = Vec::new();
    for tok in toks {
        let (k, v) = tok.split_once('=')?;
        if k.is_empty() {
            return None;
        }
        counters.push((k.to_string(), v.parse().ok()?));
    }
    Some(TraceNode {
        name: name.to_string(),
        micros,
        counters,
        children: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let s = Span::disabled();
        assert!(!s.is_enabled());
        let c = s.child("phase");
        c.count("candidates", 7);
        c.finish();
        s.finish();
        assert!(s.to_node().is_none());
        assert!(c.to_node().is_none());
    }

    #[test]
    fn counters_merge_and_children_nest() {
        let root = Span::root("req");
        let phase = root.child("chase");
        phase.count("iso_checks", 2);
        phase.count("iso_checks", 3);
        phase.count("merges", 1);
        phase.finish();
        root.count("bytes", 0); // zero counts are dropped
        root.finish();
        let node = root.to_node().unwrap();
        assert_eq!(node.name, "req");
        assert!(node.micros >= 1);
        assert!(node.counters.is_empty());
        assert_eq!(node.children.len(), 1);
        let chase = &node.children[0];
        assert_eq!(chase.counter("iso_checks"), Some(5));
        assert_eq!(chase.counter("merges"), Some(1));
        assert_eq!(node.counter_deep("iso_checks"), 5);
        assert_eq!(node.total_spans(), 2);
    }

    #[test]
    fn clones_share_the_span() {
        let root = Span::root("req");
        let clone = root.clone();
        clone.count("wake_ups", 4);
        clone.child("worker").finish();
        root.finish();
        let node = root.to_node().unwrap();
        assert_eq!(node.counter("wake_ups"), Some(4));
        assert_eq!(node.children.len(), 1);
    }

    #[test]
    fn render_parse_round_trip() {
        let node = TraceNode {
            name: "insert".into(),
            micros: 1234,
            counters: vec![("bytes".into(), 88), ("merges".into(), 2)],
            children: vec![
                TraceNode {
                    name: "validate".into(),
                    micros: 3,
                    counters: vec![],
                    children: vec![],
                },
                TraceNode {
                    name: "chase".into(),
                    micros: 1200,
                    counters: vec![("iso_checks".into(), 41)],
                    children: vec![TraceNode {
                        name: "round".into(),
                        micros: 1100,
                        counters: vec![("candidates".into(), 17)],
                        children: vec![],
                    }],
                },
            ],
        };
        let text = node.render();
        let lines: Vec<&str> = text.lines().collect();
        let (forest, used) = TraceNode::parse_forest(&lines, 0).unwrap();
        assert_eq!(used, lines.len());
        assert_eq!(forest, vec![node]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "span= micros=1",
            "span=x",
            "span=x micros=abc",
            "span=x micros=1 =3",
            "span=x micros=1 k=notanumber",
            " span=x micros=1", // odd indent
        ] {
            assert!(
                TraceNode::parse_forest(&[bad], 0).is_none()
                    || TraceNode::parse_forest(&[bad], 0).unwrap().0.is_empty(),
                "accepted: {bad}"
            );
        }
        // A child with no parent is an error, not an empty forest.
        assert!(TraceNode::parse_forest(&["  span=x micros=1"], 0).is_none());
    }
}
