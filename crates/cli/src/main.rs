//! `graphkeys` — command-line entity matching with keys for graphs.
//!
//! ```text
//! graphkeys stats    <graph.triples>
//! graphkeys keys     <keys.gk>
//! graphkeys validate <graph.triples> <keys.gk>
//! graphkeys match    <graph.triples> <keys.gk> [--algo ref|mr|mr-opt|mr-vf2|vc|vc-opt]
//!                    [-p N] [-k K] [--normalize casefold|alphanum] [--explain A,B]
//! graphkeys chase    <graph.triples> <keys.gk> [--engine reference|parallel]
//!                    [--threads N] [--seed S]
//! graphkeys gen      --flavor google|dbpedia|synthetic [--scale F] [--keys N]
//!                    [--chain C] [--radius D] [--seed S] --out DIR
//! graphkeys serve    <graph.triples> <keys.gk> [--port P] [--threads N]
//!                    [--engine reference|incremental|parallel]
//!                    [--data-dir DIR] [--fsync always|batch|never]
//!                    [--metrics-addr HOST:PORT] [--slow-query-ms N]
//! graphkeys snapshot <addr>
//! graphkeys metrics  <addr>
//! graphkeys recover  --data-dir DIR [--engine E] [--threads N] [--verify]
//! graphkeys query    <addr> <verb> [args...]
//! graphkeys query    <addr> --stdin [--depth N]
//! ```
//!
//! Graphs use the triple text format of `gk-graph` (`entity:Type pred
//! "value"` lines); keys use the DSL of `gk-core` (`key "Q" type(x) {...}`).

mod cmd;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cmd::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // The usage dump helps with argument mistakes, not with errors
            // the running system answered.
            if !cmd::is_runtime_error(&e) {
                eprintln!();
                eprintln!("{}", cmd::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
