//! Command implementations and a small flag parser.

use gk_core::ShardRole;
use gk_core::{
    chase_parallel, chase_reference, em_mr, em_vc, key_violations, normalize_graph, normalize_keys,
    prove, satisfies, verify, AlphaNum, CaseFold, ChaseEngine, ChaseOrder, CompiledKeySet, KeySet,
    MatchOutcome, MrVariant, ParallelOpts, VcVariant,
};
use gk_datagen::{generate, GenConfig};
use gk_graph::{parse_graph, write_graph, Graph, GraphStats, GraphView};
use gk_server::{Durability, FsyncMode};
use std::fmt::Write as _;

/// Usage text shown on argument errors.
pub const USAGE: &str = "usage:
  graphkeys stats    <graph.triples>
  graphkeys keys     <keys.gk>
  graphkeys validate <graph.triples> <keys.gk>
  graphkeys match    <graph.triples> <keys.gk> [--algo ref|mr|mr-opt|mr-vf2|vc|vc-opt]
                     [-p N] [-k K] [--normalize casefold|alphanum] [--explain A,B]
  graphkeys chase    <graph.triples> <keys.gk> [--engine reference|parallel]
                     [--threads N] [--seed S]
  graphkeys discover <graph.triples> [--max-attrs N] [--min-support F]
  graphkeys gen      --flavor google|dbpedia|synthetic [--scale F] [--keys N]
                     [--chain C] [--radius D] [--seed S] --out DIR
  graphkeys serve    <graph.triples> <keys.gk> [--port P] [--threads N]
                     [--engine reference|incremental|parallel]
                     [--net-model epoll|threaded]  TCP front-end: nonblocking
                     epoll event loop (default) or the deprecated blocking
                     thread-per-connection pool
                     [--max-conns N]           admission bound on simultaneous
                     connections; beyond it new ones get ERR busy (0 = off;
                     epoll model only)
                     [--data-dir DIR] [--fsync always|batch|never]
                     [--compact-threshold N]   fold the delta overlay into a
                     fresh base CSR once delta+tombstones reach N (0 = off)
                     [--metrics-addr HOST:PORT]  HTTP GET /metrics scrape endpoint
                     [--slow-query-ms N]       log requests slower than N ms (0 = off)
                     [--cache-entries N]       epoch-keyed answer cache for
                     SAME/DUPS/REP, about N entries (0 = off, the default)
                     [--trace-buffer N]        flight recorder: retain the last N
                     request traces + N slow-query traces (default 32, 0 = off)
                     [--shard-id I/N]          run as cluster shard I of N: chase only
                     the owned slice of the candidate pairs and answer the
                     SHARDCHASE/MERGES exchange verbs (see `cluster`)
  graphkeys cluster  <graph.triples> <keys.gk> --shards N [--port P] [--threads N]
                     [--engine E] [--data-dir DIR] [--heartbeat-ms MS]
                     single-process cluster: N sharded servers on loopback
                     ports plus the router front on --port; with --data-dir,
                     shard i persists under DIR/shard-i
  graphkeys cluster  --join ADDR0,ADDR1,...  [--port P] [--heartbeat-ms MS]
                     router-only: drive the distributed chase over already
                     running shards (each started with serve --shard-id I/N)
  graphkeys snapshot <addr>                    ask a running server to persist a snapshot
  graphkeys metrics  <addr>                    print a server's metrics exposition
  graphkeys trace    <addr> <request>          run one request under span tracing and
                     print the span tree + the answer (e.g. trace 127.0.0.1:7878 DUPS e1)
  graphkeys recover  --data-dir DIR [--engine E] [--threads N] [--verify]
                     rebuild from snapshot + WAL; --verify cross-checks
                     against a from-scratch chase
  graphkeys query    <addr> <verb> [args...]   (e.g. query 127.0.0.1:7878 SAME a b;
                     ADDKEY/DROPKEY/KEYS manage the key set at runtime)
  graphkeys query    <addr> --stdin [--depth N]
                     read one request per stdin line and pipeline them
                     N-deep (default 64) through one connection";

/// Entry point used by `main` (and by the unit tests).
pub fn run(args: &[String]) -> Result<(), String> {
    let mut out = String::new();
    let result = run_to(args, &mut out);
    // Print whatever the command produced even when it errors: `query`
    // (and `query --stdin` especially) buffers server responses before
    // reporting a failed request, and discarding a hundred good answers
    // because one line answered ERR would lose the session's output.
    print!("{out}");
    result
}

/// Testable variant: renders all output into a string.
pub fn run_to(args: &[String], out: &mut String) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "stats" => cmd_stats(rest, out),
        "keys" => cmd_keys(rest, out),
        "validate" => cmd_validate(rest, out),
        "match" => cmd_match(rest, out),
        "chase" => cmd_chase(rest, out),
        "discover" => cmd_discover(rest, out),
        "gen" => cmd_gen(rest, out),
        "serve" => cmd_serve(rest, out),
        "cluster" => cmd_cluster(rest, out),
        "snapshot" => cmd_snapshot(rest, out),
        "metrics" => cmd_metrics(rest, out),
        "trace" => cmd_trace(rest, out),
        "recover" => cmd_recover(rest, out),
        "query" => cmd_query(rest, out),
        other => Err(format!("unknown command {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

struct Flags {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], known: &[&str]) -> Result<Flags, String> {
        Self::parse_with_switches(args, known, &[])
    }

    /// Like [`Flags::parse`], but names in `bools` are valueless switches
    /// (`--verify`) rather than `--flag value` pairs.
    fn parse_with_switches(
        args: &[String],
        known: &[&str],
        bools: &[&str],
    ) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if bools.contains(&name) {
                    switches.push(name.to_string());
                } else if known.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("flag {a:?} needs a value"))?
                        .clone();
                    options.push((name.to_string(), value));
                } else {
                    return Err(format!("unknown flag {a:?}"));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags {
            positional,
            options,
            switches,
        })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    parse_graph(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_keys(path: &str) -> Result<KeySet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    KeySet::parse(&text).map_err(|e| format!("{path}: {e}"))
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn cmd_stats(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let [path] = f.positional.as_slice() else {
        return Err("stats takes exactly one graph file".into());
    };
    let g = load_graph(path)?;
    let _ = writeln!(out, "{}", GraphStats::of(&g));
    Ok(())
}

fn cmd_keys(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let [path] = f.positional.as_slice() else {
        return Err("keys takes exactly one key file".into());
    };
    let ks = load_keys(path)?;
    let _ = writeln!(
        out,
        "{} keys, |Σ| = {} triples, max radius d = {}, {} recursive, longest chain c = {}",
        ks.cardinality(),
        ks.total_size(),
        ks.max_radius(),
        ks.recursive_count(),
        ks.longest_chain()
    );
    for k in ks.keys() {
        let _ = writeln!(
            out,
            "  {:<12} on {:<16} |Q|={} d={} {}",
            k.name,
            k.target_type,
            k.size(),
            k.radius(),
            if k.is_recursive() {
                "recursive"
            } else {
                "value-based"
            }
        );
    }
    Ok(())
}

fn cmd_validate(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let [gpath, kpath] = f.positional.as_slice() else {
        return Err("validate takes a graph file and a key file".into());
    };
    let g = load_graph(gpath)?;
    let ks = load_keys(kpath)?;
    let compiled = ks.compile(&g);
    if !compiled.skipped.is_empty() {
        let _ = writeln!(
            out,
            "inactive keys (vocabulary not in graph): {:?}",
            compiled.skipped
        );
    }
    if satisfies(&g, &compiled) {
        let _ = writeln!(out, "OK: G |= Σ (no duplicates under these keys)");
        return Ok(());
    }
    let _ = writeln!(out, "VIOLATIONS (direct, under node identity):");
    for v in key_violations(&g, &compiled) {
        let _ = writeln!(
            out,
            "  {}: {} <=> {}",
            v.key_name,
            g.entity_label(v.pair.0),
            g.entity_label(v.pair.1)
        );
    }
    let all = gk_core::set_violations(&g, &compiled);
    let _ = writeln!(out, "chase-level duplicates: {} pair(s)", all.len());
    for (a, b) in all {
        let _ = writeln!(out, "  {} <=> {}", g.entity_label(a), g.entity_label(b));
    }
    Ok(())
}

fn run_algo(
    algo: &str,
    g: &Graph,
    keys: &CompiledKeySet,
    p: usize,
    k: u32,
) -> Result<MatchOutcome, String> {
    Ok(match algo {
        "ref" => {
            let r = chase_reference(g, keys, ChaseOrder::Deterministic);
            let report = gk_core::RunReport {
                algorithm: "reference".into(),
                workers: 1,
                identified: r.eq.num_identified_pairs(),
                merges: r.steps.len(),
                rounds: r.rounds,
                iso_checks: r.iso_checks,
                ..Default::default()
            };
            MatchOutcome { eq: r.eq, report }
        }
        "mr" => em_mr(g, keys, p, MrVariant::Base),
        "mr-opt" => em_mr(g, keys, p, MrVariant::Opt),
        "mr-vf2" => em_mr(g, keys, p, MrVariant::Vf2),
        "vc" => em_vc(g, keys, p, VcVariant::Base),
        "vc-opt" => em_vc(g, keys, p, VcVariant::Opt { k }),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn cmd_match(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &["algo", "p", "k", "normalize", "explain"])?;
    let [gpath, kpath] = f.positional.as_slice() else {
        return Err("match takes a graph file and a key file".into());
    };
    let mut g = load_graph(gpath)?;
    let mut ks = load_keys(kpath)?;
    match f.get("normalize") {
        None => {}
        Some("casefold") => {
            g = normalize_graph(&g, &CaseFold);
            ks = normalize_keys(&ks, &CaseFold);
        }
        Some("alphanum") => {
            g = normalize_graph(&g, &AlphaNum);
            ks = normalize_keys(&ks, &AlphaNum);
        }
        Some(other) => return Err(format!("unknown normalizer {other:?}")),
    }
    let algo = f.get("algo").unwrap_or("vc-opt");
    let p = f.get_parse("p", 4usize)?;
    let k = f.get_parse("k", 4u32)?;
    let compiled = ks.compile(&g);
    let outcome = run_algo(algo, &g, &compiled, p, k)?;
    let _ = writeln!(out, "{}", outcome.report);
    for class in outcome.eq.classes() {
        let names: Vec<String> = class.iter().map(|&e| g.entity_label(e)).collect();
        let _ = writeln!(out, "cluster: {}", names.join(" = "));
    }

    if let Some(pair) = f.get("explain") {
        let (a, b) = pair
            .split_once(',')
            .ok_or_else(|| "--explain takes ENTITY_A,ENTITY_B".to_string())?;
        let ea = g
            .entity_named(a.trim())
            .ok_or_else(|| format!("unknown entity {a:?}"))?;
        let eb = g
            .entity_named(b.trim())
            .ok_or_else(|| format!("unknown entity {b:?}"))?;
        match prove(&g, &compiled, ea, eb) {
            None => {
                let _ = writeln!(out, "no proof: {a} and {b} are not identified");
            }
            Some(proof) => {
                verify(&g, &compiled, &proof).map_err(|e| format!("internal: {e}"))?;
                let _ = writeln!(
                    out,
                    "proof for {a} <=> {b} ({} steps, verified):",
                    proof.len()
                );
                for s in &proof.steps {
                    let _ = writeln!(
                        out,
                        "  {} <=> {} by {}",
                        g.entity_label(s.pair.0),
                        g.entity_label(s.pair.1),
                        compiled.keys[s.key].name
                    );
                }
            }
        }
    }
    Ok(())
}

fn cmd_chase(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &["engine", "threads", "seed"])?;
    let [gpath, kpath] = f.positional.as_slice() else {
        return Err("chase takes a graph file and a key file".into());
    };
    let g = load_graph(gpath)?;
    let ks = load_keys(kpath)?;
    let threads = f.get_parse("threads", 0usize)?;
    let engine = ChaseEngine::parse(f.get("engine").unwrap_or("parallel"), threads)?;
    if engine == ChaseEngine::Incremental {
        return Err("chase runs a full chase; --engine takes reference|parallel".into());
    }
    let order = match f.get("seed") {
        None => ChaseOrder::Deterministic,
        Some(s) => ChaseOrder::Shuffled(
            s.parse()
                .map_err(|_| format!("invalid value for --seed: {s:?}"))?,
        ),
    };
    let compiled = ks.compile(&g);
    let t0 = std::time::Instant::now();
    let r = match engine {
        ChaseEngine::Parallel { threads } => chase_parallel(
            &g,
            &compiled,
            ParallelOpts {
                threads,
                order,
                ..Default::default()
            },
        ),
        _ => chase_reference(&g, &compiled, order),
    };
    let _ = writeln!(
        out,
        "chase({}) engine={engine} threads={} rounds={} steps={} identified_pairs={} iso={} in {:?}",
        gpath,
        engine.threads(),
        r.rounds,
        r.steps.len(),
        r.eq.num_identified_pairs(),
        r.iso_checks,
        t0.elapsed()
    );
    for class in r.eq.classes() {
        let names: Vec<String> = class.iter().map(|&e| g.entity_label(e)).collect();
        let _ = writeln!(out, "cluster: {}", names.join(" = "));
    }
    Ok(())
}

fn cmd_discover(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &["max-attrs", "min-support"])?;
    let [gpath] = f.positional.as_slice() else {
        return Err("discover takes exactly one graph file".into());
    };
    let g = load_graph(gpath)?;
    let cfg = gk_core::DiscoveryConfig {
        max_attrs: f.get_parse("max-attrs", 3usize)?,
        min_support: f.get_parse("min-support", 0.5f64)?,
        ..Default::default()
    };
    let mined = gk_core::discover_value_keys(&g, &cfg);
    if mined.is_empty() {
        let _ = writeln!(out, "// no value-based keys hold on this instance");
        return Ok(());
    }
    let _ = writeln!(out, "// {} minimal value-based key(s) mined:", mined.len());
    for d in mined {
        let _ = writeln!(out, "// support: {:.0}%", d.support * 100.0);
        let _ = writeln!(out, "{}\n", d.key);
    }
    Ok(())
}

fn cmd_gen(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(
        args,
        &["flavor", "scale", "keys", "chain", "radius", "seed", "out"],
    )?;
    if !f.positional.is_empty() {
        return Err("gen takes flags only".into());
    }
    let mut cfg = match f.get("flavor").unwrap_or("synthetic") {
        "google" => GenConfig::google(),
        "dbpedia" => GenConfig::dbpedia(),
        "synthetic" => GenConfig::synthetic(),
        other => return Err(format!("unknown flavor {other:?}")),
    };
    let scale = f.get_parse("scale", cfg.scale)?;
    let chain = f.get_parse("chain", cfg.chain_len)?;
    let radius = f.get_parse("radius", cfg.max_radius)?;
    let nkeys = f.get_parse("keys", cfg.num_keys)?;
    let seed = f.get_parse("seed", cfg.seed)?;
    cfg = cfg
        .with_scale(scale)
        .with_chain(chain)
        .with_radius(radius)
        .with_keys(nkeys)
        .with_seed(seed);
    let dir = f
        .get("out")
        .ok_or_else(|| "gen requires --out DIR".to_string())?;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;

    let w = generate(&cfg);
    let gpath = format!("{dir}/graph.triples");
    let kpath = format!("{dir}/keys.gk");
    let tpath = format!("{dir}/truth.tsv");
    std::fs::write(&gpath, write_graph(&w.graph)).map_err(|e| e.to_string())?;
    std::fs::write(&kpath, gk_core::write_keys(w.keys.keys())).map_err(|e| e.to_string())?;
    let mut truth = String::new();
    for (a, b) in &w.truth {
        let _ = writeln!(
            truth,
            "{}\t{}",
            w.graph.entity_label(*a),
            w.graph.entity_label(*b)
        );
    }
    std::fs::write(&tpath, truth).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "wrote {gpath} ({}), {kpath} ({} keys), {tpath} ({} pairs)",
        GraphStats::of(&w.graph),
        w.keys.cardinality(),
        w.truth.len()
    );
    Ok(())
}

/// True when an error from [`run`] came from the running system (a server
/// reply or the network) rather than from argument parsing — `main`
/// suppresses the usage dump for these.
pub fn is_runtime_error(msg: &str) -> bool {
    msg.starts_with("server answered:") || msg.starts_with("cannot reach")
}

fn cmd_serve(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(
        args,
        &[
            "port",
            "threads",
            "engine",
            "data-dir",
            "fsync",
            "compact-threshold",
            "metrics-addr",
            "slow-query-ms",
            "cache-entries",
            "trace-buffer",
            "net-model",
            "max-conns",
            "shard-id",
        ],
    )?;
    let [gpath, kpath] = f.positional.as_slice() else {
        return Err("serve takes a graph file and a key file".into());
    };
    let g = load_graph(gpath)?;
    let ks = load_keys(kpath)?;
    let port = f.get_parse("port", 7878u16)?;
    let threads = f.get_parse("threads", 4usize)?;
    // One --threads knob: it sizes both the TCP worker pool and, under
    // `--engine parallel`, the partitioned chase.
    let engine = ChaseEngine::parse(f.get("engine").unwrap_or("incremental"), threads)?;
    let compact_threshold =
        f.get_parse("compact-threshold", gk_server::DEFAULT_COMPACT_THRESHOLD)?;
    let slow_query_ms = f.get_parse("slow-query-ms", 0u64)?;
    let cache_entries = f.get_parse("cache-entries", 0usize)?;
    let trace_buffer = f.get_parse("trace-buffer", 32usize)?;
    let shard = f.get("shard-id").map(ShardRole::parse).transpose()?;
    let mut server = match f.get("data-dir") {
        None => {
            if f.get("fsync").is_some() {
                return Err("--fsync needs --data-dir".into());
            }
            let mut server = match shard {
                None => gk_server::Server::with_engine(g, ks, engine),
                Some(role) => {
                    gk_server::Server::from_index(gk_server::EmIndex::with_engine_sharded(
                        g,
                        ks,
                        engine,
                        std::sync::Arc::new(gk_server::Registry::new()),
                        role,
                    ))
                }
            };
            server.set_compact_threshold(compact_threshold);
            server
        }
        Some(dir) => {
            let fsync = FsyncMode::parse(f.get("fsync").unwrap_or("batch"))?;
            let dur = Durability::in_dir(dir).with_fsync(fsync);
            // The threshold travels into the open so the recovery replay's
            // post-replay fold honors it too (including 0 = off).
            let (server, report) = match shard {
                None => gk_server::Server::with_durability_compacting(
                    g,
                    ks,
                    engine,
                    &dur,
                    compact_threshold,
                )?,
                Some(role) => {
                    let (index, report) = gk_server::EmIndex::open_durable_sharded(
                        g,
                        ks,
                        engine,
                        &dur,
                        compact_threshold,
                        role,
                    )?;
                    (gk_server::Server::from_index(index), report)
                }
            };
            let _ = writeln!(out, "{}", recovery_line(&report, dir));
            server
        }
    };
    server.set_slow_query_millis(slow_query_ms);
    server.set_cache_entries(cache_entries);
    server.set_trace_buffer(trace_buffer);
    let server = std::sync::Arc::new(server);
    let model: gk_server::NetModel = match f.get("net-model") {
        Some(m) => m.parse()?,
        None => gk_server::NetModel::default(),
    };
    let max_conns = f.get_parse("max-conns", 0usize)?;
    if max_conns > 0 && model == gk_server::NetModel::Threaded {
        return Err(
            "--max-conns needs --net-model epoll (the threaded pool's own size is its bound)"
                .into(),
        );
    }
    // The scrape endpoint rides the epoll reactor; under the threaded
    // model serve_with spawns its dedicated sidecar thread.
    let opts = gk_server::ServeOptions {
        threads,
        model,
        max_conns,
        metrics_addr: f.get("metrics-addr").map(str::to_string),
    };
    let handle = gk_server::serve_with(server, &format!("127.0.0.1:{port}"), &opts)
        .map_err(|e| format!("cannot bind port {port}: {e}"))?;
    if let Some(maddr) = handle.metrics_addr() {
        let _ = writeln!(out, "metrics on http://{maddr}/metrics");
    }
    // `run_to` buffers output until return, but serve never returns — print
    // the banner directly so operators see the bound address immediately.
    let role_note = match shard {
        Some(role) => format!(", shard={role}"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "serving on {} with {threads} worker thread(s), engine={engine}, net-model={model}{role_note}",
        handle.addr()
    );
    print!("{out}");
    out.clear();
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

fn cmd_cluster(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(
        args,
        &[
            "shards",
            "port",
            "threads",
            "engine",
            "data-dir",
            "heartbeat-ms",
            "join",
        ],
    )?;
    let heartbeat = std::time::Duration::from_millis(f.get_parse("heartbeat-ms", 200u64)?);
    let port = f.get_parse("port", 7879u16)?;
    let listen = format!("127.0.0.1:{port}");

    // Router-only mode: the shards are already running elsewhere.
    if let Some(list) = f.get("join") {
        if !f.positional.is_empty() {
            return Err("cluster --join takes no graph or key files".into());
        }
        let addrs: Vec<String> = list.split(',').map(|a| a.trim().to_string()).collect();
        let registry = std::sync::Arc::new(gk_server::Registry::new());
        let coordinator = std::sync::Arc::new(
            gk_cluster::Coordinator::connect(&addrs, &registry)
                .map_err(|e| format!("coordinator: {e}"))?,
        );
        coordinator
            .converge()
            .map_err(|e| format!("initial convergence: {e}"))?;
        let router = gk_cluster::serve_router(coordinator, registry, &listen, heartbeat)
            .map_err(|e| format!("cannot bind {listen}: {e}"))?;
        let _ = writeln!(
            out,
            "cluster router on {} over {} shard(s): {}",
            router.addr(),
            addrs.len(),
            addrs.join(", ")
        );
        return park(out);
    }

    // Single-process mode: launch the shards too.
    let [gpath, kpath] = f.positional.as_slice() else {
        return Err("cluster takes a graph file and a key file (or --join)".into());
    };
    let graph_text =
        std::fs::read_to_string(gpath).map_err(|e| format!("cannot read {gpath:?}: {e}"))?;
    let keys_text =
        std::fs::read_to_string(kpath).map_err(|e| format!("cannot read {kpath:?}: {e}"))?;
    let threads = f.get_parse("threads", 2usize)?;
    let opts = gk_cluster::ClusterOpts {
        shards: f.get_parse("shards", 2usize)?,
        engine: ChaseEngine::parse(f.get("engine").unwrap_or("incremental"), threads)?,
        threads,
        data_dir: f.get("data-dir").map(std::path::PathBuf::from),
        heartbeat,
        ..gk_cluster::ClusterOpts::default()
    };
    let cluster = gk_cluster::Cluster::launch(&graph_text, &keys_text, &listen, &opts)?;
    for (i, r) in cluster.recoveries.iter().enumerate() {
        let dir = format!("{}/shard-{i}", opts.data_dir.as_ref().unwrap().display());
        let _ = writeln!(out, "shard {i}: {}", recovery_line(r, &dir));
    }
    for (i, addr) in cluster.shard_addrs().iter().enumerate() {
        let _ = writeln!(out, "shard {i}/{} on {addr}", opts.shards);
    }
    let _ = writeln!(
        out,
        "cluster router on {} over {} shard(s)",
        cluster.router_addr(),
        opts.shards
    );
    park(out)
}

/// Prints the buffered banner and parks forever (serve-style commands).
fn park(out: &mut String) -> Result<(), String> {
    print!("{out}");
    out.clear();
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// One line describing how a durable startup obtained its state.
fn recovery_line(r: &gk_server::RecoveryReport, dir: &str) -> String {
    if r.recovered {
        let torn = if r.wal_torn {
            ", torn tail discarded"
        } else {
            ""
        };
        let skipped = if r.skipped_snapshots > 0 {
            format!(", {} corrupt snapshot(s) skipped", r.skipped_snapshots)
        } else {
            String::new()
        };
        format!(
            "recovered from {dir}: snapshot_seq={} + {} WAL record(s) replayed ({}{torn}{skipped})",
            r.snapshot_seq.unwrap_or(0),
            r.wal_replayed,
            r.replay_mode,
        )
    } else {
        format!("bootstrapped {dir}: startup chase + initial snapshot written")
    }
}

fn cmd_snapshot(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let [addr] = f.positional.as_slice() else {
        return Err("snapshot takes a server address".into());
    };
    let resp = gk_client::Client::lazy(addr)
        .request(&gk_server::Request::Snapshot)
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let _ = writeln!(out, "{}", resp.render());
    if resp.is_err() {
        return Err(format!("server answered: {}", resp.render()));
    }
    Ok(())
}

fn cmd_metrics(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let [addr] = f.positional.as_slice() else {
        return Err("metrics takes a server address".into());
    };
    let snaps = gk_client::Client::lazy(addr)
        .metrics()
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    // The raw exposition, ready for a file or a scraper diff.
    out.push_str(&gk_server::render_exposition(&snaps));
    Ok(())
}

fn cmd_trace(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let [addr, verb_and_args @ ..] = f.positional.as_slice() else {
        return Err("trace takes an address and a request (e.g. DUPS e1)".into());
    };
    if verb_and_args.is_empty() {
        return Err("trace needs a request after the address (e.g. DUPS e1)".into());
    }
    let line = verb_and_args.join(" ");
    // Parse client-side, then wrap in TRACE (idempotently: an explicit
    // `trace <addr> TRACE DUPS e` is not double-wrapped).
    let req = gk_server::Request::parse(&line).map_err(|e| e.to_string())?;
    let wrapped = match req {
        traced @ gk_server::Request::Trace { .. } => traced,
        inner => gk_server::Request::Trace {
            inner: Box::new(inner),
        },
    };
    let resp = gk_client::Client::lazy(addr)
        .request(&wrapped)
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let _ = writeln!(out, "{}", resp.render());
    if resp.is_err() {
        return Err(format!("server answered: {}", resp.render()));
    }
    Ok(())
}

fn cmd_recover(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse_with_switches(
        args,
        &["data-dir", "engine", "threads", "fsync"],
        &["verify"],
    )?;
    if !f.positional.is_empty() {
        return Err("recover takes flags only (graph and keys come from the snapshot)".into());
    }
    let dir = f
        .get("data-dir")
        .ok_or_else(|| "recover requires --data-dir DIR".to_string())?;
    let threads = f.get_parse("threads", 0usize)?;
    let engine = ChaseEngine::parse(f.get("engine").unwrap_or("incremental"), threads)?;
    let fsync = FsyncMode::parse(f.get("fsync").unwrap_or("batch"))?;
    let dur = Durability::in_dir(dir).with_fsync(fsync);
    let t0 = std::time::Instant::now();
    let Some((index, report)) = gk_server::EmIndex::recover_durable(&dur, engine)? else {
        return Err(format!("no persisted state in {dir:?}"));
    };
    let elapsed = t0.elapsed();
    let _ = writeln!(out, "{}", recovery_line(&report, dir));
    let snap = index.snapshot();
    let _ = writeln!(
        out,
        "state: version={} entities={} triples={} clusters={} identified_pairs={} keys={} in {elapsed:?}",
        snap.version,
        snap.graph.num_entities(),
        snap.graph.num_triples(),
        snap.num_clusters(),
        snap.eq.num_identified_pairs(),
        index.keys().cardinality(),
    );
    if f.has("verify") {
        // Cross-check: a from-scratch chase of the recovered graph must
        // produce exactly the recovered equivalence classes.
        let fresh = chase_reference(&snap.graph, &snap.compiled, ChaseOrder::Deterministic);
        if fresh.eq.classes() != snap.eq.classes() {
            return Err(format!(
                "VERIFY FAILED: recovered Eq has {} cluster(s) but a from-scratch \
                 chase of the recovered graph finds {} — the data dir is inconsistent",
                snap.num_clusters(),
                fresh.eq.classes().len()
            ));
        }
        let _ = writeln!(
            out,
            "VERIFIED: recovered Eq equals a from-scratch chase ({} clusters, {} pairs)",
            snap.num_clusters(),
            fresh.eq.num_identified_pairs()
        );
    }
    Ok(())
}

fn cmd_query(args: &[String], out: &mut String) -> Result<(), String> {
    let f = Flags::parse_with_switches(args, &["depth"], &["stdin"])?;
    let [addr, verb_and_args @ ..] = f.positional.as_slice() else {
        return Err("query takes an address and a request (e.g. SAME a b)".into());
    };
    if f.has("stdin") {
        if !verb_and_args.is_empty() {
            return Err("query --stdin reads requests from stdin, not the command line".into());
        }
        let depth = f.get_parse("depth", 64usize)?;
        let text = std::io::read_to_string(std::io::stdin())
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return run_query_stream(addr, &text, depth, out);
    }
    if verb_and_args.is_empty() {
        return Err("query needs a request after the address (e.g. SAME a b)".into());
    }
    let line = verb_and_args.join(" ");
    // Parse client-side: a malformed request fails here with the same
    // usage message the server would answer, without a round trip.
    let req = gk_server::Request::parse(&line).map_err(|e| e.to_string())?;
    let resp = gk_client::Client::lazy(addr)
        .request(&req)
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let _ = writeln!(out, "{}", resp.render());
    if resp.is_err() {
        return Err(format!("server answered: {}", resp.render()));
    }
    Ok(())
}

/// `query --stdin`: one request per line, pipelined `depth`-deep through
/// one connection; each response paragraph is printed followed by a blank
/// line (the same transcript shape the TCP framing uses).
fn run_query_stream(addr: &str, text: &str, depth: usize, out: &mut String) -> Result<(), String> {
    let mut reqs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        reqs.push(
            gk_server::Request::parse(line).map_err(|e| format!("stdin line {}: {e}", i + 1))?,
        );
    }
    if reqs.is_empty() {
        return Err("no requests on stdin".into());
    }
    let mut client = gk_client::Client::lazy(addr);
    let resps = client
        .run_pipelined(&reqs, depth)
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    for r in &resps {
        let _ = writeln!(out, "{}", r.render());
        out.push('\n');
    }
    let errors = resps.iter().filter(|r| r.is_err()).count();
    if errors > 0 {
        return Err(format!("server answered: {errors} request(s) failed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> String {
        let d = std::env::temp_dir().join(format!("gk-cli-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.to_string_lossy().into_owned()
    }

    fn write(path: &str, text: &str) {
        std::fs::write(path, text).unwrap();
    }

    const G: &str = r#"
        alb1:album name_of "Anthology 2"
        alb1:album release_year "1996"
        alb2:album name_of "ANTHOLOGY 2"
        alb2:album release_year "1996"
    "#;

    const K: &str = r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_command() {
        let d = tmpdir("stats");
        write(&format!("{d}/g.triples"), G);
        let mut out = String::new();
        run_to(&args(&["stats", &format!("{d}/g.triples")]), &mut out).unwrap();
        assert!(out.contains("2 entities"));
    }

    #[test]
    fn keys_command() {
        let d = tmpdir("keys");
        write(&format!("{d}/k.gk"), K);
        let mut out = String::new();
        run_to(&args(&["keys", &format!("{d}/k.gk")]), &mut out).unwrap();
        assert!(out.contains("1 keys"));
        assert!(out.contains("value-based"));
    }

    #[test]
    fn validate_clean_and_dirty() {
        let d = tmpdir("validate");
        write(&format!("{d}/g.triples"), G);
        write(&format!("{d}/k.gk"), K);
        let mut out = String::new();
        // Case differs: exact match finds no duplicates.
        run_to(
            &args(&["validate", &format!("{d}/g.triples"), &format!("{d}/k.gk")]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("OK"), "{out}");
    }

    #[test]
    fn match_with_normalizer_and_explain() {
        let d = tmpdir("match");
        write(&format!("{d}/g.triples"), G);
        write(&format!("{d}/k.gk"), K);
        let mut out = String::new();
        run_to(
            &args(&[
                "match",
                &format!("{d}/g.triples"),
                &format!("{d}/k.gk"),
                "--algo",
                "mr-opt",
                "-p",
                "2",
                "--normalize",
                "casefold",
                "--explain",
                "alb1,alb2",
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("cluster: alb1 = alb2"), "{out}");
        assert!(out.contains("proof for alb1 <=> alb2"), "{out}");
    }

    #[test]
    fn all_algorithms_run() {
        let d = tmpdir("algos");
        write(&format!("{d}/g.triples"), G);
        write(&format!("{d}/k.gk"), K);
        for algo in ["ref", "mr", "mr-opt", "mr-vf2", "vc", "vc-opt"] {
            let mut out = String::new();
            run_to(
                &args(&[
                    "match",
                    &format!("{d}/g.triples"),
                    &format!("{d}/k.gk"),
                    "--algo",
                    algo,
                    "--normalize",
                    "casefold",
                ]),
                &mut out,
            )
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(out.contains("cluster"), "{algo}: {out}");
        }
    }

    #[test]
    fn chase_command_engines_agree() {
        let d = tmpdir("chase");
        write(
            &format!("{d}/g.triples"),
            r#"
            alb1:album name_of "Anthology 2"
            alb1:album release_year "1996"
            alb2:album name_of "Anthology 2"
            alb2:album release_year "1996"
            "#,
        );
        write(&format!("{d}/k.gk"), K);
        let mut cluster_lines = Vec::new();
        for engine_args in [
            vec!["--engine", "reference"],
            vec!["--engine", "parallel", "--threads", "2"],
            vec!["--engine", "parallel", "--threads", "1"],
            vec!["--engine", "parallel", "--threads", "4", "--seed", "7"],
        ] {
            let mut a = args(&["chase", &format!("{d}/g.triples"), &format!("{d}/k.gk")]);
            a.extend(engine_args.iter().map(|s| s.to_string()));
            let mut out = String::new();
            run_to(&a, &mut out).unwrap();
            assert!(out.contains("identified_pairs=1"), "{out}");
            cluster_lines.push(
                out.lines()
                    .filter(|l| l.starts_with("cluster"))
                    .map(String::from)
                    .collect::<Vec<_>>(),
            );
        }
        assert!(cluster_lines.windows(2).all(|w| w[0] == w[1]));
        // The incremental engine is serve-only.
        let mut out = String::new();
        assert!(run_to(
            &args(&[
                "chase",
                &format!("{d}/g.triples"),
                &format!("{d}/k.gk"),
                "--engine",
                "incremental"
            ]),
            &mut out
        )
        .is_err());
    }

    #[test]
    fn gen_roundtrips_through_match() {
        let d = tmpdir("gen");
        let mut out = String::new();
        run_to(
            &args(&[
                "gen", "--flavor", "google", "--scale", "0.05", "--keys", "6", "--out", &d,
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        // The generated files parse and match.
        let mut out2 = String::new();
        run_to(
            &args(&[
                "match",
                &format!("{d}/graph.triples"),
                &format!("{d}/keys.gk"),
            ]),
            &mut out2,
        )
        .unwrap();
        assert!(out2.contains("cluster"), "{out2}");
        // Clusters must equal the planted truth.
        let truth = std::fs::read_to_string(format!("{d}/truth.tsv")).unwrap();
        let n_truth = truth.lines().count();
        let n_clusters = out2.lines().filter(|l| l.starts_with("cluster")).count();
        assert_eq!(n_clusters, n_truth);
    }

    #[test]
    fn discover_mines_and_output_reparses() {
        let d = tmpdir("discover");
        write(
            &format!("{d}/g.triples"),
            r#"
            a:album name "X"
            a:album year "1996"
            b:album name "X"
            b:album year "1997"
            "#,
        );
        let mut out = String::new();
        run_to(&args(&["discover", &format!("{d}/g.triples")]), &mut out).unwrap();
        assert!(out.contains("mined"), "{out}");
        // The emitted DSL must parse back (comments are legal in the DSL).
        let keys = gk_core::parse_keys(&out).unwrap();
        assert!(!keys.is_empty());
    }

    #[test]
    fn unknown_command_and_flags_error() {
        let mut out = String::new();
        assert!(run_to(&args(&["bogus"]), &mut out).is_err());
        assert!(run_to(&args(&["stats", "--nope", "x"]), &mut out).is_err());
        assert!(run_to(&args(&[]), &mut out).is_err());
    }

    #[test]
    fn query_command_round_trips_against_live_server() {
        // Start the service in-process on an ephemeral port, then drive it
        // through the `query` subcommand exactly as a shell user would.
        let g = gk_graph::parse_graph(G).unwrap();
        let ks = gk_core::KeySet::parse(K).unwrap();
        let server = std::sync::Arc::new(gk_server::Server::new(g, ks));
        let handle = gk_server::serve(server, "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr().to_string();

        let mut out = String::new();
        run_to(&args(&["query", &addr, "SAME", "alb1", "alb2"]), &mut out).unwrap();
        // Names differ only by case and no normalizer runs in the server:
        // the albums are distinct under these keys.
        assert!(out.starts_with("NO"), "{out}");

        let mut out2 = String::new();
        run_to(&args(&["query", &addr, "STATS"]), &mut out2).unwrap();
        assert!(out2.contains("entities=2"), "{out2}");

        // Server-side errors surface as CLI errors.
        let mut out3 = String::new();
        assert!(run_to(&args(&["query", &addr, "SAME", "ghost", "alb1"]), &mut out3).is_err());
        handle.stop();
    }

    #[test]
    fn query_stream_pipelines_requests_and_manages_keys() {
        let g = gk_graph::parse_graph(
            r#"
            alb1:album name_of "Anthology 2"
            alb1:album release_year "1996"
            alb2:album name_of "Anthology 2"
            alb2:album release_year "1996"
            "#,
        )
        .unwrap();
        let ks = gk_core::KeySet::parse(K).unwrap();
        let server = std::sync::Arc::new(gk_server::Server::new(g, ks));
        let handle = gk_server::serve(server, "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr().to_string();

        let script = "\
            PING\n\
            # comments and blank lines are skipped\n\
            \n\
            SAME alb1 alb2\n\
            ADDKEY key \"NM\" album(x) { x -name_of-> n*; }\n\
            KEYS\n\
            STATS\n";
        let mut out = String::new();
        run_query_stream(&addr, script, 3, &mut out).unwrap();
        let paragraphs: Vec<&str> = out.trim_end().split("\n\n").collect();
        assert_eq!(paragraphs.len(), 5, "{out}");
        assert_eq!(paragraphs[0], "PONG");
        assert!(paragraphs[1].starts_with("YES"), "{out}");
        assert!(paragraphs[2].starts_with("OK added key=\"NM\""), "{out}");
        assert!(
            paragraphs[3].starts_with("KEYS n=2 active=2 epoch=1"),
            "{out}"
        );
        assert!(paragraphs[4].contains("key_epoch=1"), "{out}");

        // A stream with a server-side error prints everything and then
        // reports the failure count.
        let mut out2 = String::new();
        let err = run_query_stream(&addr, "SAME ghost alb1\nPING\n", 8, &mut out2).unwrap_err();
        assert!(err.contains("1 request(s) failed"), "{err}");
        assert!(out2.contains("ERR unknown entity"), "{out2}");
        assert!(out2.contains("PONG"), "{out2}");

        // A malformed line fails client-side, before any round trip.
        let mut out3 = String::new();
        let err = run_query_stream(&addr, "PING\nFROB x\n", 8, &mut out3).unwrap_err();
        assert!(err.contains("stdin line 2"), "{err}");
        handle.stop();
    }

    #[test]
    fn serve_and_query_argument_errors() {
        let mut out = String::new();
        assert!(run_to(&args(&["serve"]), &mut out).is_err());
        assert!(run_to(&args(&["serve", "only-one-file"]), &mut out).is_err());
        assert!(run_to(&args(&["query"]), &mut out).is_err());
        assert!(run_to(&args(&["query", "127.0.0.1:1"]), &mut out).is_err());
        // Unreachable address is an error, not a hang.
        assert!(run_to(&args(&["query", "127.0.0.1:1", "PING"]), &mut out).is_err());
        // --fsync without --data-dir is a configuration mistake.
        let d = tmpdir("serve-fsync");
        write(&format!("{d}/g.triples"), G);
        write(&format!("{d}/k.gk"), K);
        assert!(run_to(
            &args(&[
                "serve",
                &format!("{d}/g.triples"),
                &format!("{d}/k.gk"),
                "--fsync",
                "always"
            ]),
            &mut out
        )
        .is_err());
    }

    #[test]
    fn snapshot_command_drives_a_durable_server() {
        use gk_core::ChaseEngine;
        let d = tmpdir("snapshot-cmd");
        let dur = Durability::in_dir(format!("{d}/data"));
        let g = gk_graph::parse_graph(G).unwrap();
        let ks = gk_core::KeySet::parse(K).unwrap();
        let (server, _) =
            gk_server::Server::with_durability(g, ks, ChaseEngine::default(), &dur).unwrap();
        let handle = gk_server::serve(std::sync::Arc::new(server), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr().to_string();

        let mut out = String::new();
        run_to(&args(&["snapshot", &addr]), &mut out).unwrap();
        assert!(out.starts_with("OK snapshot_seq="), "{out}");
        handle.stop();

        // Arg errors.
        let mut out2 = String::new();
        assert!(run_to(&args(&["snapshot"]), &mut out2).is_err());
    }

    #[test]
    fn metrics_command_prints_the_exposition() {
        let g = gk_graph::parse_graph(G).unwrap();
        let ks = gk_core::KeySet::parse(K).unwrap();
        let server = std::sync::Arc::new(gk_server::Server::new(g, ks));
        let handle = gk_server::serve(std::sync::Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr().to_string();
        server.handle("PING");

        let mut out = String::new();
        run_to(&args(&["metrics", &addr]), &mut out).unwrap();
        assert!(
            out.contains("# TYPE gk_requests_ping_total counter"),
            "{out}"
        );
        assert!(out.contains("gk_requests_ping_total 1"), "{out}");
        assert!(out.contains("gk_connections_total"), "{out}");
        assert!(
            out.starts_with("# HELP "),
            "the CLI prints the bare exposition, not the wire tag: {out}"
        );
        handle.stop();

        // Arg errors.
        let mut out2 = String::new();
        assert!(run_to(&args(&["metrics"]), &mut out2).is_err());
    }

    #[test]
    fn trace_command_prints_the_span_tree_and_the_answer() {
        let g = gk_graph::parse_graph(G).unwrap();
        let ks = gk_core::KeySet::parse(K).unwrap();
        let server = std::sync::Arc::new(gk_server::Server::new(g, ks));
        let handle = gk_server::serve(std::sync::Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr().to_string();

        let mut out = String::new();
        run_to(&args(&["trace", &addr, "DUPS", "alb1"]), &mut out).unwrap();
        assert!(out.starts_with("TRACE id="), "{out}");
        assert!(out.contains("span=dups"), "{out}");
        assert!(out.contains("span=lookup"), "{out}");
        assert!(out.contains("span=analyze"), "{out}");
        assert!(out.contains("\nANSWER\n"), "{out}");

        // An explicit TRACE prefix is not double-wrapped.
        let mut out2 = String::new();
        run_to(&args(&["trace", &addr, "TRACE", "PING"]), &mut out2).unwrap();
        assert!(out2.contains("span=ping"), "{out2}");
        assert!(out2.contains("PONG"), "{out2}");

        // Arg errors.
        let mut out3 = String::new();
        assert!(run_to(&args(&["trace"]), &mut out3).is_err());
        assert!(run_to(&args(&["trace", &addr]), &mut out3).is_err());
        handle.stop();
    }

    #[test]
    fn recover_command_verifies_a_data_dir() {
        use gk_core::ChaseEngine;
        let d = tmpdir("recover-cmd");
        let data = format!("{d}/data");
        let dur = Durability::in_dir(&data);
        let g = gk_graph::parse_graph(
            r#"
            alb1:album name_of "Anthology 2"
            alb1:album release_year "1996"
            alb2:album name_of "Anthology 2"
            alb2:album release_year "1996"
            "#,
        )
        .unwrap();
        let ks = gk_core::KeySet::parse(K).unwrap();
        let (server, _) =
            gk_server::Server::with_durability(g, ks, ChaseEngine::default(), &dur).unwrap();
        let r = server
            .handle(r#"INSERT alb3:album name_of "Anthology 2" ; alb3:album release_year "1996""#);
        assert!(r.starts_with("OK"), "{r}");
        drop(server);

        let mut out = String::new();
        run_to(
            &args(&["recover", "--data-dir", &data, "--verify"]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("recovered from"), "{out}");
        assert!(out.contains("version=1"), "{out}");
        assert!(out.contains("VERIFIED"), "{out}");

        // An empty directory has nothing to recover.
        let mut out2 = String::new();
        assert!(run_to(
            &args(&["recover", "--data-dir", &format!("{d}/empty")]),
            &mut out2
        )
        .is_err());
        // Missing --data-dir is an argument error.
        assert!(run_to(&args(&["recover"]), &mut out2).is_err());
    }
}
