//! # gk-vertexcentric — an asynchronous vertex-centric engine
//!
//! The paper's second entity-matching algorithm (`EM_VC`, §5) runs on
//! GraphLab (the paper's reference \[31\]): a *vertex program* executes in
//! parallel at each vertex
//! and interacts with neighbors via **asynchronous message passing** — no
//! global rounds, no barrier for stragglers to block, no global state to
//! synchronize. This crate is that substrate, in-process (see DESIGN.md's
//! substitution table): vertices are sharded over `p` worker threads, each
//! worker drains its own mailbox, and termination is detected when no
//! message is in flight.
//!
//! Two execution modes share one [`VertexProgram`] API:
//!
//! * [`Engine::run`] — real OS threads with per-worker mpsc mailboxes;
//!   genuine asynchrony, used by tests and production runs;
//! * [`Engine::run_simulated`] — a deterministic discrete scheduler that
//!   executes the same sharding on one thread, charging each message's
//!   processing time to its owning worker. Its
//!   [`sim_makespan`](EngineStats::sim_makespan) (slowest worker's busy
//!   time) is the faithful scalability metric when benchmarking `p`
//!   workers on a machine with fewer cores — exactly the paper's
//!   `t(|G|,|Σ|)/p` parallel-scalability measure (§3.3).
//!
//! Properties preserved from the paper's model: asynchrony (no barriers),
//! vertex locality, and message-count accounting (the cost §5.2's bounded
//! messages reduce).
//!
//! ```
//! use gk_vertexcentric::{Ctx, Engine, VertexProgram};
//!
//! /// Relaxation-style shortest hop counts over a fixed edge list.
//! struct Bfs {
//!     adj: Vec<Vec<usize>>,
//! }
//! impl VertexProgram for Bfs {
//!     type State = u32;
//!     type Msg = u32;
//!     fn init_state(&self, _v: usize) -> u32 { u32::MAX }
//!     fn on_start(&self, v: usize, d: &mut u32, ctx: &mut Ctx<'_, u32>) {
//!         *d = 0;
//!         for &n in &self.adj[v] { ctx.send(n, 1); }
//!     }
//!     fn on_message(&self, v: usize, d: &mut u32, m: u32, ctx: &mut Ctx<'_, u32>) {
//!         if m < *d {
//!             *d = m;
//!             for &n in &self.adj[v] { ctx.send(n, m + 1); }
//!         }
//!     }
//! }
//!
//! let prog = Bfs { adj: vec![vec![1], vec![2], vec![]] };
//! let engine = Engine::new(2);
//! let (dist, _stats) = engine.run(&prog, 3, &[0]);
//! assert_eq!(dist, vec![0, 1, 2]);
//! let (dist2, stats) = engine.run_simulated(&prog, 3, &[0]);
//! assert_eq!(dist2, dist);
//! assert!(stats.sim_makespan > std::time::Duration::ZERO);
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::time::{Duration, Instant};

/// A vertex program: per-vertex state plus message handlers.
///
/// The program object itself is shared (`&self`) across workers and must be
/// `Sync`; all mutable per-vertex data lives in `State`, which the engine
/// hands to handlers exclusively (each vertex is owned by one worker).
pub trait VertexProgram: Sync {
    /// Mutable per-vertex state.
    type State: Send;
    /// Message type.
    type Msg: Send;

    /// Initial state of vertex `v`.
    fn init_state(&self, v: usize) -> Self::State;

    /// Called once for each initially activated vertex, before any message
    /// delivery.
    fn on_start(&self, v: usize, state: &mut Self::State, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (v, state, ctx);
    }

    /// Called for every message delivered to vertex `v`.
    fn on_message(
        &self,
        v: usize,
        state: &mut Self::State,
        msg: Self::Msg,
        ctx: &mut Ctx<'_, Self::Msg>,
    );
}

/// Handler context: lets a vertex send messages. The engine wires it to
/// either the live channels (threaded mode) or the scheduler queue
/// (simulated mode).
pub struct Ctx<'a, M> {
    sink: &'a mut dyn FnMut(usize, M),
}

impl<M: Send> Ctx<'_, M> {
    /// Sends `msg` to vertex `to` (asynchronous; never blocks).
    #[inline]
    pub fn send(&mut self, to: usize, msg: M) {
        (self.sink)(to, msg);
    }
}

enum Envelope<M> {
    User(usize, M),
    Start(usize),
    Stop,
}

/// Execution metrics of one engine run.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// User messages sent (excludes initial activations).
    pub messages: u64,
    /// Initially activated vertices.
    pub activations: usize,
    /// Messages processed per worker (load balance diagnostic).
    pub per_worker: Vec<u64>,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// Busy time of the slowest worker. In simulated mode this is the
    /// makespan of an ideal `p`-worker execution; in threaded mode it is
    /// measured under whatever contention the host has.
    pub sim_makespan: Duration,
}

/// An asynchronous vertex-centric engine with `p` workers.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    workers: usize,
}

impl Engine {
    /// Creates an engine with `p ≥ 1` worker threads.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "the engine needs at least one worker");
        Engine { workers: p }
    }

    /// The worker count `p`.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `program` over `n` vertices on real threads, activating
    /// `initial` first, until no message is in flight. Returns the final
    /// vertex states and stats.
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        n: usize,
        initial: &[usize],
    ) -> (Vec<P::State>, EngineStats) {
        let p = self.workers;
        let t0 = Instant::now();

        // Shard states: worker w owns vertices {v | v % p == w}, stored at
        // local index v / p — no locks needed on vertex state.
        let mut shards: Vec<Vec<P::State>> = (0..p).map(|_| Vec::new()).collect();
        for v in 0..n {
            shards[v % p].push(program.init_state(v));
        }

        let (senders, receivers): (Vec<Sender<Envelope<P::Msg>>>, Vec<_>) =
            (0..p).map(|_| channel()).unzip();
        let in_flight = AtomicI64::new(0);
        let sent = AtomicU64::new(0);

        // Seed initial activations (counted like messages so termination
        // detection covers them).
        in_flight.fetch_add(initial.len() as i64, Ordering::SeqCst);
        for &v in initial {
            assert!(v < n, "initial vertex {v} out of range");
            senders[v % p].send(Envelope::Start(v)).expect("send start");
        }
        if initial.is_empty() {
            let stats = EngineStats {
                per_worker: vec![0; p],
                elapsed: t0.elapsed(),
                ..Default::default()
            };
            return (collect_states(shards, n, p), stats);
        }

        let mut per_worker = vec![0u64; p];
        let mut busy = vec![Duration::ZERO; p];
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .zip(shards.iter_mut())
                .map(|(rx, shard)| {
                    // `std::sync::mpsc::Sender` is `Send + Clone` but not
                    // `Sync`: each worker owns its own clone of every
                    // mailbox handle instead of sharing one vector.
                    let senders: Vec<Sender<Envelope<P::Msg>>> = senders.clone();
                    let in_flight = &in_flight;
                    let sent = &sent;
                    scope.spawn(move || {
                        let mut processed = 0u64;
                        let mut busy = Duration::ZERO;
                        // Count before enqueue so the in-flight counter can
                        // never hit zero while a message is undelivered.
                        let mut sink = |to: usize, msg: P::Msg| {
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            sent.fetch_add(1, Ordering::Relaxed);
                            senders[to % senders.len()]
                                .send(Envelope::User(to, msg))
                                .expect("worker mailbox closed");
                        };
                        while let Ok(env) = rx.recv() {
                            let t = Instant::now();
                            match env {
                                Envelope::Stop => break,
                                Envelope::Start(v) => {
                                    let mut ctx = Ctx { sink: &mut sink };
                                    program.on_start(v, &mut shard[v / senders.len()], &mut ctx);
                                }
                                Envelope::User(v, m) => {
                                    processed += 1;
                                    let mut ctx = Ctx { sink: &mut sink };
                                    program.on_message(
                                        v,
                                        &mut shard[v / senders.len()],
                                        m,
                                        &mut ctx,
                                    );
                                }
                            }
                            busy += t.elapsed();
                            // The handler that drives the counter to zero
                            // broadcasts Stop.
                            if in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                                for s in &senders {
                                    let _ = s.send(Envelope::Stop);
                                }
                            }
                        }
                        (processed, busy)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                let (processed, b) = h.join().expect("worker panicked");
                per_worker[w] = processed;
                busy[w] = b;
            }
        });

        let stats = EngineStats {
            messages: sent.load(Ordering::Relaxed),
            activations: initial.len(),
            per_worker,
            elapsed: t0.elapsed(),
            sim_makespan: busy.into_iter().max().unwrap_or_default(),
        };
        (collect_states(shards, n, p), stats)
    }

    /// Runs `program` with a deterministic single-threaded discrete
    /// scheduler over `p` *virtual* workers: mailboxes are drained
    /// round-robin, and each message's processing time is charged to its
    /// owning worker. `sim_makespan` is then an ideal-parallel makespan,
    /// unaffected by host core count.
    pub fn run_simulated<P: VertexProgram>(
        &self,
        program: &P,
        n: usize,
        initial: &[usize],
    ) -> (Vec<P::State>, EngineStats) {
        let p = self.workers;
        let t0 = Instant::now();
        let mut shards: Vec<Vec<P::State>> = (0..p).map(|_| Vec::new()).collect();
        for v in 0..n {
            shards[v % p].push(program.init_state(v));
        }
        let mut queues: Vec<VecDeque<Envelope<P::Msg>>> = (0..p).map(|_| VecDeque::new()).collect();
        for &v in initial {
            assert!(v < n, "initial vertex {v} out of range");
            queues[v % p].push_back(Envelope::Start(v));
        }

        let mut busy = vec![Duration::ZERO; p];
        let mut per_worker = vec![0u64; p];
        let mut messages = 0u64;
        let mut outbox: Vec<(usize, P::Msg)> = Vec::new();
        loop {
            let mut idle = true;
            for w in 0..p {
                let Some(env) = queues[w].pop_front() else {
                    continue;
                };
                idle = false;
                let t = Instant::now();
                {
                    let mut sink = |to: usize, msg: P::Msg| outbox.push((to, msg));
                    let mut ctx = Ctx { sink: &mut sink };
                    match env {
                        Envelope::Stop => {}
                        Envelope::Start(v) => program.on_start(v, &mut shards[w][v / p], &mut ctx),
                        Envelope::User(v, m) => {
                            per_worker[w] += 1;
                            program.on_message(v, &mut shards[w][v / p], m, &mut ctx)
                        }
                    }
                }
                busy[w] += t.elapsed();
                messages += outbox.len() as u64;
                for (to, msg) in outbox.drain(..) {
                    queues[to % p].push_back(Envelope::User(to, msg));
                }
            }
            if idle {
                break;
            }
        }

        let stats = EngineStats {
            messages,
            activations: initial.len(),
            per_worker,
            elapsed: t0.elapsed(),
            sim_makespan: busy.into_iter().max().unwrap_or_default(),
        };
        (collect_states(shards, n, p), stats)
    }
}

/// Un-shards the per-worker state vectors back into vertex order.
fn collect_states<S>(shards: Vec<Vec<S>>, n: usize, p: usize) -> Vec<S> {
    let mut slots: Vec<Option<S>> = (0..n).map(|_| None).collect();
    for (w, shard) in shards.into_iter().enumerate() {
        for (i, s) in shard.into_iter().enumerate() {
            slots[i * p + w] = Some(s);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("all vertices sharded"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Bfs {
        adj: Vec<Vec<usize>>,
    }

    impl VertexProgram for Bfs {
        type State = u32;
        type Msg = u32;
        fn init_state(&self, _v: usize) -> u32 {
            u32::MAX
        }
        fn on_start(&self, v: usize, d: &mut u32, ctx: &mut Ctx<'_, u32>) {
            *d = 0;
            for &nb in &self.adj[v] {
                ctx.send(nb, 1);
            }
        }
        fn on_message(&self, v: usize, d: &mut u32, m: u32, ctx: &mut Ctx<'_, u32>) {
            if m < *d {
                *d = m;
                for &nb in &self.adj[v] {
                    ctx.send(nb, m + 1);
                }
            }
        }
    }

    fn ring(n: usize) -> Bfs {
        Bfs {
            adj: (0..n).map(|v| vec![(v + 1) % n]).collect(),
        }
    }

    #[test]
    fn bfs_on_a_ring() {
        let n = 10;
        let engine = Engine::new(3);
        let (dist, stats) = engine.run(&ring(n), n, &[0]);
        let expected: Vec<u32> = (0..n as u32).collect();
        assert_eq!(dist, expected);
        assert!(stats.messages >= n as u64 - 1);
        assert_eq!(stats.activations, 1);
    }

    #[test]
    fn monotone_program_is_deterministic_across_worker_counts() {
        // Min-propagation converges to the same fixpoint regardless of
        // asynchrony — exactly why EM_VC's Flag updates are safe (§5.1).
        let n = 50;
        let prog = Bfs {
            adj: (0..n)
                .map(|v| vec![(v + 1) % n, (v + 7) % n, (v * 3 + 1) % n])
                .collect(),
        };
        let base = Engine::new(1).run(&prog, n, &[0]).0;
        for p in [2, 4, 8] {
            assert_eq!(Engine::new(p).run(&prog, n, &[0]).0, base, "p={p}");
        }
    }

    #[test]
    fn simulated_matches_threaded() {
        let n = 40;
        let prog = Bfs {
            adj: (0..n).map(|v| vec![(v + 1) % n, (v + 9) % n]).collect(),
        };
        let threaded = Engine::new(4).run(&prog, n, &[0]).0;
        let (sim, stats) = Engine::new(4).run_simulated(&prog, n, &[0]);
        assert_eq!(sim, threaded);
        assert_eq!(stats.per_worker.len(), 4);
        assert!(stats.per_worker.iter().sum::<u64>() > 0);
    }

    #[test]
    fn simulated_is_deterministic() {
        let n = 30;
        let prog = ring(n);
        let a = Engine::new(3).run_simulated(&prog, n, &[0]);
        let b = Engine::new(3).run_simulated(&prog, n, &[0]);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.messages, b.1.messages);
        assert_eq!(a.1.per_worker, b.1.per_worker);
    }

    #[test]
    fn no_initial_activation_terminates_immediately() {
        let engine = Engine::new(4);
        let (states, stats) = engine.run(&ring(5), 5, &[]);
        assert_eq!(states, vec![u32::MAX; 5]);
        assert_eq!(stats.messages, 0);
        let (states2, stats2) = engine.run_simulated(&ring(5), 5, &[]);
        assert_eq!(states2, vec![u32::MAX; 5]);
        assert_eq!(stats2.messages, 0);
    }

    #[test]
    fn multiple_initial_activations() {
        let n = 12;
        let engine = Engine::new(4);
        let (dist, stats) = engine.run(&ring(n), n, &[0, 6]);
        // Two BFS sources on a directed ring: distance = min hop from 0/6.
        for (v, &d) in dist.iter().enumerate() {
            let d0 = (v + n) % n;
            let d6 = (v + n - 6) % n;
            assert_eq!(d, d0.min(d6) as u32, "vertex {v}");
        }
        assert_eq!(stats.activations, 2);
    }

    #[test]
    fn per_worker_counts_sum_to_processed_messages() {
        let n = 30;
        let engine = Engine::new(5);
        let (_, stats) = engine.run(&ring(n), n, &[0]);
        let total: u64 = stats.per_worker.iter().sum();
        assert_eq!(total, stats.messages);
        assert_eq!(stats.per_worker.len(), 5);
    }

    #[test]
    fn states_collected_in_vertex_order() {
        struct Identity;
        impl VertexProgram for Identity {
            type State = usize;
            type Msg = ();
            fn init_state(&self, v: usize) -> usize {
                v * 10
            }
            fn on_message(&self, _: usize, _: &mut usize, _: (), _: &mut Ctx<'_, ()>) {}
        }
        let (states, _) = Engine::new(3).run(&Identity, 7, &[]);
        assert_eq!(states, vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn messages_between_all_worker_pairs() {
        // A "star gossip": one vertex sends to every vertex; checks
        // cross-shard channels work in every direction.
        struct Gossip {
            n: usize,
        }
        impl VertexProgram for Gossip {
            type State = u32;
            type Msg = ();
            fn init_state(&self, _: usize) -> u32 {
                0
            }
            fn on_start(&self, _v: usize, _s: &mut u32, ctx: &mut Ctx<'_, ()>) {
                for u in 0..self.n {
                    ctx.send(u, ());
                }
            }
            fn on_message(&self, _v: usize, s: &mut u32, _: (), _: &mut Ctx<'_, ()>) {
                *s += 1;
            }
        }
        let n = 16;
        let (states, stats) = Engine::new(4).run(&Gossip { n }, n, &[3]);
        assert_eq!(states, vec![1u32; n]);
        assert_eq!(stats.messages, n as u64);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Engine::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_activation_rejected() {
        let _ = Engine::new(1).run(&ring(3), 3, &[5]);
    }
}
