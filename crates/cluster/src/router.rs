//! The router: the cluster's front door, speaking the same line-in /
//! paragraph-out protocol as a standalone `gk-server`.
//!
//! Queries forward raw (byte-for-byte, including malformed lines — the
//! shard's own `ERR usage:` answer comes back unchanged) to a shard picked
//! by hashing the first entity argument; any converged shard answers
//! identically, the hash just spreads read load.  Mutations go through the
//! [`Coordinator`]: broadcast to every replica, then the distributed chase
//! converges before the client gets its answer.  `METRICS` answers the
//! router's own registry (the `gk_cluster_*` family); shard metrics stay
//! reachable on the shards themselves.

use crate::coordinator::Coordinator;
use gk_client::Client;
use gk_metrics::Registry;
use gk_server::{Request, Response, MAX_REQUEST_LINE};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the heartbeat re-converges the cluster with no update in
/// flight — this is what heals a shard that restarted from its own WAL
/// (its un-snapshotted external merges are re-shipped from the global log).
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(200);

/// A running router: accept loop + heartbeat thread.
pub struct RouterHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound front address (useful with `:0`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the accept loop and the heartbeat.  Connection handler
    /// threads exit when their clients disconnect.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `listen` and serves the cluster front until `stop()`.
pub fn serve_router(
    coordinator: Arc<Coordinator>,
    registry: Arc<Registry>,
    listen: &str,
    heartbeat: Duration,
) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?.to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    {
        let (coord, reg, stop) = (coordinator.clone(), registry.clone(), stop.clone());
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &coord, &reg, &stop);
        }));
    }
    if !heartbeat.is_zero() {
        let (coord, stop) = (coordinator, stop.clone());
        threads.push(std::thread::spawn(move || {
            heartbeat_loop(&coord, heartbeat, &stop);
        }));
    }
    Ok(RouterHandle {
        addr,
        stop,
        threads,
    })
}

fn accept_loop(
    listener: &TcpListener,
    coord: &Arc<Coordinator>,
    reg: &Arc<Registry>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        match listener.accept() {
            Ok((conn, _)) => {
                let (coord, reg) = (coord.clone(), reg.clone());
                std::thread::spawn(move || {
                    let _ = handle_conn(conn, &coord, &reg);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn heartbeat_loop(coord: &Arc<Coordinator>, interval: Duration, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        // Sleep in short slices so stop() returns promptly.
        let mut left = interval;
        while !left.is_zero() && !stop.load(Ordering::SeqCst) {
            let step = left.min(Duration::from_millis(50));
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // A shard being down mid-restart is expected; the next beat heals.
        let _ = coord.converge();
    }
}

/// Per-connection lazily dialed query clients, one per shard.
struct QueryConns {
    addrs: Vec<String>,
    conns: Vec<Option<Client>>,
}

impl QueryConns {
    fn new(addrs: &[String]) -> QueryConns {
        QueryConns {
            addrs: addrs.to_vec(),
            conns: addrs.iter().map(|_| None).collect(),
        }
    }

    fn forward(&mut self, shard: usize, line: &str) -> io::Result<String> {
        let c = self.conns[shard].get_or_insert_with(|| Client::lazy(&self.addrs[shard]));
        c.request_line(line)
    }
}

/// Which shard should answer a read — hash of the first entity argument,
/// so a hot entity's repeated queries hit one shard's answer cache.
/// Reads with no entity argument (STATS, KEYS, HELP, …) go to shard 0.
fn affinity(req: &Request, n: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let label = match req {
        Request::Same { a, .. } | Request::Explain { a, .. } => Some(a),
        Request::Dups { entity } | Request::Rep { entity } => Some(entity),
        Request::Trace { inner } => return affinity(inner, n),
        _ => None,
    };
    match label {
        Some(l) => {
            let mut h = rustc_hash::FxHasher::default();
            l.hash(&mut h);
            (h.finish() % n as u64) as usize
        }
        None => 0,
    }
}

/// True for the wrapped-or-not verbs that mutate replicas and therefore
/// must go through the coordinator's broadcast + converge path.
fn is_mutation(req: &Request) -> bool {
    matches!(
        req,
        Request::Insert { .. }
            | Request::Delete { .. }
            | Request::AddKey { .. }
            | Request::DropKey { .. }
    )
}

fn handle_conn(conn: TcpStream, coord: &Arc<Coordinator>, reg: &Arc<Registry>) -> io::Result<()> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = conn;
    let mut queries = QueryConns::new(coord.shard_addrs());
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.len() > MAX_REQUEST_LINE {
            writer.write_all(b"ERR request too long\n\n")?;
            continue;
        }
        let request = line.trim_end_matches(['\r', '\n']);
        if request.eq_ignore_ascii_case("QUIT") {
            writer.write_all(b"BYE\n\n")?;
            return Ok(());
        }
        let answer = answer_line(request, coord, reg, &mut queries);
        writer.write_all(format!("{answer}\n\n").as_bytes())?;
        writer.flush()?;
    }
}

/// Routes one request line and renders the answer paragraph.
fn answer_line(
    line: &str,
    coord: &Arc<Coordinator>,
    reg: &Registry,
    queries: &mut QueryConns,
) -> String {
    let n = coord.num_shards();
    let parsed = Request::parse(line);
    let answer = match &parsed {
        Ok(req) if is_mutation(req) => coord.update(line, req),
        Ok(Request::Snapshot | Request::Compact) => coord.broadcast_admin(line),
        Ok(Request::Metrics) => Ok(Response::Metrics(reg.snapshot()).render()),
        Ok(Request::ShardChase { .. } | Request::Merges { .. }) => {
            Ok("ERR SHARDCHASE/MERGES are cluster-internal (address a shard directly)".to_string())
        }
        Ok(Request::Trace { inner }) if is_mutation(inner) => {
            Ok("ERR TRACE of a mutation is not supported through the cluster router".to_string())
        }
        Ok(req) => queries.forward(affinity(req, n), line),
        // Unparseable lines forward raw so the shard's own ERR answer
        // (usage text and all) comes back byte-identical to standalone.
        Err(_) => queries.forward(0, line),
    };
    answer.unwrap_or_else(|e| format!("ERR {e}"))
}
