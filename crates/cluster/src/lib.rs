//! gk-cluster: a horizontally sharded graphkeys service.
//!
//! Fan et al. (PVLDB 2015) §6 evaluates entity matching with keys on
//! graphs partitioned across workers; this crate is that topology as a
//! *service*.  N `gk-server` shard processes each hold a full replica of
//! the graph (mutations are broadcast, so every replica sees the same op
//! stream and assigns the same entity ids) but chase only their own slice
//! of the candidate-pair space — pair `(a, b)` belongs to the shard that
//! owns `min(a, b)` under `entity_shard`.  A router/coordinator process
//! speaks the ordinary line protocol on the front and drives the
//! distributed chase on the back over pipelined `gk-client` connections:
//!
//! ```text
//!            SAME/DUPS/REP/EXPLAIN/INSERT/…
//!   clients ───────────────► router/coordinator
//!                               │     ▲
//!                SHARDCHASE /   │     │  MERGELOG (per-shard merge logs)
//!                MERGES deltas  ▼     │
//!                        shard 0 … shard N-1   (each: own WAL + snapshots)
//! ```
//!
//! Convergence is the distributed chase: every sweep, each shard chases
//! its slice to a local fixpoint and answers its merge log; the
//! coordinator absorbs the entries into a global label-keyed union-find
//! and ships each shard the entries it has not seen.  A sweep that moves
//! nothing in either direction is the fixpoint — by Church–Rosser the
//! result equals the standalone chase's closure, so any single shard
//! answers queries byte-identically to a standalone server over the same
//! op stream.

mod coordinator;
mod launch;
mod router;

pub use coordinator::{ClusterMetrics, ConvergeReport, Coordinator};
pub use launch::{Cluster, ClusterOpts};
pub use router::{serve_router, RouterHandle, DEFAULT_HEARTBEAT};
