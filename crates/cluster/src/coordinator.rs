//! The cluster coordinator: drives the distributed chase over the wire.
//!
//! Every shard holds a full replica of the graph but chases only its own
//! slice of the candidate-pair space (`entity_shard(min(a, b))`).  The
//! coordinator runs the exchange rounds of the distributed chase: it reads
//! each shard's merge log (`SHARDCHASE`), absorbs the entries into a global
//! label-keyed union-find, and ships every shard the global entries it has
//! not seen yet (`MERGES`) until a full sweep moves nothing — the
//! cross-shard fixpoint.  Church–Rosser makes the absorption sound: any
//! order of applying the same key-derived identifications reaches the same
//! terminal closure.

use gk_client::Client;
use gk_metrics::{Counter, Histogram, Registry};
use gk_server::{MergeEntry, Request, Response};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::io;
use std::time::{Duration, Instant};

/// How long `Coordinator::connect` waits for each shard dial.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Cluster-level counters, registered on the router's own registry (the
/// shards keep theirs; `METRICS` through the router answers this one).
#[derive(Clone, Copy)]
pub struct ClusterMetrics {
    /// Convergence sweeps driven (one sweep = one `SHARDCHASE`/`MERGES`
    /// round-trip to every shard).
    pub rounds_total: Counter,
    /// Merge-log entries absorbed into the global relation (after
    /// deduplication — echoes and re-derivations don't count).
    pub merges_rx_total: Counter,
    /// Wire latency of one shard round-trip during convergence.
    pub shard_rpc_micros: Histogram,
}

impl ClusterMetrics {
    pub fn register(reg: &Registry) -> ClusterMetrics {
        ClusterMetrics {
            rounds_total: reg.counter(
                "gk_cluster_rounds_total",
                "distributed chase convergence sweeps driven by the coordinator",
            ),
            merges_rx_total: reg.counter(
                "gk_cluster_merges_rx_total",
                "merge-log entries absorbed into the coordinator's global relation",
            ),
            shard_rpc_micros: reg.histogram(
                "gk_shard_rpc_micros",
                "latency of one coordinator->shard RPC during convergence",
            ),
        }
    }
}

/// What one `converge()` call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConvergeReport {
    /// Sweeps until a full quiet sweep (always >= 1).
    pub rounds: usize,
    /// New global merge entries absorbed across all sweeps.
    pub absorbed: u64,
}

/// A growable union-find keyed by entity label — the coordinator's global
/// view of the identified pairs.  `pairs` is maintained incrementally
/// (union of roots with sizes x and y adds `x * y` pairs), matching
/// `EqRel::num_identified_pairs`'s sum-of-C(s,2) definition.
#[derive(Default)]
struct LabelRel {
    ids: FxHashMap<String, usize>,
    parent: Vec<usize>,
    size: Vec<u64>,
    pairs: u64,
}

impl LabelRel {
    fn intern(&mut self, label: &str) -> usize {
        if let Some(&i) = self.ids.get(label) {
            return i;
        }
        let i = self.parent.len();
        self.ids.insert(label.to_string(), i);
        self.parent.push(i);
        self.size.push(1);
        i
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the classes of two labels; false when already together.
    fn union(&mut self, a: &str, b: &str) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        let (mut ra, mut rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.pairs += self.size[ra] * self.size[rb];
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }
}

/// Per-shard exchange state, all guarded by one lock: the coordinator is a
/// single writer, which is what makes the broadcast + converge sequence of
/// an update atomic with respect to other updates.
struct Exchange {
    clients: Vec<Client>,
    /// Next unread position in each shard's merge log.
    cursors: Vec<u64>,
    /// How many entries of `global` each shard has been shipped.
    shipped: Vec<usize>,
    /// `Client::reconnects()` last observed per shard — a bump means the
    /// TCP connection was redialed, i.e. the shard may have restarted with
    /// an empty in-memory log, so its cursor and shipped count rewind to 0
    /// and the whole global log is re-shipped.
    reconnects: Vec<u64>,
    /// The deduplicated global merge log, in absorption order.
    global: Vec<MergeEntry>,
    rel: LabelRel,
}

impl Exchange {
    /// Forgets everything learned about shard `i`'s log position.
    fn rewind(&mut self, i: usize) {
        self.cursors[i] = 0;
        self.shipped[i] = 0;
    }

    /// Non-monotone updates (DELETE/DROPKEY) invalidate the global
    /// relation wholesale: every shard re-chases its slice from identity,
    /// and the coordinator rebuilds its view from the fresh logs.
    fn reset(&mut self) {
        let n = self.clients.len();
        self.cursors = vec![0; n];
        self.shipped = vec![0; n];
        self.global.clear();
        self.rel = LabelRel::default();
    }
}

/// Owns the back-side shard connections and the global merge relation.
pub struct Coordinator {
    addrs: Vec<String>,
    state: Mutex<Exchange>,
    metrics: ClusterMetrics,
}

/// Prefixes an io error with the shard it came from.
fn shard_err(i: usize, addr: &str, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("shard {i} ({addr}): {e}"))
}

impl Coordinator {
    /// Dials every shard and verifies its role: shard `i` of `addrs.len()`.
    /// The check catches the classic misconfigurations (a standalone server
    /// in the list, shards out of order, wrong `--shard-id N`).
    pub fn connect(addrs: &[String], registry: &Registry) -> io::Result<Coordinator> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard address",
            ));
        }
        let mut clients = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let mut c = Client::connect_timeout(addr, CONNECT_TIMEOUT)
                .map_err(|e| shard_err(i, addr, e))?;
            verify_role(&mut c, i, addrs.len()).map_err(|e| shard_err(i, addr, e))?;
            clients.push(c);
        }
        let n = clients.len();
        let reconnects = clients.iter().map(Client::reconnects).collect();
        Ok(Coordinator {
            addrs: addrs.to_vec(),
            state: Mutex::new(Exchange {
                clients,
                cursors: vec![0; n],
                shipped: vec![0; n],
                reconnects,
                global: Vec::new(),
                rel: LabelRel::default(),
            }),
            metrics: ClusterMetrics::register(registry),
        })
    }

    pub fn num_shards(&self) -> usize {
        self.addrs.len()
    }

    pub fn shard_addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Identified pairs in the coordinator's global relation.
    pub fn identified_pairs(&self) -> u64 {
        self.state.lock().rel.pairs
    }

    /// Runs exchange sweeps until a full quiet sweep: nothing shipped to
    /// any shard and nothing new read back.  Also the heartbeat body — a
    /// restarted shard is healed here (reconnect detection rewinds it and
    /// the next sweep re-ships the whole global log).
    pub fn converge(&self) -> io::Result<ConvergeReport> {
        let mut ex = self.state.lock();
        self.converge_locked(&mut ex)
    }

    fn converge_locked(&self, ex: &mut Exchange) -> io::Result<ConvergeReport> {
        let mut report = ConvergeReport::default();
        loop {
            report.rounds += 1;
            self.metrics.rounds_total.inc();
            let mut progressed = false;
            for i in 0..ex.clients.len() {
                let delta = ex.global[ex.shipped[i]..].to_vec();
                if !delta.is_empty() {
                    progressed = true;
                }
                let cursor = ex.cursors[i];
                let req = if delta.is_empty() {
                    Request::ShardChase { cursor }
                } else {
                    Request::Merges {
                        cursor,
                        merges: delta,
                    }
                };
                let resp = self.rpc(ex, i, &req)?;
                ex.shipped[i] = ex.global.len();
                if self.rewind_if_reconnected(ex, i) {
                    progressed = true;
                    continue;
                }
                let Response::MergeLog { next, merges } = resp else {
                    return Err(shard_err(
                        i,
                        &self.addrs[i],
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "expected MERGELOG, got {}",
                                resp.render().lines().next().unwrap_or("")
                            ),
                        ),
                    ));
                };
                if next < cursor {
                    // The shard's log shrank under our cursor: it restarted
                    // (recovery re-chases from its own WAL only, losing
                    // un-snapshotted external merges).  Rewind and re-ship.
                    ex.rewind(i);
                    progressed = true;
                    continue;
                }
                ex.cursors[i] = next;
                for m in merges {
                    if ex.rel.union(&m.a, &m.b) {
                        ex.global.push(m);
                        report.absorbed += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        self.metrics.merges_rx_total.add(report.absorbed);
        Ok(report)
    }

    /// One typed round-trip to shard `i`, timed into `gk_shard_rpc_micros`.
    fn rpc(&self, ex: &mut Exchange, i: usize, req: &Request) -> io::Result<Response> {
        let t0 = Instant::now();
        let resp = ex.clients[i]
            .request(req)
            .map_err(|e| shard_err(i, &self.addrs[i], e));
        self.metrics.shard_rpc_micros.observe_micros(t0.elapsed());
        resp
    }

    /// True (and rewinds) when shard `i`'s connection was redialed since
    /// last observed — the restart detector.
    fn rewind_if_reconnected(&self, ex: &mut Exchange, i: usize) -> bool {
        let now = ex.clients[i].reconnects();
        if now != ex.reconnects[i] {
            ex.reconnects[i] = now;
            ex.rewind(i);
            return true;
        }
        false
    }

    /// Applies one mutation cluster-wide and converges: shard 0 validates
    /// first (an ERR there leaves every replica untouched), then the same
    /// raw line is broadcast to the rest, then the distributed chase runs
    /// to its fixpoint.  Answers the front client's paragraph: shard 0's
    /// response with the closure-growth fields patched to the global view.
    pub fn update(&self, line: &str, req: &Request) -> io::Result<String> {
        let mut ex = self.state.lock();
        let pairs_before = ex.rel.pairs;
        let first = self.raw(&mut ex, 0, line)?;
        self.rewind_if_reconnected(&mut ex, 0);
        if first.starts_with("ERR") {
            return Ok(first);
        }
        for i in 1..ex.clients.len() {
            let r = self.raw(&mut ex, i, line)?;
            self.rewind_if_reconnected(&mut ex, i);
            if r.starts_with("ERR") {
                // Shard 0 accepted what a replica rejected: replicas have
                // diverged (should be impossible while all shards run the
                // same build over the same op stream).
                return Ok(format!("ERR replica divergence: shard {i} answered: {r}"));
            }
        }
        if matches!(req, Request::Delete { .. } | Request::DropKey { .. }) {
            ex.reset();
        }
        let conv = self.converge_locked(&mut ex)?;
        Ok(aggregate(&first, pairs_before, ex.rel.pairs, &conv))
    }

    /// Broadcasts an admin verb (SNAPSHOT/COMPACT) to every shard — each
    /// persists into its own data dir — answering shard 0's paragraph.
    pub fn broadcast_admin(&self, line: &str) -> io::Result<String> {
        let mut ex = self.state.lock();
        let first = self.raw(&mut ex, 0, line)?;
        for i in 1..ex.clients.len() {
            let r = self.raw(&mut ex, i, line)?;
            if r.starts_with("ERR") {
                return Ok(format!("ERR shard {i} answered: {r}"));
            }
        }
        Ok(first)
    }

    /// One raw-line round-trip to shard `i`, timed like `rpc`.
    fn raw(&self, ex: &mut Exchange, i: usize, line: &str) -> io::Result<String> {
        let t0 = Instant::now();
        let resp = ex.clients[i]
            .request_line(line)
            .map_err(|e| shard_err(i, &self.addrs[i], e));
        self.metrics.shard_rpc_micros.observe_micros(t0.elapsed());
        resp
    }
}

/// STATS-based role check for one shard connection.
fn verify_role(c: &mut Client, shard_id: usize, num_shards: usize) -> io::Result<()> {
    let stats = c.stats()?;
    let get = |k: &str| {
        stats
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    };
    let (role, id, n) = (get("role"), get("shard_id"), get("num_shards"));
    if role != "shard" || id != shard_id.to_string() || n != num_shards.to_string() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "expected role=shard shard_id={shard_id} num_shards={num_shards}, \
                 got role={role} shard_id={id} num_shards={n} \
                 (start each shard with serve --shard-id I/N)"
            ),
        ));
    }
    Ok(())
}

/// Patches shard 0's update response with the cluster-wide closure growth
/// and the convergence round count.  Non-OK or unparseable paragraphs pass
/// through unchanged.
fn aggregate(first: &str, pairs_before: u64, pairs_after: u64, conv: &ConvergeReport) -> String {
    let grown = pairs_after.saturating_sub(pairs_before) as usize;
    match Response::parse(first) {
        Ok(Response::Updated(mut r)) => {
            r.new_pairs = grown;
            r.rounds = conv.rounds;
            Response::Updated(r).render()
        }
        Ok(Response::KeyAdded(mut c)) => {
            c.identified_pairs = pairs_after as usize;
            c.rounds = conv.rounds;
            Response::KeyAdded(c).render()
        }
        Ok(Response::KeyDropped(mut c)) => {
            c.identified_pairs = pairs_after as usize;
            c.rounds = conv.rounds;
            Response::KeyDropped(c).render()
        }
        _ => first.to_string(),
    }
}
