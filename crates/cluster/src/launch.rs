//! Single-process cluster bring-up: N sharded `gk-server` instances plus
//! the router, each on its own loopback port.  This is what the CLI's
//! `graphkeys cluster --shards N` runs, and what the tests and benches use
//! to compare a cluster against a standalone server over the same state.

use crate::coordinator::Coordinator;
use crate::router::{serve_router, RouterHandle, DEFAULT_HEARTBEAT};
use gk_core::{ChaseEngine, KeySet, ShardRole};
use gk_graph::parse_graph;
use gk_metrics::Registry;
use gk_server::{
    serve_with, Durability, EmIndex, RecoveryReport, ServeHandle, ServeOptions, Server,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Knobs for [`Cluster::launch`].
pub struct ClusterOpts {
    /// Shard count (the `N` of `entity_shard(e, N)`).
    pub shards: usize,
    /// Chase engine each shard runs for its slice.
    pub engine: ChaseEngine,
    /// Worker threads per shard's TCP front.
    pub threads: usize,
    /// When set, shard `i` persists under `<data_dir>/shard-<i>` — per-shard
    /// WAL + snapshots, so recovery stays local to the shard that died.
    pub data_dir: Option<PathBuf>,
    /// WAL records before a shard folds its delta overlay (0 = off).
    pub compact_threshold: usize,
    /// Router heartbeat period (zero disables the heartbeat thread).
    pub heartbeat: Duration,
}

impl Default for ClusterOpts {
    fn default() -> ClusterOpts {
        ClusterOpts {
            shards: 2,
            engine: ChaseEngine::Incremental,
            threads: 2,
            data_dir: None,
            compact_threshold: gk_server::DEFAULT_COMPACT_THRESHOLD,
            heartbeat: DEFAULT_HEARTBEAT,
        }
    }
}

/// A running single-process cluster.
pub struct Cluster {
    shard_handles: Vec<ServeHandle>,
    shard_addrs: Vec<String>,
    router: RouterHandle,
    registry: Arc<Registry>,
    /// How each durable shard obtained its state (empty when in-memory).
    pub recoveries: Vec<RecoveryReport>,
}

impl Cluster {
    /// Parses the graph and key texts once per shard (every replica indexes
    /// the full graph), serves each shard on `127.0.0.1:0`, connects the
    /// coordinator, runs the initial convergence, and opens the router
    /// front on `listen`.
    pub fn launch(
        graph_text: &str,
        keys_text: &str,
        listen: &str,
        opts: &ClusterOpts,
    ) -> Result<Cluster, String> {
        if opts.shards == 0 {
            return Err("a cluster needs at least one shard".into());
        }
        let mut shard_handles = Vec::with_capacity(opts.shards);
        let mut shard_addrs = Vec::with_capacity(opts.shards);
        let mut recoveries = Vec::new();
        for i in 0..opts.shards {
            let graph = parse_graph(graph_text).map_err(|e| format!("graph: {e}"))?;
            let keys = KeySet::parse(keys_text).map_err(|e| format!("keys: {e}"))?;
            let role = ShardRole::new(i, opts.shards)?;
            let index = match &opts.data_dir {
                None => EmIndex::with_engine_sharded(
                    graph,
                    keys,
                    opts.engine,
                    Arc::new(Registry::new()),
                    role,
                ),
                Some(dir) => {
                    let dur = Durability::in_dir(dir.join(format!("shard-{i}")));
                    let (index, report) = EmIndex::open_durable_sharded(
                        graph,
                        keys,
                        opts.engine,
                        &dur,
                        opts.compact_threshold,
                        role,
                    )?;
                    recoveries.push(report);
                    index
                }
            };
            let server = Arc::new(Server::from_index(index));
            let handle = serve_with(
                server,
                "127.0.0.1:0",
                &ServeOptions {
                    threads: opts.threads,
                    ..ServeOptions::default()
                },
            )
            .map_err(|e| format!("shard {i}: {e}"))?;
            shard_addrs.push(handle.addr().to_string());
            shard_handles.push(handle);
        }
        let registry = Arc::new(Registry::new());
        let coordinator = Arc::new(
            Coordinator::connect(&shard_addrs, &registry)
                .map_err(|e| format!("coordinator: {e}"))?,
        );
        // Converge once before opening the front: a recovered durable
        // cluster re-exchanges whatever each shard replayed, so the first
        // client sees the cross-shard fixpoint, not a partial closure.
        coordinator
            .converge()
            .map_err(|e| format!("initial convergence: {e}"))?;
        let router = serve_router(coordinator, registry.clone(), listen, opts.heartbeat)
            .map_err(|e| format!("router: {e}"))?;
        Ok(Cluster {
            shard_handles,
            shard_addrs,
            router,
            registry,
            recoveries,
        })
    }

    /// The router's front address.
    pub fn router_addr(&self) -> &str {
        self.router.addr()
    }

    /// The per-shard back addresses, in shard-id order.
    pub fn shard_addrs(&self) -> &[String] {
        &self.shard_addrs
    }

    /// The router/coordinator registry (`gk_cluster_*` metrics live here).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops the router, then every shard.
    pub fn stop(self) {
        self.router.stop();
        for h in self.shard_handles {
            h.stop();
        }
    }
}
