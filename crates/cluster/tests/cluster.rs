//! End-to-end cluster tests: a K-shard cluster must answer queries
//! byte-identically to a standalone server fed the same op stream, and a
//! durable cluster must survive the kill + restart of any single shard.

use gk_client::Client;
use gk_cluster::{serve_router, Cluster, ClusterOpts, Coordinator, DEFAULT_HEARTBEAT};
use gk_core::{ChaseEngine, KeySet, ShardRole};
use gk_graph::parse_graph;
use gk_metrics::Registry;
use gk_server::{serve, Durability, EmIndex, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: &str = r#"
    key "Q2" album(x)  { x -name_of-> n*; x -release_year-> y*; }
    key "Q3" artist(x) { x -name_of-> n*; a:album -recorded_by-> x; }
"#;

/// A held-back key installed mid-stream via ADDKEY: albums identified by
/// name alone, which merges classes Q2 kept apart (missing years).
const Q4: &str = r#"ADDKEY key "Q4" album(x) { x -name_of-> n*; }"#;

/// Builds the initial graph text: `groups` groups of two albums sharing a
/// name + year (Q2 duplicates), each recorded by its own artist (Q3
/// identifies the artists once the albums merge).
fn initial_graph(groups: usize) -> String {
    let mut g = String::new();
    for i in 0..groups {
        for half in 0..2 {
            let alb = format!("alb{i}_{half}");
            let art = format!("art{i}_{half}");
            g.push_str(&format!("{alb}:album name_of \"Record {i}\"\n"));
            g.push_str(&format!("{alb}:album release_year \"19{i:02}\"\n"));
            g.push_str(&format!("{alb}:album recorded_by {art}:artist\n"));
            g.push_str(&format!("{art}:artist name_of \"Band {i}\"\n"));
        }
    }
    g
}

/// The random op stream: inserts of fresh albums (some duplicating an
/// existing group's name + year, some with the year withheld so only Q4
/// catches them), deletes of previously inserted triples, and one ADDKEY
/// at a fixed position.  Deterministic in the seed.
fn op_stream(groups: usize, n_ops: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut fresh = 0usize;
    // Inserted (entity, group) pairs whose year triple still exists — the
    // pool of legal non-monotone deletes.
    let mut dated: Vec<(String, usize)> = Vec::new();
    for step in 0..n_ops {
        if step == n_ops / 2 {
            ops.push(Q4.to_string());
            continue;
        }
        let group = rng.gen_range(0..groups);
        match rng.gen_range(0..4u32) {
            // A full duplicate: Q2 merges it into the group.
            0 => {
                let e = format!("ins{fresh}");
                fresh += 1;
                ops.push(format!(
                    "INSERT {e}:album name_of \"Record {group}\" ; \
                     {e}:album release_year \"19{group:02}\" ; \
                     {e}:album recorded_by art{group}_0:artist"
                ));
                dated.push((e, group));
            }
            // Name only: invisible to Q2, merged later by Q4.
            1 => {
                let e = format!("ins{fresh}");
                fresh += 1;
                ops.push(format!("INSERT {e}:album name_of \"Record {group}\""));
            }
            // Retract a year — a non-monotone update that can split a class.
            2 if !dated.is_empty() => {
                let (e, g) = dated.remove(rng.gen_range(0..dated.len()));
                ops.push(format!("DELETE {e}:album release_year \"19{g:02}\""));
            }
            // A distractor entity no key matches.
            _ => {
                let e = format!("ins{fresh}");
                fresh += 1;
                ops.push(format!("INSERT {e}:album liner_notes \"notes {step}\""));
            }
        }
    }
    ops
}

/// Every query whose answer must match standalone byte-for-byte.
fn query_script(groups: usize, inserted: usize) -> Vec<String> {
    let mut q = Vec::new();
    for i in 0..groups {
        q.push(format!("SAME alb{i}_0 alb{i}_1"));
        q.push(format!("SAME art{i}_0 art{i}_1"));
        q.push(format!("DUPS alb{i}_0"));
        q.push(format!("REP alb{i}_1"));
        q.push(format!("EXPLAIN alb{i}_0 alb{i}_1"));
        q.push(format!("EXPLAIN art{i}_0 art{i}_1"));
    }
    for f in 0..inserted {
        q.push(format!("DUPS ins{f}"));
        q.push(format!("REP ins{f}"));
    }
    q.push("KEYS".to_string());
    q.push("SAME ghost alb0_0".to_string());
    q
}

fn count_inserted(ops: &[String]) -> usize {
    ops.iter().filter(|o| o.starts_with("INSERT ins")).count()
}

#[test]
fn cluster_matches_standalone_over_a_random_op_stream() {
    let groups = 6;
    let graph_text = initial_graph(groups);
    let ops = op_stream(groups, 24, 42);
    let inserted = count_inserted(&ops);

    // The reference: one in-process standalone server, same op stream.
    let reference = Server::with_engine(
        parse_graph(&graph_text).unwrap(),
        KeySet::parse(KEYS).unwrap(),
        ChaseEngine::Incremental,
    );
    for op in &ops {
        let resp = reference.handle(op);
        assert!(!resp.starts_with("ERR"), "reference rejected {op}: {resp}");
    }
    let want: Vec<String> = query_script(groups, inserted)
        .iter()
        .map(|q| reference.handle(q))
        .collect();

    for k in [1usize, 2, 4] {
        let cluster = Cluster::launch(
            &graph_text,
            KEYS,
            "127.0.0.1:0",
            &ClusterOpts {
                shards: k,
                // No heartbeat: convergence must already hold after every
                // update's own exchange rounds.
                heartbeat: Duration::ZERO,
                ..ClusterOpts::default()
            },
        )
        .unwrap();
        let mut front = Client::lazy(cluster.router_addr());
        for op in &ops {
            let resp = front.request_line(op).unwrap();
            assert!(
                !resp.starts_with("ERR"),
                "{k}-shard cluster rejected {op}: {resp}"
            );
        }
        for (q, want) in query_script(groups, inserted).iter().zip(&want) {
            let got = front.request_line(q).unwrap();
            assert_eq!(
                &got, want,
                "{k}-shard cluster diverged from standalone on {q}"
            );
        }
        cluster.stop();
    }
}

#[test]
fn router_intercepts_cluster_internal_and_admin_verbs() {
    let cluster = Cluster::launch(
        &initial_graph(2),
        KEYS,
        "127.0.0.1:0",
        &ClusterOpts {
            shards: 2,
            ..ClusterOpts::default()
        },
    )
    .unwrap();
    let mut front = Client::lazy(cluster.router_addr());

    let r = front.request_line("SHARDCHASE 0").unwrap();
    assert!(
        r.starts_with("ERR") && r.contains("cluster-internal"),
        "{r}"
    );
    let r = front.request_line("MERGES 0").unwrap();
    assert!(
        r.starts_with("ERR") && r.contains("cluster-internal"),
        "{r}"
    );
    let r = front
        .request_line("TRACE INSERT x:album name_of \"y\"")
        .unwrap();
    assert!(r.starts_with("ERR") && r.contains("not supported"), "{r}");
    // TRACE of a query forwards to a shard like the query itself.
    let r = front.request_line("TRACE SAME alb0_0 alb0_1").unwrap();
    assert!(r.starts_with("TRACE id="), "{r}");

    // METRICS answers the *router's* registry: the cluster family.
    let metrics = front.request_line("METRICS").unwrap();
    assert!(metrics.contains("gk_cluster_rounds_total"), "{metrics}");
    assert!(metrics.contains("gk_cluster_merges_rx_total"), "{metrics}");
    assert!(metrics.contains("gk_shard_rpc_micros"), "{metrics}");

    // STATS forwards to shard 0, which reports its cluster role.
    let stats = front.request_line("STATS").unwrap();
    assert!(
        stats.contains("role=shard shard_id=0 num_shards=2"),
        "{stats}"
    );

    // A malformed line comes back with the shard's own usage answer.
    let standalone = Server::with_engine(
        parse_graph(&initial_graph(2)).unwrap(),
        KeySet::parse(KEYS).unwrap(),
        ChaseEngine::Incremental,
    );
    assert_eq!(
        front.request_line("FROB x").unwrap(),
        standalone.handle("FROB x")
    );
    assert_eq!(
        front.request_line("SAME onearg").unwrap(),
        standalone.handle("SAME onearg")
    );
    cluster.stop();
}

/// A fresh per-test scratch directory.
fn tmpdir(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "gk-cluster-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Kill + restart: a durable shard recovers from its *own* data dir, the
/// coordinator detects the reconnect, re-ships the global merge log, and
/// the router answers byte-identically to before the crash.
#[test]
fn durable_cluster_survives_a_shard_restart() {
    let dir = tmpdir("restart");
    let groups = 4;
    let graph_text = initial_graph(groups);
    let shards = 3;

    // Launch the three durable shards by hand so the test can drop one.
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..shards {
        let (index, _) = EmIndex::open_durable_sharded(
            parse_graph(&graph_text).unwrap(),
            KeySet::parse(KEYS).unwrap(),
            ChaseEngine::Incremental,
            &Durability::in_dir(dir.join(format!("shard-{i}"))),
            0,
            ShardRole::new(i, shards).unwrap(),
        )
        .unwrap();
        let h = serve(Arc::new(Server::from_index(index)), "127.0.0.1:0", 2).unwrap();
        addrs.push(h.addr().to_string());
        handles.push(h);
    }
    let registry = Arc::new(Registry::new());
    let coordinator = Arc::new(Coordinator::connect(&addrs, &registry).unwrap());
    coordinator.converge().unwrap();
    let router = serve_router(
        coordinator.clone(),
        registry,
        "127.0.0.1:0",
        DEFAULT_HEARTBEAT,
    )
    .unwrap();
    let mut front = Client::lazy(router.addr());

    for op in op_stream(groups, 12, 7) {
        let resp = front.request_line(&op).unwrap();
        assert!(!resp.starts_with("ERR"), "cluster rejected {op}: {resp}");
    }
    let queries: Vec<String> = (0..groups)
        .flat_map(|i| {
            [
                format!("DUPS alb{i}_0"),
                format!("REP art{i}_1"),
                format!("SAME alb{i}_0 alb{i}_1"),
            ]
        })
        .chain(["KEYS".to_string()])
        .collect();
    let before: Vec<String> = queries
        .iter()
        .map(|q| front.request_line(q).unwrap())
        .collect();

    // Kill shard 1 (drops its in-memory state; un-snapshotted external
    // merges are gone) and restart it from its own data dir on the same
    // address.
    let victim = handles.remove(1);
    let addr = addrs[1].clone();
    victim.stop();
    let (index, report) = EmIndex::recover_durable_sharded(
        &Durability::in_dir(dir.join("shard-1")),
        ChaseEngine::Incremental,
        0,
        ShardRole::new(1, shards).unwrap(),
    )
    .unwrap()
    .expect("shard 1 has durable state");
    assert!(report.recovered);
    let rebound = retry_bind(Arc::new(Server::from_index(index)), &addr);
    handles.insert(1, rebound);

    // The heartbeat heals the restarted shard; poll until the answers
    // match the pre-crash transcript again.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let after: Vec<String> = queries
            .iter()
            .map(|q| front.request_line(q).unwrap())
            .collect();
        if after == before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "restarted cluster never reconverged:\nwant {before:#?}\ngot {after:#?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // And the healed cluster keeps taking updates.
    let resp = front
        .request_line("INSERT post:album name_of \"Record 0\" ; post:album release_year \"1900\"")
        .unwrap();
    assert!(resp.starts_with("OK"), "{resp}");
    let dups = front.request_line("DUPS post").unwrap();
    assert!(dups.starts_with("DUPS"), "{dups}");

    router.stop();
    for h in handles {
        h.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The freed port can linger in TIME_WAIT for a beat; retry briefly.
fn retry_bind(server: Arc<Server>, addr: &str) -> gk_server::ServeHandle {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match serve(server.clone(), addr, 2) {
            Ok(h) => return h,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("cannot rebind {addr}: {e}"),
        }
    }
}

/// Sanity for the launch helper's durable mode: a relaunched cluster
/// recovers every shard from its per-shard subdirectory.
#[test]
fn durable_cluster_relaunch_recovers_per_shard() {
    let dir = tmpdir("relaunch");
    let graph_text = initial_graph(3);
    let opts = ClusterOpts {
        shards: 2,
        data_dir: Some(dir.clone()),
        heartbeat: Duration::ZERO,
        ..ClusterOpts::default()
    };

    let cluster = Cluster::launch(&graph_text, KEYS, "127.0.0.1:0", &opts).unwrap();
    assert!(cluster.recoveries.iter().all(|r| !r.recovered));
    let mut front = Client::lazy(cluster.router_addr());
    front
        .request_line("INSERT x:album name_of \"Record 1\" ; x:album release_year \"1901\"")
        .unwrap();
    let want = front.request_line("DUPS x").unwrap();
    assert!(want.starts_with("DUPS"), "{want}");
    cluster.stop();

    let cluster = Cluster::launch(&graph_text, KEYS, "127.0.0.1:0", &opts).unwrap();
    assert!(cluster.recoveries.iter().all(|r| r.recovered));
    let mut front = Client::lazy(cluster.router_addr());
    assert_eq!(front.request_line("DUPS x").unwrap(), want);
    cluster.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// rand's `gen_range` lives behind a trait import; keep the compiler
/// honest about the one we use.
#[allow(dead_code)]
fn _rng_uses(r: &mut StdRng) -> u32 {
    r.gen_range(0..2)
}
