//! # gk-client — a typed, pipelined client for the graphkeys service
//!
//! The service frames its TCP protocol as *request line in, response
//! paragraph out* (the response text followed by a blank line). The
//! crucial property of that framing is that nothing in it requires one
//! round trip per request: a client may write any number of request lines
//! before reading the matching number of response paragraphs, and the
//! server answers them in order on each connection. This crate exploits
//! that:
//!
//! * [`Client`] — a blocking connection speaking typed
//!   [`Request`]/[`Response`] values (the lossless `parse`/`render` pair
//!   from `gk-server`), with transparent **reconnect-on-broken-pipe**:
//!   if the server restarted between requests, the next call redials and
//!   retries instead of surfacing a stale-socket error. Retry applies
//!   only to **read-only** batches with *zero* paragraphs drained — a
//!   batch whose connection died after an update verb was written cannot
//!   be proven un-applied (the server may have committed it and crashed
//!   before answering), so it always surfaces the error instead of
//!   risking a double apply.
//! * [`Pipeline`] — a builder that queues requests and sends them
//!   **N-deep**: one vectored write for the whole batch, then one drain
//!   of all responses. Against a local server this turns per-request
//!   syscall + scheduling latency into amortized streaming cost (the
//!   `query_pipeline` bench experiment measures the multiple).
//! * [`Client::run_pipelined`] — windowed pipelining over an arbitrary
//!   request list: write up to `depth` ahead, drain, repeat.
//!
//! ```no_run
//! use gk_client::Client;
//! use gk_server::{Request, Response};
//!
//! let mut c = Client::connect("127.0.0.1:7878")?;
//! match c.request(&Request::Same { a: "alb1".into(), b: "alb2".into() })? {
//!     Response::Same { rep, .. } => println!("same entity, canonical {rep}"),
//!     other => println!("{}", other.render()),
//! }
//! // Pipelined: one write, one drain, three answers.
//! let answers = c
//!     .pipeline()
//!     .push(Request::Ping)
//!     .push(Request::Rep { entity: "alb2".into() })
//!     .push(Request::Stats)
//!     .send()?;
//! assert_eq!(answers.len(), 3);
//! # std::io::Result::Ok(())
//! ```

#![warn(missing_docs)]

pub use gk_server::{ProofLine, Request, RequestError, Response, ResponseError};

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Default overall deadline for the info conveniences
/// ([`Client::metrics`], [`Client::stats`]): these feed dashboards and
/// the cluster coordinator's health view, where a wedged server must
/// fail fast rather than hang the poller.
const INFO_DEADLINE: Duration = Duration::from_secs(5);

/// A blocking connection to a graphkeys server, typed end to end.
///
/// The connection is persistent and lazily (re)established: every send
/// first ensures a live socket, and a *read-only* batch that fails before
/// any of its responses were read redials once and retries (update verbs
/// never auto-retry — see the crate docs). `TCP_NODELAY` is set — the
/// protocol is request-sized, and Nagle coalescing only adds latency that
/// the pipelining already amortizes properly.
pub struct Client {
    addr: String,
    conn: Option<Conn>,
    reconnects: u64,
    connect_timeout: Option<Duration>,
    deadline: Option<Duration>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// What's left until `deadline`, or a `TimedOut` error once it passed.
fn remaining(deadline: Instant) -> std::io::Result<Duration> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "request deadline exceeded",
        ));
    }
    Ok(left)
}

impl Conn {
    fn dial(addr: &str, connect_timeout: Option<Duration>) -> std::io::Result<Conn> {
        let stream = match connect_timeout {
            Some(t) => {
                use std::net::ToSocketAddrs;
                let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address")
                })?;
                TcpStream::connect_timeout(&sock, t)?
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn {
            reader,
            writer: stream,
        })
    }

    /// Reads one response paragraph (without the terminating blank line).
    ///
    /// With a deadline, every socket refill is armed with what's *left*
    /// of it — the same overall-deadline discipline as the server's
    /// one-shot `request_with_timeout`: per-read timeouts alone would let
    /// a slow-drip server extend the call arbitrarily, because each byte
    /// resets a per-read timer.
    fn read_paragraph(&mut self, deadline: Option<Instant>) -> std::io::Result<String> {
        let mut out = String::new();
        let mut line: Vec<u8> = Vec::new();
        loop {
            if let Some(d) = deadline {
                self.reader
                    .get_ref()
                    .set_read_timeout(Some(remaining(d)?))?;
            }
            let buf = match self.reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "request deadline exceeded",
                    ));
                }
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            let (chunk, advanced) = match buf.iter().position(|&b| b == b'\n') {
                Some(at) => (&buf[..=at], true),
                None => (buf, false),
            };
            line.extend_from_slice(chunk);
            let n = chunk.len();
            self.reader.consume(n);
            if !advanced {
                continue; // newline not in the buffer yet: refill
            }
            let text = String::from_utf8_lossy(&line);
            let text = text.trim_end_matches(['\r', '\n']);
            if text.is_empty() {
                return Ok(out);
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(text);
            line.clear();
        }
    }
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`) eagerly, so a wrong
    /// address fails here rather than on the first request.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let mut c = Client::lazy(addr);
        c.ensure()?;
        Ok(c)
    }

    /// [`Client::connect`] bounded by `timeout`: the dial — including
    /// every redial this client ever makes — fails with `TimedOut`
    /// instead of hanging on a blackholed address.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let mut c = Client::lazy(addr);
        c.connect_timeout = Some(timeout);
        c.ensure()?;
        Ok(c)
    }

    /// A client that dials on first use (and redials after breakage).
    pub fn lazy(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            conn: None,
            reconnects: 0,
            connect_timeout: None,
            deadline: None,
        }
    }

    /// Sets an **overall deadline** for every subsequent call: write plus
    /// the complete response drain must finish within `deadline`, or the
    /// call fails with `TimedOut` (and the connection is dropped — a late
    /// response must not be mistaken for the next call's answer). `None`
    /// restores blocking reads. [`Client::metrics`] and [`Client::stats`]
    /// apply a 5s default even without one.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// How many times the connection was re-established after breaking.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn ensure(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            self.conn = Some(Conn::dial(&self.addr, self.connect_timeout)?);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Sends `payload` (one or more newline-terminated request lines) and
    /// drains `n` response paragraphs.
    ///
    /// `retriable` says the batch is safe to resend on a broken pipe: it
    /// must contain **no update verbs**. A batch whose connection dies
    /// before the first response cannot be proven un-applied (the server
    /// may have committed it and crashed before answering), so the client
    /// only ever replays read-only batches — and even those only when
    /// zero paragraphs have been drained, to keep request/response
    /// pairing exact.
    fn round_trip(
        &mut self,
        payload: &str,
        n: usize,
        retriable: bool,
    ) -> std::io::Result<Vec<String>> {
        self.round_trip_by(payload, n, retriable, self.deadline)
    }

    /// [`Client::round_trip`] under an explicit overall deadline (`None`
    /// blocks). On timeout the connection is dropped, not reused: its
    /// late response would otherwise answer the *next* request.
    fn round_trip_by(
        &mut self,
        payload: &str,
        n: usize,
        retriable: bool,
        deadline: Option<Duration>,
    ) -> std::io::Result<Vec<String>> {
        let mut retried = false;
        loop {
            let deadline = deadline.map(|d| Instant::now() + d);
            let mut read = 0usize;
            let attempt = (|| -> std::io::Result<Vec<String>> {
                let conn = self.ensure()?;
                match deadline {
                    Some(d) => conn.writer.set_write_timeout(Some(remaining(d)?))?,
                    // Clear timeouts a previous deadline call may have
                    // left armed on this (kept) socket.
                    None => {
                        conn.writer.set_write_timeout(None)?;
                        conn.reader.get_ref().set_read_timeout(None)?;
                    }
                }
                conn.writer.write_all(payload.as_bytes())?;
                conn.writer.flush()?;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(conn.read_paragraph(deadline)?);
                    read += 1;
                }
                Ok(out)
            })();
            match attempt {
                Ok(out) => return Ok(out),
                Err(e) => {
                    let replayable = retriable
                        && !retried
                        && read == 0
                        && self.conn.is_some()
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::BrokenPipe
                                | std::io::ErrorKind::ConnectionReset
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::UnexpectedEof
                        );
                    self.conn = None;
                    if replayable {
                        retried = true;
                        self.reconnects += 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Sends one raw request line and returns the raw response paragraph.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        let mut out = self.round_trip(&format!("{line}\n"), 1, line_is_retriable(line))?;
        Ok(out.pop().expect("one paragraph"))
    }

    /// Sends one typed request and returns the typed response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let payload = format!("{}\n", req.render());
        let mut out = self.round_trip(&payload, 1, !req.is_update())?;
        parse_response(&out.pop().expect("one paragraph"))
    }

    /// Fetches the server's metrics exposition as typed snapshots.
    ///
    /// Convenience over `request(&Request::Metrics)`: unwraps the
    /// `Response::Metrics` payload and turns any other answer into an
    /// `InvalidData` error. Runs under a read deadline (the configured
    /// one, or 5s) — a scrape against a wedged server fails fast.
    pub fn metrics(&mut self) -> std::io::Result<Vec<gk_server::MetricSnapshot>> {
        match self.request_info(&Request::Metrics)? {
            Response::Metrics(snaps) => Ok(snaps),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected METRICS answer: {}", other.render()),
            )),
        }
    }

    /// Fetches the server's `STATS` counters as `(key, value)` pairs.
    ///
    /// Convenience over `request(&Request::Stats)`, under the same read
    /// deadline as [`Client::metrics`] — the cluster coordinator polls
    /// this for shard health and must not hang on a stalled shard.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        match self.request_info(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected STATS answer: {}", other.render()),
            )),
        }
    }

    /// One read-only request under the info deadline (configured, else
    /// the 5s default).
    fn request_info(&mut self, req: &Request) -> std::io::Result<Response> {
        let payload = format!("{}\n", req.render());
        let deadline = Some(self.deadline.unwrap_or(INFO_DEADLINE));
        let mut out = self.round_trip_by(&payload, 1, !req.is_update(), deadline)?;
        parse_response(&out.pop().expect("one paragraph"))
    }

    /// Executes `req` under server-side span tracing (`TRACE <verb ...>`)
    /// and returns the span tree plus the unchanged typed answer.
    ///
    /// Convenience over `request(&Request::Trace { .. })`: unwraps the
    /// `Response::Trace` payload and turns any other answer — including
    /// the `ERR` for an untraceable request like a nested `TRACE` — into
    /// an `InvalidData` error. Retriability follows the wrapped verb:
    /// tracing a read-only query stays replayable, tracing an update does
    /// not.
    pub fn trace(
        &mut self,
        req: Request,
    ) -> std::io::Result<(u64, gk_server::TraceNode, Response)> {
        let wrapped = Request::Trace {
            inner: Box::new(req),
        };
        match self.request(&wrapped)? {
            Response::Trace { id, root, answer } => Ok((id, root, *answer)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected TRACE answer: {}", other.render()),
            )),
        }
    }

    /// Starts an explicit pipeline batch: push requests, then
    /// [`Pipeline::send`] writes them all and drains all answers.
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline {
            client: self,
            lines: Vec::new(),
            retriable: true,
        }
    }

    /// Runs `reqs` through the connection with at most `depth` requests
    /// in flight: write a window, drain it, advance. `depth == 1`
    /// degenerates to sequential round trips; `depth >= reqs.len()` is one
    /// batch. Responses come back in request order.
    pub fn run_pipelined(
        &mut self,
        reqs: &[Request],
        depth: usize,
    ) -> std::io::Result<Vec<Response>> {
        let depth = depth.max(1);
        let mut out = Vec::with_capacity(reqs.len());
        for window in reqs.chunks(depth) {
            let mut payload = String::new();
            for r in window {
                payload.push_str(&r.render());
                payload.push('\n');
            }
            let retriable = window.iter().all(|r| !r.is_update());
            for text in self.round_trip(&payload, window.len(), retriable)? {
                out.push(parse_response(&text)?);
            }
        }
        Ok(out)
    }

    /// [`run_pipelined`](Self::run_pipelined) without response parsing:
    /// raw request lines in, one raw response paragraph per line out, in
    /// order. This is the throughput-measurement entry point — a caller
    /// comparing two servers byte-for-byte wants the wire text, and the
    /// per-member allocations of a typed [`Response::Dups`] parse would
    /// dominate exactly the answers whose cost is under test.
    pub fn run_pipelined_raw(
        &mut self,
        lines: &[String],
        depth: usize,
    ) -> std::io::Result<Vec<String>> {
        let depth = depth.max(1);
        let mut out = Vec::with_capacity(lines.len());
        for window in lines.chunks(depth) {
            let mut payload = String::with_capacity(window.iter().map(|l| l.len() + 1).sum());
            for l in window {
                payload.push_str(l);
                payload.push('\n');
            }
            let retriable = window.iter().all(|l| line_is_retriable(l));
            out.extend(self.round_trip(&payload, window.len(), retriable)?);
        }
        Ok(out)
    }

    /// Sends `QUIT` and closes the connection.
    pub fn quit(mut self) -> std::io::Result<()> {
        let _ = self.request_line("QUIT")?;
        self.conn = None;
        Ok(())
    }
}

/// A batch of requests sent as one write and drained as one read run.
///
/// Built by [`Client::pipeline`]; the batch is not sent until
/// [`Pipeline::send`], and dropping it unsent discards it.
pub struct Pipeline<'a> {
    client: &'a mut Client,
    lines: Vec<String>,
    /// True while every queued request is read-only (safe to resend on a
    /// broken pipe).
    retriable: bool,
}

impl Pipeline<'_> {
    /// Queues one typed request.
    pub fn push(mut self, req: Request) -> Self {
        self.retriable &= !req.is_update();
        self.lines.push(req.render());
        self
    }

    /// Queues one raw request line.
    pub fn push_line(mut self, line: &str) -> Self {
        self.retriable &= line_is_retriable(line);
        self.lines.push(line.to_string());
        self
    }

    /// Queued requests so far.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Writes the whole batch, then drains one typed response per queued
    /// request, in order.
    pub fn send(self) -> std::io::Result<Vec<Response>> {
        let n = self.lines.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut payload = String::with_capacity(self.lines.iter().map(|l| l.len() + 1).sum());
        for l in &self.lines {
            payload.push_str(l);
            payload.push('\n');
        }
        self.client
            .round_trip(&payload, n, self.retriable)?
            .iter()
            .map(|t| parse_response(t))
            .collect()
    }
}

fn parse_response(text: &str) -> std::io::Result<Response> {
    Response::parse(text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Is a raw line safe to resend after a broken pipe? Only when it parses
/// as a read-only verb; anything unrecognized (including `QUIT`) is
/// conservatively not replayed.
fn line_is_retriable(line: &str) -> bool {
    matches!(Request::parse(line), Ok(req) if !req.is_update())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::KeySet;
    use gk_graph::parse_graph;
    use gk_server::{serve, Server};
    use std::sync::Arc;

    const KEYS: &str = r#"key "Q2" album(x) { x -name_of-> n*; x -release_year-> y*; }"#;
    const G: &str = r#"
        alb1:album name_of "Anthology 2"
        alb1:album release_year "1996"
        alb2:album name_of "Anthology 2"
        alb2:album release_year "1996"
        alb3:album name_of "Abbey Road"
    "#;

    fn spawn() -> (gk_server::ServeHandle, String) {
        let server = Arc::new(Server::new(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
        ));
        let handle = serve(server, "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr().to_string();
        (handle, addr)
    }

    #[test]
    fn typed_round_trip() {
        let (handle, addr) = spawn();
        let mut c = Client::connect(&addr).unwrap();
        assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
        match c
            .request(&Request::Same {
                a: "alb1".into(),
                b: "alb2".into(),
            })
            .unwrap()
        {
            Response::Same { rep, .. } => assert_eq!(rep, "alb1"),
            other => panic!("expected YES, got {other:?}"),
        }
        match c
            .request(&Request::Dups {
                entity: "ghost".into(),
            })
            .unwrap()
        {
            Response::Err(msg) => assert!(msg.contains("unknown entity")),
            other => panic!("expected ERR, got {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn pipeline_preserves_order_and_multiline_answers() {
        let (handle, addr) = spawn();
        let mut c = Client::connect(&addr).unwrap();
        let answers = c
            .pipeline()
            .push(Request::Ping)
            .push(Request::Help)
            .push(Request::Rep {
                entity: "alb2".into(),
            })
            .push(Request::Ping)
            .send()
            .unwrap();
        assert_eq!(answers.len(), 4);
        assert_eq!(answers[0], Response::Pong);
        assert!(matches!(&answers[1], Response::Help(h) if h.contains("SAME")));
        assert_eq!(answers[2], Response::Rep { rep: "alb1".into() });
        assert_eq!(answers[3], Response::Pong);
        handle.stop();
    }

    #[test]
    fn run_pipelined_windows_match_sequential_answers() {
        let (handle, addr) = spawn();
        let reqs: Vec<Request> = (0..25)
            .map(|i| match i % 3 {
                0 => Request::Same {
                    a: "alb1".into(),
                    b: "alb2".into(),
                },
                1 => Request::Rep {
                    entity: "alb3".into(),
                },
                _ => Request::Dups {
                    entity: "alb1".into(),
                },
            })
            .collect();
        let mut seq = Client::connect(&addr).unwrap();
        let sequential: Vec<Response> = reqs.iter().map(|r| seq.request(r).unwrap()).collect();
        let mut pip = Client::connect(&addr).unwrap();
        for depth in [1, 4, 64] {
            assert_eq!(
                pip.run_pipelined(&reqs, depth).unwrap(),
                sequential,
                "depth {depth}"
            );
        }
        handle.stop();
    }

    #[test]
    fn run_pipelined_raw_returns_the_wire_paragraphs() {
        let (handle, addr) = spawn();
        let reqs: Vec<Request> = (0..25)
            .map(|i| match i % 3 {
                0 => Request::Same {
                    a: "alb1".into(),
                    b: "alb2".into(),
                },
                1 => Request::Rep {
                    entity: "alb3".into(),
                },
                _ => Request::Dups {
                    entity: "alb1".into(),
                },
            })
            .collect();
        let lines: Vec<String> = reqs.iter().map(|r| r.render()).collect();
        let mut seq = Client::connect(&addr).unwrap();
        let sequential: Vec<String> = lines.iter().map(|l| seq.request_line(l).unwrap()).collect();
        let mut pip = Client::connect(&addr).unwrap();
        for depth in [1, 4, 64] {
            assert_eq!(
                pip.run_pipelined_raw(&lines, depth).unwrap(),
                sequential,
                "depth {depth}"
            );
        }
        // The raw paragraphs parse to the same typed answers.
        let typed = pip.run_pipelined(&reqs, 8).unwrap();
        for (raw, t) in sequential.iter().zip(&typed) {
            assert_eq!(&Response::parse(raw).unwrap(), t);
        }
        handle.stop();
    }

    #[test]
    fn reconnects_after_server_restart_on_same_port() {
        let (handle, addr) = spawn();
        let mut c = Client::connect(&addr).unwrap();
        assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
        handle.stop();
        // Restart a fresh server on the very same port.
        let server = Arc::new(Server::new(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
        ));
        let handle2 = serve(server, &addr, 2).unwrap();
        // The old socket is dead; the client must redial transparently.
        assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
        assert!(c.reconnects() >= 1, "broken pipe must have been healed");
        handle2.stop();
    }

    #[test]
    fn update_batches_are_never_auto_retried() {
        // Kill and restart the server under a connected client, then send
        // an INSERT on the stale socket: the client cannot know whether a
        // written update was applied before the crash, so it must surface
        // the error instead of redialing and resending it.
        let (handle, addr) = spawn();
        let mut c = Client::connect(&addr).unwrap();
        assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
        handle.stop();
        let server = Arc::new(Server::new(
            parse_graph(G).unwrap(),
            KeySet::parse(KEYS).unwrap(),
        ));
        let handle2 = serve(server, &addr, 2).unwrap();
        let insert = Request::Insert {
            batch: r#"alb9:album name_of "Anthology 2""#.into(),
        };
        c.request(&insert)
            .expect_err("an unacknowledged update must not be silently replayed");
        assert_eq!(c.reconnects(), 0);
        // The connection is cleanly re-established for the next call.
        assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
        handle2.stop();
    }

    #[test]
    fn partially_drained_batch_is_never_replayed() {
        // A stub that answers exactly one paragraph per connection and
        // then hangs up mid-batch: the client has read a response, so the
        // server may have acted on the rest of the window — resending
        // would double-apply. The client must surface the error instead
        // of reconnecting and retrying.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let served = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let count = Arc::clone(&served);
        std::thread::spawn(move || {
            use std::io::{BufRead, BufReader, Write};
            for conn in listener.incoming() {
                let Ok(conn) = conn else { break };
                count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) > 0 {
                    let mut w = conn;
                    let _ = w.write_all(b"PONG\n\n");
                } // connection drops here, second paragraph never comes
            }
        });
        let mut c = Client::connect(&addr).unwrap();
        let err = c
            .run_pipelined(&[Request::Ping, Request::Ping], 2)
            .expect_err("partial drain must error, not retry");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(
            c.reconnects(),
            0,
            "a batch with a received paragraph must never be replayed"
        );
        assert_eq!(
            served.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "the batch must not have been resent on a fresh connection"
        );
    }

    #[test]
    fn trace_returns_the_span_tree_and_the_unchanged_answer() {
        let (handle, addr) = spawn();
        let mut c = Client::connect(&addr).unwrap();
        let direct = c
            .request(&Request::Dups {
                entity: "alb1".into(),
            })
            .unwrap();
        let (id, root, answer) = c
            .trace(Request::Dups {
                entity: "alb1".into(),
            })
            .unwrap();
        assert!(id >= 1);
        assert_eq!(answer, direct, "tracing must not change the answer");
        assert_eq!(root.name, "dups");
        let phases: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(phases, ["lookup", "analyze"]);
        // A nested TRACE is rejected server-side; the client surfaces it
        // as InvalidData rather than a bogus span tree.
        let err = c
            .trace(Request::Trace {
                inner: Box::new(Request::Ping),
            })
            .expect_err("nested TRACE must not answer a trace");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        handle.stop();
    }

    #[test]
    fn deadlines_fail_fast_against_a_stalled_server() {
        // A mock that accepts connections and then never answers a byte:
        // without deadlines, metrics()/stats() would block forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for conn in listener.incoming() {
                let Ok(conn) = conn else { break };
                held.push(conn); // keep the socket open, say nothing
            }
        });
        let mut c = Client::connect_timeout(&addr, std::time::Duration::from_secs(5)).unwrap();
        // The configured deadline applies to the info conveniences (which
        // would otherwise use their 5s default) and to plain requests.
        c.set_deadline(Some(std::time::Duration::from_millis(200)));
        let t0 = std::time::Instant::now();
        for err in [
            c.metrics()
                .map(|_| ())
                .expect_err("METRICS must hit the deadline"),
            c.stats()
                .map(|_| ())
                .expect_err("STATS must hit the deadline"),
            c.request(&Request::Ping)
                .map(|_| ())
                .expect_err("a stalled PING must time out"),
        ] {
            assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(3),
            "three stalled calls must each wait only the deadline, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn deadline_calls_still_work_against_a_live_server() {
        let (handle, addr) = spawn();
        let mut c = Client::connect_timeout(&addr, std::time::Duration::from_secs(5)).unwrap();
        c.set_deadline(Some(std::time::Duration::from_secs(5)));
        assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
        let stats = c.stats().unwrap();
        let get = |k: &str| {
            stats
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("no {k} in STATS"))
        };
        assert_eq!(get("role"), "standalone");
        assert_eq!(get("num_shards"), "1");
        assert!(!c.metrics().unwrap().is_empty());
        // Clearing the deadline restores plain blocking reads; answers
        // stay byte-identical either way.
        let with = c.request(&Request::Help).unwrap();
        c.set_deadline(None);
        assert_eq!(c.request(&Request::Help).unwrap(), with);
        handle.stop();
    }

    #[test]
    fn unreachable_address_errors_cleanly() {
        assert!(Client::connect("127.0.0.1:1").is_err());
        let mut lazy = Client::lazy("127.0.0.1:1");
        assert!(lazy.request(&Request::Ping).is_err());
    }

    #[test]
    fn quit_closes_the_session() {
        let (handle, addr) = spawn();
        let c = Client::connect(&addr).unwrap();
        c.quit().unwrap();
        handle.stop();
    }
}
