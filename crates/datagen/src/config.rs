//! Workload generator configuration.
//!
//! The paper's experiments (§6) run on three datasets — Google+, DBpedia
//! and a synthetic generator "controlled by the number of entities E and
//! data values D", with predicates and types "drawn from an alphabet L of
//! 6000 labels", and a key generator "controlled by the maximum radius d
//! and the length c of longest dependency chains". This module exposes all
//! of those knobs; the three presets reproduce the *shapes* of the paper's
//! datasets at configurable scale (see DESIGN.md's substitution table).

/// Dataset flavour — picks naming vocabulary and shape defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// Social-attribute network: few entity types, higher degree
    /// (Google+ stand-in; the paper uses 30 keys here).
    Google,
    /// Knowledge base: many entity types, Fig. 7-style keys
    /// (DBpedia stand-in; 100 keys).
    Dbpedia,
    /// Fully synthetic: many key groups (500 keys in the paper).
    Synthetic,
}

impl Flavor {
    /// Human-readable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Google => "google",
            Flavor::Dbpedia => "dbpedia",
            Flavor::Synthetic => "synthetic",
        }
    }
}

/// All generator knobs. Construct via the presets and refine with the
/// `with_*` builders.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Dataset flavour (naming + defaults provenance).
    pub flavor: Flavor,
    /// RNG seed — workloads are fully deterministic given a config.
    pub seed: u64,
    /// Linear scale factor on population sizes (Fig. 8(b)(f)(j) sweeps
    /// 0.2–1.0).
    pub scale: f64,
    /// Number of keys `||Σ||` to generate.
    pub num_keys: usize,
    /// Length `c` of the longest dependency chain between keys.
    pub chain_len: usize,
    /// Maximum pattern radius `d`.
    pub max_radius: usize,
    /// Background entities per generated type (before scaling).
    pub population: usize,
    /// Planted duplicate chains per key group — each contributes one
    /// ground-truth pair per chain level.
    pub dup_chains: usize,
    /// Near-miss entities per key group: share the blocking attribute but
    /// fail the rest of the key (exercise the pairing filter).
    pub distractors: usize,
    /// Extra non-key edges per entity (inflate d-neighborhoods the way
    /// real social/knowledge graphs do).
    pub noise_edges: usize,
}

impl GenConfig {
    /// Google+-like preset: 30 keys, dense-ish social attributes.
    pub fn google() -> Self {
        GenConfig {
            flavor: Flavor::Google,
            seed: 0x600611E,
            scale: 1.0,
            num_keys: 30,
            chain_len: 2,
            max_radius: 2,
            population: 300,
            dup_chains: 24,
            distractors: 30,
            noise_edges: 3,
        }
    }

    /// DBpedia-like preset: 100 keys over many types.
    pub fn dbpedia() -> Self {
        GenConfig {
            flavor: Flavor::Dbpedia,
            seed: 0xDB,
            scale: 1.0,
            num_keys: 100,
            chain_len: 2,
            max_radius: 2,
            population: 120,
            dup_chains: 10,
            distractors: 12,
            noise_edges: 1,
        }
    }

    /// Synthetic preset: 500 keys (the paper's large workload).
    pub fn synthetic() -> Self {
        GenConfig {
            flavor: Flavor::Synthetic,
            seed: 0x5EED,
            scale: 1.0,
            num_keys: 500,
            chain_len: 2,
            max_radius: 2,
            population: 40,
            dup_chains: 4,
            distractors: 5,
            noise_edges: 1,
        }
    }

    /// Sets the scale factor (population multiplier).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Sets the dependency-chain length `c`.
    pub fn with_chain(mut self, c: usize) -> Self {
        self.chain_len = c;
        self
    }

    /// Sets the maximum radius `d ≥ 1`.
    pub fn with_radius(mut self, d: usize) -> Self {
        assert!(d >= 1, "radius must be at least 1");
        self.max_radius = d;
        self
    }

    /// Sets the number of keys.
    pub fn with_keys(mut self, n: usize) -> Self {
        self.num_keys = n;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scaled population per type (≥ 4 so duplicate planting always fits).
    pub fn scaled_population(&self) -> usize {
        ((self.population as f64 * self.scale).round() as usize).max(4)
    }

    /// Scaled duplicate-chain count (≥ 1).
    pub fn scaled_dups(&self) -> usize {
        ((self.dup_chains as f64 * self.scale).round() as usize).max(1)
    }

    /// Scaled distractor count.
    pub fn scaled_distractors(&self) -> usize {
        (self.distractors as f64 * self.scale).round() as usize
    }

    /// Number of key groups: each group is an independent chain of
    /// `chain_len + 1` keys (levels `0..=c`), value-based at the deepest
    /// level and recursive above it.
    pub fn num_groups(&self) -> usize {
        self.num_keys.div_ceil(self.chain_len + 1).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_key_counts() {
        assert_eq!(GenConfig::google().num_keys, 30);
        assert_eq!(GenConfig::dbpedia().num_keys, 100);
        assert_eq!(GenConfig::synthetic().num_keys, 500);
    }

    #[test]
    fn builders_chain() {
        let c = GenConfig::google()
            .with_scale(0.5)
            .with_chain(4)
            .with_radius(3)
            .with_keys(12);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.chain_len, 4);
        assert_eq!(c.max_radius, 3);
        assert_eq!(c.num_keys, 12);
    }

    #[test]
    fn scaling_respects_minimums() {
        let c = GenConfig::synthetic().with_scale(0.001);
        assert!(c.scaled_population() >= 4);
        assert!(c.scaled_dups() >= 1);
    }

    #[test]
    fn group_count_covers_requested_keys() {
        let c = GenConfig::dbpedia().with_chain(2);
        assert_eq!(c.num_groups(), 34); // 34 * 3 = 102 ≥ 100
        let c1 = GenConfig::dbpedia().with_chain(0);
        assert_eq!(c1.num_groups(), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = GenConfig::google().with_scale(0.0);
    }
}
