//! The workload generator: schema, keys, population, planted duplicates.
//!
//! Workloads are organized in independent *key groups*. Each group is a
//! dependency chain of `c + 1` types `T_0 → T_1 → … → T_c` (the paper's
//! key generator controls the longest dependency chain `c`):
//!
//! * the key for the deepest level `T_c` is **value-based** (name +
//!   second attribute);
//! * the key for `T_i`, `i < c`, is **recursive**: name + an identified
//!   `T_{i+1}` neighbor — so a planted duplicate pair at level `i` can only
//!   be identified after the pair it links to at level `i+1`, forcing a
//!   chain of exactly `c` dependent identifications;
//! * for radius `d > 1`, every key additionally requires a wildcard path
//!   of `d − 1` hops ending in a shared value, which puts the pattern's
//!   radius at exactly `d` (the paper's other key-generator knob).
//!
//! Planted structures per group: `dup_chains` duplicate chains (one
//! ground-truth pair per level), `distractors` near-misses that share the
//! blocking name but fail the rest of the key, and `noise_edges` random
//! edges on predicates no key mentions (they inflate d-neighborhoods
//! without affecting results).

use crate::config::{Flavor, GenConfig};
use gk_core::{Key, KeySet, Term};
use gk_graph::{EntityId, Graph, GraphBuilder, PredId, TypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated workload: the graph, its keys, and the planted ground truth.
pub struct Workload {
    /// Dataset name (flavour).
    pub name: String,
    /// The generated graph.
    pub graph: Graph,
    /// The generated key set (before compilation).
    pub keys: KeySet,
    /// Planted duplicate pairs (normalized, sorted): what `chase(G, Σ)`
    /// must identify — exactly, no more, no less.
    pub truth: Vec<(EntityId, EntityId)>,
}

impl Workload {
    /// The configuration's ground truth as a set size.
    pub fn truth_len(&self) -> usize {
        self.truth.len()
    }
}

/// Vocabulary for flavoured type names.
fn vocab(flavor: Flavor) -> &'static [&'static str] {
    match flavor {
        Flavor::Google => &[
            "person",
            "university",
            "employer",
            "place",
            "school",
            "major",
            "city",
            "club",
            "team",
            "group",
        ],
        Flavor::Dbpedia => &[
            "book",
            "author",
            "publisher",
            "company",
            "artist",
            "album",
            "film",
            "director",
            "city",
            "country",
            "band",
            "label",
        ],
        Flavor::Synthetic => &["node"],
    }
}

/// Identifiers of one group level's schema objects.
struct LevelSchema {
    ty: TypeId,
    name_p: PredId,
    attr2_p: PredId,
    rel_p: Option<PredId>,
    hop_p: Vec<PredId>,
    hop_ty: Vec<TypeId>,
    deep_p: Option<PredId>,
    noise_p: PredId,
}

/// Generates a workload from a configuration. Deterministic in the config.
pub fn generate(cfg: &GenConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();
    let mut keys: Vec<Key> = Vec::new();
    let mut truth: Vec<(EntityId, EntityId)> = Vec::new();

    let c = cfg.chain_len;
    let d = cfg.max_radius;
    let groups = cfg.num_groups();
    let words = vocab(cfg.flavor);

    for g in 0..groups {
        // ---- Schema for this group -------------------------------------
        let levels: Vec<LevelSchema> = (0..=c)
            .map(|i| {
                let word = words[(g * (c + 1) + i) % words.len()];
                let ty = b.intern_type(&format!("{word}_g{g}_l{i}"));
                LevelSchema {
                    ty,
                    name_p: b.intern_pred(&format!("name_of_g{g}_l{i}")),
                    attr2_p: b.intern_pred(&format!("attr_g{g}_l{i}")),
                    rel_p: (i < c).then(|| b.intern_pred(&format!("linked_to_g{g}_l{i}"))),
                    hop_p: (1..d)
                        .map(|j| b.intern_pred(&format!("hop_g{g}_l{i}_{j}")))
                        .collect(),
                    hop_ty: (1..d)
                        .map(|j| b.intern_type(&format!("{word}_aux_g{g}_l{i}_{j}")))
                        .collect(),
                    deep_p: (d > 1).then(|| b.intern_pred(&format!("deep_g{g}_l{i}"))),
                    noise_p: b.intern_pred(&format!("related_g{g}_l{i}")),
                }
            })
            .collect();

        // ---- Keys for this group (stop at the requested total) ----------
        // A partial last group takes its keys from the *deepest* levels so
        // every generated recursive key has a complete chain below it —
        // otherwise its planted duplicates could never be identified.
        let take = (cfg.num_keys - keys.len()).min(c + 1);
        let first_key_level = c + 1 - take;
        for i in first_key_level..=c {
            keys.push(make_key(cfg, g, i, &levels[i], levels.get(i + 1)));
        }

        // ---- Population -------------------------------------------------
        let pop = cfg.scaled_population();
        let dups = cfg.scaled_dups();
        let distractors = cfg.scaled_distractors();

        // Background entities, level by level (deepest first so rel edges
        // can point at already-created entities).
        //
        // Names are drawn from a *shared pool* (≈ pop/4 distinct names per
        // level): real graphs are full of name collisions, and they are
        // what makes the unfiltered algorithms pay for isomorphism checks
        // that the pairing filter avoids. Same-named background entities
        // can never be identified: at level c their second attribute is
        // unique; at recursive levels their partners are **provably
        // distinct** — partner index = e_idx % pop, and two same-named
        // entities' indices differ by a multiple of the pool size < pop —
        // and background partners are never identified (induction from
        // level c up).
        let name_pool = (pop / 4).max(1);
        let mut background: Vec<Vec<EntityId>> = vec![Vec::new(); c + 1];
        for i in (0..=c).rev() {
            let ls = &levels[i];
            for e_idx in 0..pop {
                let e = b.fresh_entity(ls.ty);
                let v = b.intern_value(&format!("n_g{g}_l{i}_b{}", e_idx % name_pool));
                b.attr_ids(e, ls.name_p, v);
                if i == c {
                    let v = b.intern_value(&format!("a_g{g}_l{i}_e{e_idx}"));
                    b.attr_ids(e, ls.attr2_p, v);
                }
                if let Some(rel) = ls.rel_p {
                    let next = background[i + 1][e_idx % background[i + 1].len()];
                    b.link_ids(e, rel, next);
                }
                build_aux_path(&mut b, ls, e, &format!("bg_g{g}_l{i}_e{e_idx}"), None);
                background[i].push(e);
            }
        }

        // Noise edges within each level (predicates unused by keys).
        for i in 0..=c {
            let ls = &levels[i];
            for &e in &background[i] {
                for _ in 0..cfg.noise_edges {
                    let other = background[i][rng.gen_range(0..background[i].len())];
                    if other != e {
                        b.link_ids(e, ls.noise_p, other);
                    }
                }
            }
        }

        // Planted duplicate chains: one ground-truth pair per *keyed* level,
        // linked so that level i is identifiable only after level i+1.
        for k in 0..dups {
            let mut next_pair: Option<(EntityId, EntityId)> = None;
            for i in (first_key_level..=c).rev() {
                let ls = &levels[i];
                let u = b.fresh_entity(ls.ty);
                let v = b.fresh_entity(ls.ty);
                let shared_name = b.intern_value(&format!("dupname_g{g}_k{k}_l{i}"));
                b.attr_ids(u, ls.name_p, shared_name);
                b.attr_ids(v, ls.name_p, shared_name);
                if i == c {
                    let shared_a = b.intern_value(&format!("dupattr_g{g}_k{k}"));
                    b.attr_ids(u, ls.attr2_p, shared_a);
                    b.attr_ids(v, ls.attr2_p, shared_a);
                }
                if let (Some(rel), Some((nu, nv))) = (ls.rel_p, next_pair) {
                    b.link_ids(u, rel, nu);
                    b.link_ids(v, rel, nv);
                }
                let shared_deep = format!("dupdeep_g{g}_k{k}_l{i}");
                build_aux_path(
                    &mut b,
                    ls,
                    u,
                    &format!("du_g{g}_k{k}_l{i}"),
                    Some(&shared_deep),
                );
                build_aux_path(
                    &mut b,
                    ls,
                    v,
                    &format!("dv_g{g}_k{k}_l{i}"),
                    Some(&shared_deep),
                );
                truth.push(if u <= v { (u, v) } else { (v, u) });
                next_pair = Some((u, v));
            }
        }

        // Distractors: near-misses that share a planted pair's name.
        //
        // * At recursive levels (i < c) the distractor also shares the deep
        //   value and links to a background entity of the right type — it
        //   therefore *passes the pairing filter* (pairing checks entity
        //   variables by type only, Prop. 9) but fails the chase, because
        //   its partner is never identified. These keep "candidate
        //   matches" strictly above "confirmed matches", as in Table 2.
        // * At the value-based level c the distractor has a unique second
        //   attribute, so the pairing filter eliminates it (exercising the
        //   cheap-filter path).
        for t in 0..distractors {
            let i = first_key_level + (t % take);
            let k = t % dups;
            let ls = &levels[i];
            let e = b.fresh_entity(ls.ty);
            let shared_name = b.intern_value(&format!("dupname_g{g}_k{k}_l{i}"));
            b.attr_ids(e, ls.name_p, shared_name);
            if i == c {
                let v = b.intern_value(&format!("distr_a_g{g}_t{t}"));
                b.attr_ids(e, ls.attr2_p, v);
                build_aux_path(&mut b, ls, e, &format!("distr_g{g}_t{t}"), None);
            } else {
                if let Some(rel) = ls.rel_p {
                    // A *fresh* partner, never shared: two distractors with
                    // a common partner would be identified through the
                    // identity pair — that would corrupt the ground truth.
                    let nls = &levels[i + 1];
                    let partner = b.fresh_entity(nls.ty);
                    let pv = b.intern_value(&format!("distr_partner_g{g}_t{t}"));
                    b.attr_ids(partner, nls.name_p, pv);
                    b.link_ids(e, rel, partner);
                }
                let shared_deep = format!("dupdeep_g{g}_k{k}_l{i}");
                build_aux_path(
                    &mut b,
                    ls,
                    e,
                    &format!("distr_g{g}_t{t}"),
                    Some(&shared_deep),
                );
            }
        }
    }

    truth.sort_unstable();
    truth.dedup();
    Workload {
        name: cfg.flavor.name().to_string(),
        graph: b.freeze(),
        keys: KeySet::new(keys).expect("generated keys are valid"),
        truth,
    }
}

/// Attaches the radius-`d` wildcard path: `e -hop1-> aux1 -hop2-> … -deep->
/// value`. `shared_deep` plants a value shared between duplicate partners;
/// `None` draws a unique one.
fn build_aux_path(
    b: &mut GraphBuilder,
    ls: &LevelSchema,
    e: EntityId,
    tag: &str,
    shared_deep: Option<&str>,
) {
    let Some(deep_p) = ls.deep_p else {
        return; // d == 1: no path
    };
    let mut cur = e;
    for (&hp, &ht) in ls.hop_p.iter().zip(&ls.hop_ty) {
        let aux = b.fresh_entity(ht);
        b.link_ids(cur, hp, aux);
        cur = aux;
    }
    let deep_val = match shared_deep {
        Some(s) => b.intern_value(s),
        None => b.intern_value(&format!("deepval_{tag}")),
    };
    b.attr_ids(cur, deep_p, deep_val);
}

/// Builds one key: recursive below level `c`, value-based at level `c`,
/// plus the radius-`d` wildcard path.
fn make_key(
    cfg: &GenConfig,
    g: usize,
    i: usize,
    _ls: &LevelSchema,
    next: Option<&LevelSchema>,
) -> Key {
    let c = cfg.chain_len;
    let d = cfg.max_radius;
    let words = vocab(cfg.flavor);
    let word = words[(g * (c + 1) + i) % words.len()];
    let ty = format!("{word}_g{g}_l{i}");
    let mut kb = Key::builder(&format!("K_g{g}_l{i}"), &ty).triple(
        Term::x(),
        &format!("name_of_g{g}_l{i}"),
        Term::val("n"),
    );
    if i == c {
        kb = kb.triple(Term::x(), &format!("attr_g{g}_l{i}"), Term::val("a"));
    } else {
        debug_assert!(next.is_some(), "levels above c have a successor");
        let next_word = words[(g * (c + 1) + i + 1) % words.len()];
        kb = kb.triple(
            Term::x(),
            &format!("linked_to_g{g}_l{i}"),
            Term::var("y", &format!("{next_word}_g{g}_l{}", i + 1)),
        );
    }
    // Radius-d wildcard path ending in a value variable.
    if d > 1 {
        let mut prev = Term::x();
        for j in 1..d {
            let w = Term::wildcard(&format!("h{j}"), &format!("{word}_aux_g{g}_l{i}_{j}"));
            kb = kb.triple(prev, &format!("hop_g{g}_l{i}_{j}"), w.clone());
            prev = w;
        }
        kb = kb.triple(prev, &format!("deep_g{g}_l{i}"), Term::val("w"));
    }
    kb.build().expect("generated key is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::{chase_reference, ChaseOrder};

    fn tiny(flavor: Flavor) -> GenConfig {
        let base = match flavor {
            Flavor::Google => GenConfig::google(),
            Flavor::Dbpedia => GenConfig::dbpedia(),
            Flavor::Synthetic => GenConfig::synthetic().with_keys(12),
        };
        base.with_scale(0.05)
    }

    #[test]
    fn generated_keys_have_requested_counts_and_shape() {
        let cfg = tiny(Flavor::Google).with_chain(2).with_radius(2);
        let w = generate(&cfg);
        assert_eq!(w.keys.cardinality(), cfg.num_keys);
        assert_eq!(w.keys.max_radius(), 2);
        assert!(w.keys.recursive_count() > 0);
        // The longest chain c is as requested.
        assert_eq!(w.keys.longest_chain(), 2);
    }

    #[test]
    fn radius_knob_controls_pattern_radius() {
        for d in 1..=3 {
            let cfg = tiny(Flavor::Dbpedia).with_keys(6).with_radius(d);
            let w = generate(&cfg);
            assert_eq!(w.keys.max_radius(), d, "d={d}");
        }
    }

    #[test]
    fn chain_knob_controls_dependency_chain() {
        for c in 0..=3 {
            let cfg = tiny(Flavor::Synthetic).with_keys(8).with_chain(c);
            let w = generate(&cfg);
            assert_eq!(w.keys.longest_chain(), c, "c={c}");
        }
    }

    #[test]
    fn chase_recovers_exactly_the_planted_truth() {
        // The core guarantee of the generator: ground truth in, ground
        // truth out — no accidental duplicates, none missed.
        for flavor in [Flavor::Google, Flavor::Dbpedia, Flavor::Synthetic] {
            let cfg = tiny(flavor);
            let w = generate(&cfg);
            let compiled = w.keys.compile(&w.graph);
            let got =
                chase_reference(&w.graph, &compiled, ChaseOrder::Deterministic).identified_pairs();
            assert_eq!(got, w.truth, "flavor {flavor:?}");
            assert!(!w.truth.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny(Flavor::Google);
        let w1 = generate(&cfg);
        let w2 = generate(&cfg);
        assert_eq!(w1.truth, w2.truth);
        assert_eq!(w1.graph.num_triples(), w2.graph.num_triples());
        assert_eq!(w1.graph.num_entities(), w2.graph.num_entities());
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = generate(&tiny(Flavor::Google));
        let w2 = generate(&tiny(Flavor::Google).with_seed(42));
        // Same shape, different wiring.
        assert_eq!(w1.truth.len(), w2.truth.len());
        assert_eq!(w1.graph.num_entities(), w2.graph.num_entities());
    }

    #[test]
    fn scale_grows_the_graph() {
        let small = generate(&tiny(Flavor::Dbpedia));
        let large = generate(&tiny(Flavor::Dbpedia).with_scale(0.2));
        assert!(large.graph.num_triples() > small.graph.num_triples());
        assert!(large.truth.len() >= small.truth.len());
    }

    #[test]
    fn truth_pairs_have_matching_types() {
        let w = generate(&tiny(Flavor::Synthetic));
        for &(a, b) in &w.truth {
            assert_eq!(w.graph.entity_type(a), w.graph.entity_type(b));
            assert!(a < b);
        }
    }

    #[test]
    fn chain_zero_means_value_based_only() {
        let cfg = tiny(Flavor::Synthetic).with_keys(5).with_chain(0);
        let w = generate(&cfg);
        assert_eq!(w.keys.recursive_count(), 0);
    }
}
