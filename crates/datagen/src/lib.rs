//! # gk-datagen — workload generators for graph-key experiments
//!
//! Reproduces the experimental workloads of *Keys for Graphs* (§6) at
//! configurable scale:
//!
//! * [`GenConfig::google`] — a Google+-shaped social-attribute network
//!   (30 keys);
//! * [`GenConfig::dbpedia`] — a DBpedia-shaped knowledge base (100 keys);
//! * [`GenConfig::synthetic`] — the paper's synthetic generator
//!   (500 keys);
//!
//! each with the paper's key-generator knobs: dependency-chain length `c`,
//! maximum radius `d`, and a scale factor for the |G| sweeps. Workloads
//! carry **planted ground truth**: the chase must identify exactly the
//! planted duplicate pairs (the generator's tests enforce this), which is
//! what lets the benchmark harness check correctness while it measures.
//!
//! ```
//! use gk_datagen::{generate, GenConfig};
//! use gk_core::{chase_reference, ChaseOrder};
//!
//! let w = generate(&GenConfig::google().with_scale(0.05));
//! let keys = w.keys.compile(&w.graph);
//! let found = chase_reference(&w.graph, &keys, ChaseOrder::default());
//! assert_eq!(found.identified_pairs(), w.truth);
//! ```

#![warn(missing_docs)]

mod config;
mod generator;

pub use config::{Flavor, GenConfig};
pub use generator::{generate, Workload};
