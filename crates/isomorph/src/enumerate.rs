//! Enumerate-all matching — the `EM^VF2_MR` baseline of the paper (§6).
//!
//! The naive way to check `S1(e1) ≅_Q S2(e2)` is to run an off-the-shelf
//! subgraph-isomorphism algorithm (VF2 in the paper) to list **all** matches
//! of `Q(x)` at `e1` and at `e2`, and then test whether any two coincide.
//! The paper uses this as the baseline that `EvalMR`'s fused, early-
//! terminating search beats by 1.4–1.9×. We reproduce it faithfully: the
//! per-side enumeration is exhaustive (no early termination), only the final
//! cross-check may stop early.

use crate::pairpattern::{EqOracle, PairPattern, SlotKind, Step};
use gk_graph::{EntityId, GraphView, NodeId, NodeSet};

/// One complete single-side match: slot index → matched node.
pub type Valuation = Box<[NodeId]>;

/// Enumerates **all** matches of `q` at anchor entity `e` (the valuations
/// `ν` of §2.1: type-correct, predicate-preserving, injective).
///
/// `cap` bounds the number of matches collected as a safety valve for
/// adversarial graphs; the paper's baseline has no such bound, so pass
/// `usize::MAX` to mirror it exactly.
pub fn enumerate_matches<G: GraphView>(
    g: &G,
    q: &PairPattern,
    e: EntityId,
    scope: Option<&NodeSet>,
    cap: usize,
) -> Vec<Valuation> {
    if g.entity_type(e) != q.anchor_type() {
        return Vec::new();
    }
    if let Some(s) = scope {
        if !s.contains(NodeId::entity(e)) {
            return Vec::new();
        }
    }
    let mut en = Enumerator {
        g,
        q,
        scope,
        cap,
        m: vec![None; q.slots().len()],
        out: Vec::new(),
    };
    en.m[q.anchor() as usize] = Some(NodeId::entity(e));
    en.run(0);
    en.out
}

struct Enumerator<'a, G> {
    g: &'a G,
    q: &'a PairPattern,
    scope: Option<&'a NodeSet>,
    cap: usize,
    m: Vec<Option<NodeId>>,
    out: Vec<Valuation>,
}

impl<G: GraphView> Enumerator<'_, G> {
    fn run(&mut self, step_idx: usize) {
        if self.out.len() >= self.cap {
            return;
        }
        let Some(&step) = self.q.plan().get(step_idx) else {
            self.out
                .push(self.m.iter().map(|b| b.expect("full")).collect());
            return;
        };
        match step {
            Step::CheckEdge { t } => {
                let tri = self.q.triples()[t as usize];
                let s = self.m[tri.s as usize].expect("bound");
                let o = self.m[tri.o as usize].expect("bound");
                if self
                    .g
                    .has(s.as_entity().expect("entity subject"), tri.p, o.to_obj())
                {
                    self.run(step_idx + 1);
                }
            }
            Step::ExpandForward { t } => {
                let tri = self.q.triples()[t as usize];
                let s = self.m[tri.s as usize].expect("bound");
                let se = s.as_entity().expect("entity subject");
                // Candidate objects come from the adjacency list (guided
                // expansion), filtered by the slot kind.
                let cands: Vec<NodeId> = self
                    .g
                    .out_with(se, tri.p)
                    .iter()
                    .map(|&(_, o)| o.node())
                    .collect();
                for c in cands {
                    if self.admissible(tri.o, c) {
                        self.m[tri.o as usize] = Some(c);
                        self.run(step_idx + 1);
                        self.m[tri.o as usize] = None;
                    }
                }
            }
            Step::ExpandBackward { t } => {
                let tri = self.q.triples()[t as usize];
                let o = self.m[tri.o as usize].expect("bound");
                let cands: Vec<NodeId> = self
                    .g
                    .in_with(o, tri.p)
                    .iter()
                    .map(|&(_, s)| NodeId::entity(s))
                    .collect();
                for c in cands {
                    if self.admissible(tri.s, c) {
                        self.m[tri.s as usize] = Some(c);
                        self.run(step_idx + 1);
                        self.m[tri.s as usize] = None;
                    }
                }
            }
        }
    }

    fn admissible(&self, slot: u16, n: NodeId) -> bool {
        if let Some(s) = self.scope {
            if !s.contains(n) {
                return false;
            }
        }
        if self.m.iter().flatten().any(|&b| b == n) {
            return false; // injectivity of ν
        }
        match self.q.slots()[slot as usize] {
            SlotKind::Anchor(_) => false,
            SlotKind::EqEntity(ty) | SlotKind::Wildcard(ty) => {
                n.as_entity().is_some_and(|e| self.g.entity_type(e) == ty)
            }
            SlotKind::ValueVar => n.is_value(),
            SlotKind::Const(d) => n == NodeId::value(d),
        }
    }
}

/// Do two single-side matches *coincide* (`S1(e1) ≅_Q S2(e2)`, §2.2)?
///
/// Per slot: entity variables need `(s1, s2) ∈ Eq`; value variables need the
/// same value; constants trivially agree; wildcards impose nothing; the
/// anchor is the candidate pair itself, so nothing is required of it.
pub fn coincide<E: EqOracle + ?Sized>(
    q: &PairPattern,
    m1: &[NodeId],
    m2: &[NodeId],
    eq: &E,
) -> bool {
    debug_assert_eq!(m1.len(), q.slots().len());
    debug_assert_eq!(m2.len(), q.slots().len());
    q.slots().iter().enumerate().all(|(i, kind)| match kind {
        SlotKind::Anchor(_) | SlotKind::Wildcard(_) | SlotKind::Const(_) => true,
        SlotKind::EqEntity(_) => match (m1[i].as_entity(), m2[i].as_entity()) {
            (Some(a), Some(b)) => eq.same(a, b),
            _ => false,
        },
        SlotKind::ValueVar => m1[i] == m2[i],
    })
}

/// The full baseline check: enumerate all matches at `e1` and all at `e2`
/// (no early termination, as in `EM^VF2_MR`), then search for a coinciding
/// pair.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn eval_pair_enumerate<G: GraphView, E: EqOracle + ?Sized>(
    g: &G,
    q: &PairPattern,
    e1: EntityId,
    e2: EntityId,
    eq: &E,
    scope1: Option<&NodeSet>,
    scope2: Option<&NodeSet>,
    cap: usize,
) -> bool {
    let ms1 = enumerate_matches(g, q, e1, scope1, cap);
    if ms1.is_empty() {
        return false;
    }
    let ms2 = enumerate_matches(g, q, e2, scope2, cap);
    ms1.iter()
        .any(|m1| ms2.iter().any(|m2| coincide(q, m1, m2, eq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::{eval_pair, MatchScope};
    use crate::pairpattern::{IdentityEq, PTriple};
    use gk_graph::Graph;
    use gk_graph::{parse_graph, TypeId};

    fn pt(s: u16, p: gk_graph::PredId, o: u16) -> PTriple {
        PTriple { s, p, o }
    }

    fn g1() -> Graph {
        parse_graph(
            r#"
            alb1:album  name_of       "Anthology 2"
            alb1:album  release_year  "1996"
            alb2:album  name_of       "Anthology 2"
            alb2:album  release_year  "1996"
            alb3:album  name_of       "Anthology 2"
            "#,
        )
        .unwrap()
    }

    fn q2(g: &Graph) -> PairPattern {
        PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("album").unwrap()),
                SlotKind::ValueVar,
                SlotKind::ValueVar,
            ],
            vec![
                pt(0, g.pred("name_of").unwrap(), 1),
                pt(0, g.pred("release_year").unwrap(), 2),
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn enumerates_single_match() {
        let g = g1();
        let q = q2(&g);
        let e = g.entity_named("alb1").unwrap();
        let ms = enumerate_matches(&g, &q, e, None, usize::MAX);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0][0], NodeId::entity(e));
    }

    #[test]
    fn no_match_without_required_edge() {
        let g = g1();
        let q = q2(&g);
        let e = g.entity_named("alb3").unwrap(); // no release_year
        assert!(enumerate_matches(&g, &q, e, None, usize::MAX).is_empty());
    }

    #[test]
    fn multiple_matches_enumerated() {
        // x with two p-neighbors of the wildcard type: two valuations.
        let g = parse_graph(
            r#"
            x1:s p y:t
            x1:s p z:t
            "#,
        )
        .unwrap();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("s").unwrap()),
                SlotKind::Wildcard(g.etype("t").unwrap()),
            ],
            vec![pt(0, g.pred("p").unwrap(), 1)],
            0,
        )
        .unwrap();
        let ms = enumerate_matches(&g, &q, g.entity_named("x1").unwrap(), None, usize::MAX);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn cap_limits_enumeration() {
        let g = parse_graph("x1:s p y:t\nx1:s p z:t\nx1:s p w:t").unwrap();
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(g.etype("s").unwrap()),
                SlotKind::Wildcard(g.etype("t").unwrap()),
            ],
            vec![pt(0, g.pred("p").unwrap(), 1)],
            0,
        )
        .unwrap();
        let ms = enumerate_matches(&g, &q, g.entity_named("x1").unwrap(), None, 2);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn baseline_agrees_with_guided_matcher() {
        let g = g1();
        let q = q2(&g);
        let pairs = [("alb1", "alb2"), ("alb1", "alb3"), ("alb2", "alb3")];
        for (a, b) in pairs {
            let ea = g.entity_named(a).unwrap();
            let eb = g.entity_named(b).unwrap();
            let guided = eval_pair(&g, &q, ea, eb, &IdentityEq, MatchScope::whole_graph());
            let baseline = eval_pair_enumerate(&g, &q, ea, eb, &IdentityEq, None, None, usize::MAX);
            assert_eq!(guided, baseline, "disagreement on ({a}, {b})");
        }
    }

    #[test]
    fn coincide_checks_value_slots() {
        let g = g1();
        let q = q2(&g);
        let a = g.entity_named("alb1").unwrap();
        let b = g.entity_named("alb2").unwrap();
        let m1 = enumerate_matches(&g, &q, a, None, usize::MAX).remove(0);
        let m2 = enumerate_matches(&g, &q, b, None, usize::MAX).remove(0);
        assert!(coincide(&q, &m1, &m2, &IdentityEq));
    }

    #[test]
    fn anchor_type_mismatch_yields_nothing() {
        let g = parse_graph("x1:s p y:t").unwrap();
        let q = PairPattern::new(
            vec![SlotKind::Anchor(TypeId(999)), SlotKind::ValueVar],
            vec![pt(0, g.pred("p").unwrap(), 1)],
            0,
        );
        // TypeId(999) is not any entity's type; enumeration must be empty.
        if let Ok(q) = q {
            assert!(enumerate_matches(&g, &q, g.entity_named("x1").unwrap(), None, 10).is_empty());
        }
    }
}
