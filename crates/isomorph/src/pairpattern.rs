//! The compiled, paired form of a graph-pattern key.
//!
//! A key `Q(x)` (§2.2) is checked at a *pair* of entities `(e1, e2)`:
//! both sides must match `Q(x)` and the two matches must *coincide*
//! (`S1(e1) ≅_Q S2(e2)`). Procedure `EvalMR` of the paper (§4.1) fuses the
//! two isomorphism checks into one search over a vector
//! `m[s_Q] = (s1, s2)`. A [`PairPattern`] is the compiled pattern that
//! search runs on: slots with [`SlotKind`]s (the variable kinds of §2.1)
//! and predicate-labeled triples between slots, plus a precomputed
//! [`SearchPlan`] that guides expansion outward from the designated
//! variable.

use gk_graph::{DegreeReq, EntityId, PredId, TypeId, ValueId};

/// The kind of a pattern slot — the paper's variable taxonomy (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotKind {
    /// The designated variable `x` of type τ; pre-bound to the candidate
    /// pair `(e1, e2)`.
    Anchor(TypeId),
    /// An entity variable `y` of type τ — *recursive*: requires the pair of
    /// matched entities to already be identified, `(s1, s2) ∈ Eq`.
    EqEntity(TypeId),
    /// A wildcard `ȳ` of type τ — requires only that both sides match
    /// *some* entity of type τ; the two entities may differ.
    Wildcard(TypeId),
    /// A value variable `y*` — requires *value equality*: both sides must
    /// match the same value.
    ValueVar,
    /// A constant `d` — both sides must match exactly this value.
    Const(ValueId),
}

impl SlotKind {
    /// True iff the slot binds entity nodes (subject positions must be
    /// entity-kind).
    pub fn is_entity_kind(self) -> bool {
        matches!(
            self,
            SlotKind::Anchor(_) | SlotKind::EqEntity(_) | SlotKind::Wildcard(_)
        )
    }

    /// True iff this slot makes the key *recursively defined* (§2.2).
    pub fn is_recursive(self) -> bool {
        matches!(self, SlotKind::EqEntity(_))
    }
}

/// A pattern triple `(s_Q, p_Q, o_Q)` between slots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PTriple {
    /// Subject slot index (entity-kind).
    pub s: u16,
    /// Predicate.
    pub p: PredId,
    /// Object slot index.
    pub o: u16,
}

/// One step of the precomputed search order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Both endpoints already bound: verify the edge exists on both sides.
    CheckEdge {
        /// Index into [`PairPattern::triples`].
        t: u16,
    },
    /// Subject bound, object not: enumerate object candidates forward.
    ExpandForward {
        /// Index into [`PairPattern::triples`].
        t: u16,
    },
    /// Object bound, subject not: enumerate subject candidates backward.
    ExpandBackward {
        /// Index into [`PairPattern::triples`].
        t: u16,
    },
}

/// Error raised when a [`PairPattern`] is structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern has no triples — it would identify every entity of the
    /// anchor type, which the paper's connected-pattern assumption forbids.
    Empty,
    /// A slot index in a triple is out of range.
    BadSlot(u16),
    /// A triple's subject slot is a value slot.
    ValueSubject(u16),
    /// The anchor index does not refer to an `Anchor` slot, or there is more
    /// than one anchor.
    BadAnchor,
    /// The pattern is not connected to the anchor (§2.1 assumes `Q(x)`
    /// connected).
    Disconnected,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::Empty => write!(f, "pattern has no triples"),
            PatternError::BadSlot(i) => write!(f, "slot index {i} out of range"),
            PatternError::ValueSubject(t) => {
                write!(f, "triple {t} has a value slot in subject position")
            }
            PatternError::BadAnchor => write!(f, "pattern must have exactly one anchor slot"),
            PatternError::Disconnected => {
                write!(f, "pattern is not connected to the designated variable")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A compiled paired pattern: slots, triples, anchor, and derived data
/// (search plan, radius, adjacency).
#[derive(Clone, Debug)]
pub struct PairPattern {
    slots: Vec<SlotKind>,
    triples: Vec<PTriple>,
    anchor: u16,
    plan: Vec<Step>,
    radius: usize,
    recursive: bool,
    degree_reqs: Vec<DegreeReq>,
}

impl PairPattern {
    /// Builds and validates a pattern, precomputing the search plan.
    pub fn new(
        slots: Vec<SlotKind>,
        triples: Vec<PTriple>,
        anchor: u16,
    ) -> Result<Self, PatternError> {
        if triples.is_empty() {
            return Err(PatternError::Empty);
        }
        let n = slots.len() as u16;
        if anchor >= n || !matches!(slots[anchor as usize], SlotKind::Anchor(_)) {
            return Err(PatternError::BadAnchor);
        }
        if slots
            .iter()
            .filter(|s| matches!(s, SlotKind::Anchor(_)))
            .count()
            != 1
        {
            return Err(PatternError::BadAnchor);
        }
        for (i, t) in triples.iter().enumerate() {
            if t.s >= n || t.o >= n {
                return Err(PatternError::BadSlot(t.s.max(t.o)));
            }
            if !slots[t.s as usize].is_entity_kind() {
                return Err(PatternError::ValueSubject(i as u16));
            }
        }
        let plan = build_plan(&slots, &triples, anchor)?;
        let radius = compute_radius(slots.len(), &triples, anchor);
        let recursive = slots.iter().any(|s| s.is_recursive());
        let degree_reqs = compute_degree_reqs(slots.len(), &triples);
        Ok(PairPattern {
            slots,
            triples,
            anchor,
            plan,
            radius,
            recursive,
            degree_reqs,
        })
    }

    /// The slot kinds, indexed by slot id.
    pub fn slots(&self) -> &[SlotKind] {
        &self.slots
    }

    /// The pattern triples. `|Q|` is `triples().len()`.
    pub fn triples(&self) -> &[PTriple] {
        &self.triples
    }

    /// The anchor (designated variable) slot index.
    pub fn anchor(&self) -> u16 {
        self.anchor
    }

    /// The anchor's entity type τ.
    pub fn anchor_type(&self) -> TypeId {
        match self.slots[self.anchor as usize] {
            SlotKind::Anchor(t) => t,
            _ => unreachable!("validated anchor"),
        }
    }

    /// The precomputed search order.
    pub fn plan(&self) -> &[Step] {
        &self.plan
    }

    /// The radius `d(Q, x)` — longest undirected distance from the anchor
    /// to any slot (§2.2, Table 1).
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// True iff the pattern contains an entity variable (recursive key).
    pub fn is_recursive(&self) -> bool {
        self.recursive
    }

    /// Number of pattern triples, the paper's `|Q|`.
    pub fn size(&self) -> usize {
        self.triples.len()
    }

    /// The structural degree demand on any entity bound to `slot`.
    ///
    /// Sound for pruning because the paired matcher is injective over
    /// *every* slot (entity and value alike): distinct pattern triples
    /// incident to a slot always map to distinct graph edges of the bound
    /// entity, so an entity with fewer edges than the slot has incident
    /// triples can never take part in a match.
    #[inline]
    pub fn slot_req(&self, slot: u16) -> DegreeReq {
        self.degree_reqs[slot as usize]
    }

    /// The degree demand on the anchor — candidates failing it can never
    /// be identified by this key.
    #[inline]
    pub fn anchor_req(&self) -> DegreeReq {
        self.slot_req(self.anchor)
    }

    /// Indices of slots whose kind is [`SlotKind::EqEntity`].
    pub fn recursive_slots(&self) -> impl Iterator<Item = u16> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_recursive())
            .map(|(i, _)| i as u16)
    }
}

/// Greedy search-plan construction: start at the anchor, repeatedly process
/// a triple with at least one bound endpoint, preferring (1) triples whose
/// both endpoints are bound (cheap edge checks) and (2) expansions into the
/// most selective slot kinds (constants, then value variables, then entity
/// kinds). Fails if the pattern is not connected to the anchor.
fn build_plan(
    slots: &[SlotKind],
    triples: &[PTriple],
    anchor: u16,
) -> Result<Vec<Step>, PatternError> {
    let mut bound = vec![false; slots.len()];
    bound[anchor as usize] = true;
    let mut done = vec![false; triples.len()];
    let mut plan = Vec::with_capacity(triples.len());

    let selectivity = |slot: u16| -> u8 {
        match slots[slot as usize] {
            SlotKind::Const(_) => 0,
            SlotKind::ValueVar => 1,
            SlotKind::EqEntity(_) => 2,
            SlotKind::Wildcard(_) => 3,
            SlotKind::Anchor(_) => 4,
        }
    };

    for _ in 0..triples.len() {
        // First preference: a pending triple with both endpoints bound.
        let mut pick: Option<(usize, Step, u8)> = None;
        for (i, t) in triples.iter().enumerate() {
            if done[i] {
                continue;
            }
            let sb = bound[t.s as usize];
            let ob = bound[t.o as usize];
            let cand = if sb && ob {
                Some((Step::CheckEdge { t: i as u16 }, 0u8))
            } else if sb {
                Some((Step::ExpandForward { t: i as u16 }, 1 + selectivity(t.o)))
            } else if ob {
                Some((Step::ExpandBackward { t: i as u16 }, 1 + selectivity(t.s)))
            } else {
                None
            };
            if let Some((step, rank)) = cand {
                if pick.as_ref().is_none_or(|&(_, _, r)| rank < r) {
                    pick = Some((i, step, rank));
                }
            }
        }
        let Some((i, step, _)) = pick else {
            return Err(PatternError::Disconnected);
        };
        done[i] = true;
        match step {
            Step::ExpandForward { t } => bound[triples[t as usize].o as usize] = true,
            Step::ExpandBackward { t } => bound[triples[t as usize].s as usize] = true,
            Step::CheckEdge { .. } => {}
        }
        plan.push(step);
    }
    if bound.iter().any(|b| !b) {
        return Err(PatternError::Disconnected);
    }
    Ok(plan)
}

/// BFS over the undirected pattern graph from the anchor.
fn compute_radius(n_slots: usize, triples: &[PTriple], anchor: u16) -> usize {
    let mut adj: Vec<Vec<u16>> = vec![Vec::new(); n_slots];
    for t in triples {
        if t.s != t.o {
            adj[t.s as usize].push(t.o);
            adj[t.o as usize].push(t.s);
        }
    }
    let mut dist = vec![usize::MAX; n_slots];
    dist[anchor as usize] = 0;
    let mut queue = std::collections::VecDeque::from([anchor]);
    let mut max = 0;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                max = max.max(dist[v as usize]);
                queue.push_back(v);
            }
        }
    }
    max
}

/// Per-slot degree requirements: distinct outgoing / incoming / self-loop
/// pattern triples incident to each slot (duplicate triples deduplicated —
/// a repeated `(s, p, o)` denotes one edge, not two).
fn compute_degree_reqs(n_slots: usize, triples: &[PTriple]) -> Vec<DegreeReq> {
    let mut uniq: Vec<(u16, u32, u16)> = triples.iter().map(|t| (t.s, t.p.0, t.o)).collect();
    uniq.sort_unstable();
    uniq.dedup();
    let mut reqs = vec![DegreeReq::default(); n_slots];
    for (s, _, o) in uniq {
        if s == o {
            reqs[s as usize].loops += 1;
        } else {
            reqs[s as usize].out += 1;
            reqs[o as usize].inc += 1;
        }
    }
    reqs
}

/// Answers "have these two entities already been identified?" during
/// matching — the paper's `(s1, s2) ∈ Eq` test for entity variables (§3.1).
///
/// Implemented by the chase's equivalence relation; [`IdentityEq`] is the
/// initial `Eq0` (node identity only).
pub trait EqOracle: Sync {
    /// True iff `a` and `b` are in the same equivalence class.
    fn same(&self, a: EntityId, b: EntityId) -> bool;
}

/// The node-identity relation `Eq0 = {(e, e)}` — no entities identified yet.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityEq;

impl EqOracle for IdentityEq {
    fn same(&self, a: EntityId, b: EntityId) -> bool {
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u16, p: u32, o: u16) -> PTriple {
        PTriple { s, p: PredId(p), o }
    }

    /// Q2-like: x -name-> v*, x -year-> w*.
    fn star() -> PairPattern {
        PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::ValueVar,
                SlotKind::ValueVar,
            ],
            vec![t(0, 0, 1), t(0, 1, 2)],
            0,
        )
        .unwrap()
    }

    #[test]
    fn star_pattern_basics() {
        let q = star();
        assert_eq!(q.radius(), 1);
        assert!(!q.is_recursive());
        assert_eq!(q.size(), 2);
        assert_eq!(q.anchor_type(), TypeId(0));
        assert_eq!(q.plan().len(), 2);
        assert!(q
            .plan()
            .iter()
            .all(|s| matches!(s, Step::ExpandForward { .. })));
    }

    #[test]
    fn degree_reqs_count_distinct_incident_triples() {
        let q = star();
        assert_eq!(
            q.anchor_req(),
            DegreeReq {
                out: 2,
                inc: 0,
                loops: 0
            }
        );
        assert_eq!(
            q.slot_req(1),
            DegreeReq {
                out: 0,
                inc: 1,
                loops: 0
            }
        );
    }

    #[test]
    fn degree_reqs_dedup_triples_and_count_loops() {
        // x -p-> x (twice, same triple), x -q-> y, y -r-> x.
        let q = PairPattern::new(
            vec![SlotKind::Anchor(TypeId(0)), SlotKind::Wildcard(TypeId(0))],
            vec![t(0, 0, 0), t(0, 0, 0), t(0, 1, 1), t(1, 2, 0)],
            0,
        )
        .unwrap();
        assert_eq!(
            q.anchor_req(),
            DegreeReq {
                out: 1,
                inc: 1,
                loops: 1
            }
        );
        assert_eq!(
            q.slot_req(1),
            DegreeReq {
                out: 1,
                inc: 1,
                loops: 0
            }
        );
    }

    #[test]
    fn recursive_flag_and_slots() {
        let q = PairPattern::new(
            vec![SlotKind::Anchor(TypeId(0)), SlotKind::EqEntity(TypeId(1))],
            vec![t(0, 0, 1)],
            0,
        )
        .unwrap();
        assert!(q.is_recursive());
        assert_eq!(q.recursive_slots().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn radius_of_chain() {
        // x -> y -> v*
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::ValueVar,
            ],
            vec![t(0, 0, 1), t(1, 1, 2)],
            0,
        )
        .unwrap();
        assert_eq!(q.radius(), 2);
    }

    #[test]
    fn backward_edges_planned() {
        // y -> x (x is object), like Q4's parent_of edges into x.
        let q = PairPattern::new(
            vec![SlotKind::Anchor(TypeId(0)), SlotKind::EqEntity(TypeId(0))],
            vec![t(1, 0, 0)],
            0,
        )
        .unwrap();
        assert_eq!(q.plan(), &[Step::ExpandBackward { t: 0 }]);
    }

    #[test]
    fn diamond_gets_check_edge() {
        // x -> a, x -> b, a -> c, b -> c: the 4th triple closes a cycle so
        // one endpoint pair is already bound by then.
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::ValueVar,
            ],
            vec![t(0, 0, 1), t(0, 0, 2), t(1, 1, 3), t(2, 1, 3)],
            0,
        )
        .unwrap();
        let checks = q
            .plan()
            .iter()
            .filter(|s| matches!(s, Step::CheckEdge { .. }))
            .count();
        assert_eq!(checks, 1);
        assert_eq!(q.plan().len(), 4);
    }

    #[test]
    fn plan_prefers_selective_slots() {
        // x -> wildcard and x -> const: const should be expanded first.
        let q = PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::Const(ValueId(0)),
            ],
            vec![t(0, 0, 1), t(0, 1, 2)],
            0,
        )
        .unwrap();
        assert_eq!(q.plan()[0], Step::ExpandForward { t: 1 });
    }

    #[test]
    fn rejects_empty() {
        let err = PairPattern::new(vec![SlotKind::Anchor(TypeId(0))], vec![], 0).unwrap_err();
        assert_eq!(err, PatternError::Empty);
    }

    #[test]
    fn rejects_value_subject() {
        let err = PairPattern::new(
            vec![SlotKind::Anchor(TypeId(0)), SlotKind::ValueVar],
            vec![t(1, 0, 0)],
            0,
        )
        .unwrap_err();
        assert_eq!(err, PatternError::ValueSubject(0));
    }

    #[test]
    fn rejects_disconnected() {
        // x -> v*, plus w -> u* island.
        let err = PairPattern::new(
            vec![
                SlotKind::Anchor(TypeId(0)),
                SlotKind::ValueVar,
                SlotKind::Wildcard(TypeId(1)),
                SlotKind::ValueVar,
            ],
            vec![t(0, 0, 1), t(2, 0, 3)],
            0,
        )
        .unwrap_err();
        assert_eq!(err, PatternError::Disconnected);
    }

    #[test]
    fn rejects_missing_or_double_anchor() {
        let err = PairPattern::new(
            vec![SlotKind::Wildcard(TypeId(0)), SlotKind::ValueVar],
            vec![t(0, 0, 1)],
            0,
        )
        .unwrap_err();
        assert_eq!(err, PatternError::BadAnchor);
        let err2 = PairPattern::new(
            vec![SlotKind::Anchor(TypeId(0)), SlotKind::Anchor(TypeId(0))],
            vec![t(0, 0, 1)],
            0,
        )
        .unwrap_err();
        assert_eq!(err2, PatternError::BadAnchor);
    }

    #[test]
    fn rejects_bad_slot_index() {
        let err =
            PairPattern::new(vec![SlotKind::Anchor(TypeId(0))], vec![t(0, 0, 9)], 0).unwrap_err();
        assert_eq!(err, PatternError::BadSlot(9));
    }

    #[test]
    fn self_loop_on_anchor_is_check_edge() {
        let q = PairPattern::new(vec![SlotKind::Anchor(TypeId(0))], vec![t(0, 0, 0)], 0).unwrap();
        assert_eq!(q.plan(), &[Step::CheckEdge { t: 0 }]);
        assert_eq!(q.radius(), 0);
    }

    #[test]
    fn identity_eq_oracle() {
        assert!(IdentityEq.same(EntityId(1), EntityId(1)));
        assert!(!IdentityEq.same(EntityId(1), EntityId(2)));
    }
}
