//! # gk-isomorph — subgraph-isomorphism engines for graph keys
//!
//! Keys for graphs are interpreted by *graph pattern matching via subgraph
//! isomorphism* (Fan et al., PVLDB 2015, §2). Checking a key at a candidate
//! pair `(e1, e2)` asks for two matches `S1` at `e1` and `S2` at `e2` that
//! *coincide* — agree on value variables, have `Eq`-identified entity
//! variables, and anything of the right type for wildcards.
//!
//! This crate provides three engines over a compiled [`PairPattern`]:
//!
//! * [`eval_pair`] — the paper's fused, early-terminating
//!   procedure `EvalMR` (§4.1): one backtracking search over *pairs* of
//!   nodes, guided by a precomputed expansion plan;
//! * [`eval_pair_enumerate`] — the enumerate-all `EM^VF2_MR` baseline (§6):
//!   list all matches per side, then cross-check coincidence;
//! * [`pairing_seeded`] — the polynomial *pairing relation* of Prop. 9
//!   (§4.2), a sound pre-filter that also powers the product graph and
//!   dependency edges of the vertex-centric algorithm.

#![warn(missing_docs)]

mod enumerate;
mod guided;
mod pairing;
mod pairpattern;

pub use enumerate::{coincide, enumerate_matches, eval_pair_enumerate, Valuation};
pub use guided::{eval_pair, eval_pair_stats, eval_pair_witness, EvalStats, MatchScope};
pub use pairing::{pairing_at, pairing_seeded, Pairing};
pub use pairpattern::{EqOracle, IdentityEq, PTriple, PairPattern, PatternError, SlotKind, Step};
